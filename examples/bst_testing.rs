//! Testing binary search trees with derived artifacts (§6.2, after
//! "How to Specify It!").
//!
//! Derives the BST-invariant checker and a constrained tree generator
//! from the `bst` relation, then uses them to find the injected
//! insertion bug.
//!
//! ```text
//! cargo run --release --example bst_testing
//! ```

use indrel::bst::Bst;
use indrel::pbt::{Runner, TestOutcome};
use indrel::term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let bst = Bst::new();
    let u = bst.library().universe().clone();

    // The derived generator produces trees satisfying `bst 0 24 ?t`.
    let mut rng = SmallRng::seed_from_u64(9);
    println!("random search trees from the derived generator:");
    let mut shown = 0;
    while shown < 3 {
        if let Some(t) = bst.derived_gen(0, 24, 5, &mut rng) {
            println!("  {}", u.display_value(&t));
            assert_eq!(bst.derived_check(0, 24, &t, 64), Some(true));
            shown += 1;
        }
    }

    // Correct insertion preserves the invariant...
    let b2 = bst.clone();
    let gen = move |size: u64, rng: &mut dyn rand::RngCore| {
        let t = b2.derived_gen(0, 24, size, rng)?;
        let x = rand::Rng::gen_range(rng, 1..24u64);
        Some(vec![Value::nat(x), t])
    };
    let b3 = bst.clone();
    let ok = Runner::new(5)
        .with_size(6)
        .run(20_000, gen.clone(), move |args| {
            let t2 = b3.insert(args[0].as_nat().unwrap(), &args[1]);
            TestOutcome::from_check(b3.derived_check(0, 24, &t2, 64))
        });
    println!("\ninsert preserves the invariant: {ok}");

    // ...and the mutated insertion does not.
    let b4 = bst.clone();
    let bad = Runner::new(5).with_size(6).run(20_000, gen, move |args| {
        let t2 = b4.insert_buggy(args[0].as_nat().unwrap(), &args[1]);
        TestOutcome::from_check(b4.derived_check(0, 24, &t2, 64))
    });
    println!("buggy insert: {bad}");
    if let Some((cex, _)) = &bad.failed {
        println!(
            "  counterexample: insert {} into {}",
            cex[0].as_nat().unwrap(),
            u.display_value(&cex[1])
        );
    }
}
