//! The serving-layer dashboard: mixed traffic against one [`Server`]
//! with every observability surface read back out.
//!
//! Drives a small multi-threaded workload — cheap `even'` checks that
//! earn shared-memo hits, tightly budgeted `twin` checks that retry,
//! deliberate overload that sheds, and one injected shard poisoning —
//! then prints what an operator would scrape or pull during an
//! incident:
//!
//! 1. the Prometheus-style text exposition of the metrics snapshot
//!    (deterministic `serve.*`/`memo.*` counters, per-rule attribution
//!    from the armed probe, and the one wall-clock latency histogram),
//! 2. the automatic flight-recorder dump the shard retirement left
//!    behind (JSON lines of the last requests per worker, with their
//!    `(seed, index)` repro tokens), and
//! 3. the estimated-vs-observed premise cost table from
//!    `explain_with_stats`.
//!
//! ```text
//! cargo run --example serve_dashboard
//! ```

use indrel::prelude::*;

fn main() {
    // One frozen core with a cheap and an exponential relation.
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel even' : nat :=
          | even_0  : even' 0
          | even_SS : forall n, even' n -> even' (S (S n))
          .
          rel twin : nat :=
          | t0 : twin 0
          | tS : forall n, twin n -> twin n -> twin (S n)
          .",
    )
    .unwrap();
    let even = env.rel_id("even'").unwrap();
    let twin = env.rel_id("twin").unwrap();
    let mut builder = LibraryBuilder::new(u, env);
    builder.derive_checker(even).unwrap();
    builder.derive_checker(twin).unwrap();
    let server = Server::new(
        builder.build().shared(),
        ServeConfig {
            max_inflight: 4,
            steps_per_request: 64, // tight: the twin traffic must retry
            max_retries: 6,
            retry_seed: 42,
            flight_recorder_capacity: 16,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );

    // Mixed traffic on two workers, with a stats probe armed on each
    // so the snapshot carries per-rule attribution.
    let stats = SearchStats::new();
    std::thread::scope(|scope| {
        for worker in 0..2u64 {
            let (server, stats) = (&server, &stats);
            scope.spawn(move || {
                let session = server.session();
                let _probe = session.library().arm_probe(ExecProbe::stats(stats));
                let evens: Vec<Vec<Value>> =
                    (0..12u64).map(|n| vec![Value::nat(n + worker)]).collect();
                session.check_batch(even, 30, &evens);
                let twins: Vec<Vec<Value>> = (0..4u64).map(|n| vec![Value::nat(n + 4)]).collect();
                session.check_batch(twin, 10, &twins);
            });
        }
    });
    // Deliberate overload: hold the whole admission capacity and the
    // next request sheds (a counter, a span, never a queue).
    {
        let session = server.session();
        let permits: Vec<Permit> = (0..4).map(|_| server.try_admit().unwrap()).collect();
        let shed = session.check_batch(even, 10, &[vec![Value::nat(2)]]);
        assert!(matches!(shed[0], Err(ExecError::Overloaded { .. })));
        drop(permits);
        // Inject a shard poisoning and touch the shard: the serving
        // layer retires it and auto-dumps the flight recorder.
        let _quiet = indrel::pbt::chaos::silence_panics();
        server.memo().poison_shard(1);
        let mut fp = 0u64;
        while server.memo().shard_for(fp) != 1 {
            fp += 1;
        }
        let _ = server.memo().lookup(even, fp, &[Value::nat(0)], 1, 1);
        session.check_batch(even, 30, &[vec![Value::nat(8)]]);
    }

    println!("=== metrics (text exposition) ===\n");
    println!("{}", server.snapshot_with_stats(&stats).to_prometheus());

    println!("=== automatic flight-recorder dumps ===\n");
    for dump in server.take_auto_dumps() {
        println!("{dump}");
    }

    println!("=== premise cost table (estimated vs observed) ===\n");
    let session = server.session();
    print!("{}", session.library().explain_with_stats(twin, &stats));
}
