//! Quickstart: from an inductive relation to checkers, enumerators,
//! and generators — with validation certificates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use indrel::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // 1. Specify: inductive relations in a Coq-flavoured surface syntax.
    // ------------------------------------------------------------------
    let mut universe = Universe::new();
    let mut relations = RelEnv::new();
    parse_program(
        &mut universe,
        &mut relations,
        r"
        rel even' : nat :=
        | even_0  : even' 0
        | even_SS : forall n, even' n -> even' (S (S n))
        .
        rel le : nat nat :=
        | le_n : forall n, le n n
        | le_S : forall n m, le n m -> le n (S m)
        .
        ",
    )
    .expect("the specification parses");
    let even = relations.rel_id("even'").unwrap();
    let le = relations.rel_id("le").unwrap();

    // ------------------------------------------------------------------
    // 2. Derive: one algorithm, three instantiations (§4 of the paper).
    // ------------------------------------------------------------------
    let mut builder = LibraryBuilder::new(universe, relations);
    builder.derive_checker(even).unwrap();
    builder.derive_checker(le).unwrap();
    let evens_mode = Mode::producer(1, &[0]);
    let le_mode = Mode::producer(2, &[0]);
    builder.derive_producer(even, evens_mode.clone()).unwrap();
    builder.derive_producer(le, le_mode.clone()).unwrap();

    // Inspect the derived "code" (the analogue of Figure 1).
    println!("--- derived checker plan for even' ---");
    println!(
        "{}",
        builder
            .checker_plan(even)
            .unwrap()
            .display(builder.universe(), builder.env())
    );
    let lib = builder.build();

    // ------------------------------------------------------------------
    // 3. Check: three-valued semi-decision (Some(true)/Some(false)/None).
    // ------------------------------------------------------------------
    println!("--- checking ---");
    for n in [0u64, 7, 10] {
        println!(
            "even' {n} with fuel 10  =>  {:?}",
            lib.check(even, 10, 10, &[Value::nat(n)])
        );
    }
    println!(
        "even' 40 with fuel 3   =>  {:?}   (out of fuel)",
        lib.check(even, 3, 3, &[Value::nat(40)])
    );

    // ------------------------------------------------------------------
    // 4. Enumerate: all witnesses, in a fair bounded order.
    // ------------------------------------------------------------------
    let evens: Vec<u64> = lib
        .enumerate(even, &evens_mode, 5, 5, &[])
        .values()
        .into_iter()
        .map(|out| out[0].as_nat().unwrap())
        .collect();
    println!("--- enumerating even numbers (size 5) ---\n{evens:?}");

    let below: Vec<u64> = lib
        .enumerate(le, &le_mode, 9, 9, &[Value::nat(6)])
        .values()
        .into_iter()
        .map(|out| out[0].as_nat().unwrap())
        .collect();
    println!("--- enumerating n with le n 6 ---\n{below:?}");

    // ------------------------------------------------------------------
    // 5. Generate: random witnesses for property-based testing.
    // ------------------------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(2022);
    let samples: Vec<u64> = (0..12)
        .filter_map(|_| lib.generate(even, &evens_mode, 12, 12, &[], &mut rng))
        .map(|out| out[0].as_nat().unwrap())
        .collect();
    println!("--- sampling even numbers ---\n{samples:?}");

    // ------------------------------------------------------------------
    // 6. Validate: translation validation (§5) — soundness,
    //    completeness, and monotonicity against the reference
    //    semantics, packaged as certificates.
    // ------------------------------------------------------------------
    println!("--- validation certificates ---");
    let validator = Validator::new(lib).unwrap();
    for cert in [
        validator.validate_checker(even),
        validator.validate_checker(le),
        validator.validate_enumerator(even, &evens_mode),
        validator.validate_enumerator(le, &le_mode),
        validator.validate_generator(le, &le_mode),
    ] {
        println!("{cert}");
    }
}
