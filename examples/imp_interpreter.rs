//! An interpreter for free: executing IMP programs through the
//! computational content of the `ceval` big-step relation.
//!
//! The corpus transcribes Software Foundations' `ceval` (with states as
//! association lists). Deriving a producer at mode `ceval c st ?st'`
//! yields an *interpreter* directly from the semantics — including the
//! existential intermediate state of `E_Seq`, which the derivation
//! threads through a recursive producer call.
//!
//! ```text
//! cargo run --release --example imp_interpreter
//! ```

use indrel::core::{LibraryBuilder, Mode};
use indrel::prelude::*;

fn main() {
    let (u, env) = indrel::corpus::corpus_env();
    let ceval = env.rel_id("ceval").unwrap();
    let mut builder = LibraryBuilder::new(u, env);
    // The interpreter mode: command and input state in, output state out.
    let run_mode = Mode::producer(3, &[2]);
    builder.derive_checker(ceval).unwrap();
    builder.derive_producer(ceval, run_mode.clone()).unwrap();
    let lib = builder.build();
    let u = lib.universe();

    // Build:  X := 3; Y := 0; while (0 < X) { Y := Y + X; X := X - 1 }
    // i.e. Y = 3 + 2 + 1 = 6. Variables: X = 0, Y = 1.
    let c = |name: &str, args: Vec<Value>| Value::ctor(u.ctor_id(name).unwrap(), args);
    let anum = |n: u64| c("ANum", vec![Value::nat(n)]);
    let aid = |x: u64| c("AId", vec![Value::nat(x)]);
    let prog = c(
        "CSeq",
        vec![
            c("CAsgn", vec![Value::nat(0), anum(3)]),
            c(
                "CSeq",
                vec![
                    c("CAsgn", vec![Value::nat(1), anum(0)]),
                    c(
                        "CWhile",
                        vec![
                            // 1 <= X  encodes 0 < X
                            c("BLe", vec![anum(1), aid(0)]),
                            c(
                                "CSeq",
                                vec![
                                    c(
                                        "CAsgn",
                                        vec![Value::nat(1), c("APlus", vec![aid(1), aid(0)])],
                                    ),
                                    c(
                                        "CAsgn",
                                        vec![Value::nat(0), c("AMinus", vec![aid(0), anum(1)])],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    );

    let st0 = u.list_value([]);
    println!("running the summation program through the derived `ceval` producer…");
    // Loop bound: the while unrolls 3 times; fuel 24 is plenty.
    let finals = lib
        .enumerate(ceval, &run_mode, 24, 24, &[prog.clone(), st0.clone()])
        .first();
    match finals {
        Some(out) => {
            let st = &out[0];
            println!("final state: {}", u.display_value(st));
            // Look up Y (variable 1) in the association list.
            let y = u
                .list_elems(st)
                .unwrap()
                .into_iter()
                .find_map(|cell| {
                    let (_, kv) = cell.as_ctor()?;
                    (kv[0].as_nat()? == 1).then(|| kv[1].as_nat())?
                })
                .unwrap();
            println!("Y = {y}  (expected 6)");
            assert_eq!(y, 6);
            // And the checker agrees the run is derivable:
            assert_eq!(
                lib.check(ceval, 24, 24, &[prog, st0, st.clone()]),
                Some(true)
            );
            println!("…and the derived checker confirms the execution.");
        }
        None => println!("out of fuel (raise the size parameter)"),
    }
}
