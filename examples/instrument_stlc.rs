//! Instrumenting the STLC generator: the worked observability example.
//!
//! Arms a `SearchStats` probe (aggregate counters + histograms) and a
//! `TraceProbe` (bounded ring of raw events) on the STLC case-study
//! library, drives the derived well-typed-term generator, and prints
//! the telemetry: which typing rules fire, where unification fails,
//! how deep the search recurses, and how big the produced terms are.
//!
//! ```text
//! cargo run --example instrument_stlc
//! ```

use indrel::prelude::*;
use indrel::stlc::Stlc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let stlc = Stlc::new();
    let lib = stlc.library();

    // Arm both probes at once. The guard restores the previous (no-op)
    // probe when dropped, so instrumentation is strictly scoped.
    let stats = SearchStats::new();
    let trace = TraceProbe::new(32);
    {
        let _probe = lib.arm_probe(ExecProbe::both(&stats, &trace));
        let mut rng = SmallRng::seed_from_u64(0x57C);
        let mut generated = 0u32;
        for _ in 0..200 {
            let ty = stlc.random_ty(2, &mut rng);
            if stlc.derived_gen(&[], &ty, 5, &mut rng).is_some() {
                generated += 1;
            }
        }
        println!("derived_gen: {generated}/200 requests produced a term\n");
    }

    // The aggregate view: per-rule attempts/successes/backtracks, the
    // hottest unification-failure sites, and the search-shape
    // histograms.
    println!("{stats}");

    // The same data, machine-readable (serde-free JSON).
    println!("\nstats as JSON (truncated):");
    let json = stats.to_json();
    println!("  {}...", &json[..json.len().min(120)]);

    // The raw view: the last events of the search, one JSON object per
    // line — the ring kept the newest 32 and counted the rest dropped.
    println!("\nlast events ({} older ones dropped):", trace.dropped());
    for line in trace.to_json_lines().lines().take(8) {
        println!("  {line}");
    }

    // And the static side: what was derived for the typing relation.
    println!("\n{}", lib.explain(stlc.typing_relation()));
}
