//! Proof by computational reflection (§6.3 of the paper):
//! `Sorted (repeat 1 2000)` the slow way and the fast way.
//!
//! ```text
//! cargo run --release --example reflection
//! ```

use indrel::reflect::compare_with_big_stack;

fn main() {
    println!("Proving  sorted (repeat 1 n)  two ways:");
    println!("  naive:      build the explicit derivation tree, have the kernel re-check it");
    println!("  reflective: run the derived (validated-sound) checker once\n");
    for r in compare_with_big_stack(&[500, 1000, 2000]) {
        println!(
            "n={:<5} proof nodes {:<6} construct {:>10.3?}  kernel-check {:>10.3?}  reflective {:>10.3?}  speedup {:>6.1}x",
            r.n,
            r.proof_size,
            r.construct,
            r.kernel_check,
            r.reflective,
            r.speedup()
        );
    }
    println!();
    println!("The explicit proof carries every intermediate list; the kernel's");
    println!("structural comparisons make checking quadratic in n, while the");
    println!("reflective route is a single linear computation — the reason the");
    println!("paper's Coq proof dropped from ~27 s to ~0.1 s.");
}
