//! Randomized property-based testing for the simply typed lambda
//! calculus — the paper's running example (§2) and motivation (§6.2).
//!
//! The workflow the paper automates: write the `typing` relation once,
//! derive a checker *and* a generator of well-typed terms from it, and
//! test type preservation of the evaluator — here with the suite's
//! injected substitution bug, which the derived artifacts find.
//!
//! ```text
//! cargo run --release --example stlc_testing
//! ```

use indrel_pbt::{Runner, TestOutcome};
use indrel_stlc::{Mutation, Stlc};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let stlc = Stlc::new();

    // ------------------------------------------------------------------
    // The derived type-inference enumerator (Figure 2) in action.
    // ------------------------------------------------------------------
    // (\x:N. x + x) : N -> N
    let double = stlc.abs(stlc.ty_n(), stlc.add(stlc.var(0), stlc.var(0)));
    let inferred = stlc.derived_infer(&[], &double, 30);
    println!(
        "derived inference:  |- \\x:N. x+x  :  {}",
        inferred
            .as_ref()
            .map(|t| stlc.library().universe().display_value(t).to_string())
            .unwrap_or_else(|| "untypeable".into())
    );

    // ------------------------------------------------------------------
    // The derived generator produces well-typed terms for any goal type.
    // ------------------------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(7);
    let goal = stlc.ty_arrow(stlc.ty_n(), stlc.ty_n());
    println!("\nrandom terms of type N -> N (derived generator):");
    let mut shown = 0;
    while shown < 4 {
        if let Some(e) = stlc.derived_gen(&[], &goal, 4, &mut rng) {
            println!("  {}", stlc.library().universe().display_value(&e));
            assert!(stlc.handwritten_check(&[], &e, &goal));
            shown += 1;
        }
    }

    // ------------------------------------------------------------------
    // Hunting the suite's substitution bug: preservation breaks.
    // ------------------------------------------------------------------
    println!("\nhunting the SubstOffByOne mutation with the derived generator:");
    let s2 = stlc.clone();
    let report = Runner::new(1).with_size(6).run(
        200_000,
        move |size, rng| {
            let ty = s2.random_ty(2, rng);
            let e = s2.derived_gen(&[], &ty, size, rng)?;
            Some(vec![e, ty])
        },
        |args| match stlc.preservation_holds(Mutation::SubstOffByOne, &args[0], &args[1]) {
            None => TestOutcome::Discard, // the term doesn't step
            Some(ok) => TestOutcome::from_bool(ok),
        },
    );
    match &report.failed {
        Some((cex, n)) => {
            let u = stlc.library().universe();
            println!("  *** preservation violated after {n} tests");
            println!("      term: {}", u.display_value(&cex[0]));
            println!("      type: {}", u.display_value(&cex[1]));
        }
        None => println!("  no counterexample found (unexpected!)"),
    }
}
