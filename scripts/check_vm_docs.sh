#!/usr/bin/env sh
# Keeps the DESIGN.md § "Bytecode VM" instruction-set reference honest:
# every opcode the implementation names (Instr::opcode in
# crates/core/src/vm.rs) must have a row in the DESIGN.md reference
# table, and every table row must name a real opcode. Pure sed/grep —
# no toolchain, runs anywhere.
set -eu
cd "$(dirname "$0")/.."

impl=$(sed -n 's/^ *Instr::[A-Za-z_]* { \.\. } => "\([A-Za-z]*\)",$/\1/p' crates/core/src/vm.rs | sort)
docs=$(sed -n '/^## Bytecode VM$/,/^## [^#]/p' DESIGN.md \
  | sed -n 's/^| `\([A-Z][A-Za-z]*\)` | .*/\1/p' | sort)

if [ -z "$impl" ]; then
  echo "check_vm_docs: no opcodes extracted from crates/core/src/vm.rs (Instr::opcode moved?)" >&2
  exit 1
fi
if [ -z "$docs" ]; then
  echo "check_vm_docs: no opcode rows extracted from DESIGN.md § \"Bytecode VM\"" >&2
  exit 1
fi

if [ "$impl" != "$docs" ]; then
  echo "check_vm_docs: DESIGN.md instruction-set reference is out of sync with vm.rs" >&2
  echo "--- vm.rs opcodes:" >&2
  echo "$impl" >&2
  echo "--- DESIGN.md table rows:" >&2
  echo "$docs" >&2
  exit 1
fi

echo "check_vm_docs: $(echo "$impl" | wc -l | tr -d ' ') opcodes in sync with DESIGN.md"
