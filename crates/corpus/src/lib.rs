//! The Software Foundations corpus (§6.1 of the paper).
//!
//! The paper evaluates its derivation procedure on every inductive
//! relation in the first two Software Foundations volumes — *Logical
//! Foundations* (LF) and *Programming Language Foundations* (PLF) —
//! reporting, in Table 1, how many relations exist, how many the full
//! algorithm handles, and how many the restricted core Algorithm 1
//! handles.
//!
//! This crate transcribes a representative corpus of those relations
//! into the surface syntax: predicates on naturals and lists, regular
//! expression matching, the IMP language's big-step evaluators, the
//! small-step toy language of the *Smallstep* chapter, STLC typing, and
//! sortedness/permutation predicates. Relations that range over
//! higher-order data (functions or propositions) are recorded as
//! [`Scope::HigherOrder`] entries without source, mirroring the
//! relations the paper excludes ("computations over higher order data",
//! §6.1).
//!
//! The Table 1 reproduction (`indrel-bench`, `table1` binary) loads the
//! corpus, attempts both the full derivation and the Algorithm 1
//! baseline on every first-order relation, and prints the counts.
//!
//! # Example
//!
//! ```
//! use indrel_corpus::{corpus_env, entries, Volume};
//!
//! let (universe, env) = corpus_env();
//! // Every first-order entry parsed and registered:
//! let lf: Vec<_> = entries().into_iter()
//!     .filter(|e| e.volume == Volume::Lf)
//!     .collect();
//! assert!(lf.len() >= 20);
//! assert!(env.rel_id("exp_match").is_some());
//! let _ = universe;
//! ```

pub mod lf;
pub mod plf;

use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_term::{TypeExpr, Universe, Value};

/// Which Software Foundations volume an entry comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Volume {
    /// Logical Foundations.
    Lf,
    /// Programming Language Foundations.
    Plf,
}

impl std::fmt::Display for Volume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Volume::Lf => write!(f, "LF"),
            Volume::Plf => write!(f, "PLF"),
        }
    }
}

/// Whether the relation is inside the class the framework targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// First-order: datatypes, naturals, booleans, lists — encodable.
    FirstOrder,
    /// Quantifies over functions or propositions — out of scope, as in
    /// the paper.
    HigherOrder,
}

/// One corpus entry: an inductive relation (or a small cluster that
/// must be declared together) from LF or PLF.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Entry name (the SF definition's name).
    pub name: &'static str,
    /// Source volume.
    pub volume: Volume,
    /// Names of the relations this entry declares.
    pub relations: &'static [&'static str],
    /// Surface syntax, `None` for higher-order entries.
    pub source: Option<&'static str>,
    /// Scope classification.
    pub scope: Scope,
    /// Where in SF the relation appears / why it is out of scope.
    pub note: &'static str,
}

/// All corpus entries, LF first, in dependency order.
pub fn entries() -> Vec<Entry> {
    let mut out = lf::entries();
    out.extend(plf::entries());
    out
}

/// Registers the helper functions the corpus relations use (`eqb`,
/// `leb`, `andb`, `double`, `div2`, …) on top of the standard library.
pub fn register_corpus_funs(u: &mut Universe) {
    u.std_list();
    u.std_pair();
    u.std_funs();
    let nat = TypeExpr::Nat;
    let b = TypeExpr::Bool;
    let nat2bool = |u: &mut Universe, name: &str, f: fn(u64, u64) -> bool| {
        if u.fun_id(name).is_none() {
            u.declare_fun(
                name,
                vec![TypeExpr::Nat, TypeExpr::Nat],
                TypeExpr::Bool,
                move |args| {
                    Value::bool(f(
                        args[0].as_nat().expect("nat"),
                        args[1].as_nat().expect("nat"),
                    ))
                },
            )
            .expect("fresh function name");
        }
    };
    nat2bool(u, "eqb", |a, b| a == b);
    nat2bool(u, "leb", |a, b| a <= b);
    nat2bool(u, "ltb", |a, b| a < b);
    if u.fun_id("andb").is_none() {
        u.declare_fun("andb", vec![b.clone(), b.clone()], b.clone(), |args| {
            Value::bool(args[0].as_bool().expect("bool") && args[1].as_bool().expect("bool"))
        })
        .expect("fresh function name");
        u.declare_fun("orb", vec![b.clone(), b.clone()], b.clone(), |args| {
            Value::bool(args[0].as_bool().expect("bool") || args[1].as_bool().expect("bool"))
        })
        .expect("fresh function name");
        u.declare_fun("notb", vec![b.clone()], b, |args| {
            Value::bool(!args[0].as_bool().expect("bool"))
        })
        .expect("fresh function name");
        u.declare_fun("double", vec![nat.clone()], nat.clone(), |args| {
            Value::nat(args[0].as_nat().expect("nat").saturating_mul(2))
        })
        .expect("fresh function name");
        u.declare_fun("div2", vec![nat.clone()], nat.clone(), |args| {
            Value::nat(args[0].as_nat().expect("nat") / 2)
        })
        .expect("fresh function name");
        u.declare_fun("evenb", vec![nat], TypeExpr::Bool, |args| {
            Value::bool(args[0].as_nat().expect("nat") % 2 == 0)
        })
        .expect("fresh function name");
    }
}

/// Loads the whole first-order corpus into a fresh universe and
/// relation environment.
///
/// # Panics
///
/// Panics if a corpus source fails to parse — the test suite keeps this
/// impossible.
pub fn corpus_env() -> (Universe, RelEnv) {
    let mut u = Universe::new();
    register_corpus_funs(&mut u);
    plf::register_stlc(&mut u);
    let mut env = RelEnv::new();
    for entry in entries() {
        if let Some(src) = entry.source {
            parse_program(&mut u, &mut env, src)
                .unwrap_or_else(|e| panic!("corpus entry `{}` failed to parse: {e}", entry.name));
        }
    }
    (u, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_core::{LibraryBuilder, Mode};
    use indrel_semantics::{ProofSystem, Tv};

    #[test]
    fn corpus_parses() {
        let (_, env) = corpus_env();
        // Every declared relation is registered.
        for e in entries() {
            if e.source.is_some() {
                for r in e.relations {
                    assert!(
                        env.rel_id(r).is_some(),
                        "relation `{r}` of `{}` missing",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn corpus_has_both_volumes_and_scopes() {
        let es = entries();
        assert!(es.iter().any(|e| e.volume == Volume::Lf));
        assert!(es.iter().any(|e| e.volume == Volume::Plf));
        assert!(es.iter().any(|e| e.scope == Scope::HigherOrder));
        // Higher-order entries carry no source; first-order ones do.
        for e in &es {
            match e.scope {
                Scope::FirstOrder => assert!(e.source.is_some(), "{} has no source", e.name),
                Scope::HigherOrder => {
                    assert!(e.source.is_none(), "{} should have no source", e.name)
                }
            }
        }
    }

    #[test]
    fn all_first_order_checkers_derive() {
        let (u, env) = corpus_env();
        let mut b = LibraryBuilder::new(u, env);
        for e in entries() {
            if e.source.is_none() {
                continue;
            }
            for r in e.relations {
                let id = b.env().rel_id(r).unwrap();
                b.derive_checker(id)
                    .unwrap_or_else(|err| panic!("deriving checker for `{r}`: {err}"));
            }
        }
    }

    #[test]
    fn spot_check_corpus_semantics() {
        let (u, env) = corpus_env();
        let even = env.rel_id("ev").unwrap();
        let exp_match = env.rel_id("exp_match").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(even).unwrap();
        b.derive_checker(exp_match).unwrap();
        let lib = b.build();
        assert_eq!(lib.check(even, 12, 12, &[Value::nat(10)]), Some(true));
        assert_eq!(lib.check(even, 12, 12, &[Value::nat(9)]), Some(false));
        // exp_match [1] (Chr 1)
        let u = lib.universe();
        let chr = u.ctor_id("Chr").unwrap();
        let re = Value::ctor(chr, vec![Value::nat(1)]);
        let s = u.list_value([Value::nat(1)]);
        assert_eq!(lib.check(exp_match, 6, 6, &[s, re.clone()]), Some(true));
        let s2 = u.list_value([Value::nat(2)]);
        assert_eq!(lib.check(exp_match, 6, 6, &[s2, re]), Some(false));
    }

    #[test]
    fn ceval_checker_executes_programs() {
        let (u, env) = corpus_env();
        let ceval = env.rel_id("ceval").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(ceval).unwrap();
        let lib = b.build();
        let u = lib.universe();
        // X := 2; Y := 3  starting from the empty state.
        let casgn = u.ctor_id("CAsgn").unwrap();
        let cseq = u.ctor_id("CSeq").unwrap();
        let anum = u.ctor_id("ANum").unwrap();
        let pair = u.ctor_id("Pair").unwrap();
        let prog = Value::ctor(
            cseq,
            vec![
                Value::ctor(
                    casgn,
                    vec![Value::nat(0), Value::ctor(anum, vec![Value::nat(2)])],
                ),
                Value::ctor(
                    casgn,
                    vec![Value::nat(1), Value::ctor(anum, vec![Value::nat(3)])],
                ),
            ],
        );
        let st0 = u.list_value([]);
        let st2 = u.list_value([
            Value::ctor(pair, vec![Value::nat(1), Value::nat(3)]),
            Value::ctor(pair, vec![Value::nat(0), Value::nat(2)]),
        ]);
        assert_eq!(lib.check(ceval, 8, 8, &[prog, st0, st2]), Some(true));
    }

    #[test]
    fn corpus_agrees_with_reference_on_small_relations() {
        let (u, env) = corpus_env();
        let sys = ProofSystem::new(u.clone(), env.clone()).unwrap();
        let subseq = env.rel_id("subseq").unwrap();
        let l1 = u.list_value([Value::nat(1), Value::nat(2)]);
        let l2 = u.list_value([Value::nat(1), Value::nat(3), Value::nat(2)]);
        assert_eq!(sys.holds(subseq, &[l1.clone(), l2.clone()], 10), Tv::True);
        assert_eq!(sys.holds(subseq, &[l2, l1], 10), Tv::False);
    }

    #[test]
    fn stepstar_enumerates_reductions() {
        let (u, env) = corpus_env();
        let step = env.rel_id("tm_step").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_producer(step, Mode::producer(2, &[1])).unwrap();
        let lib = b.build();
        let u = lib.universe();
        // P (C 1) (C 2) steps to C 3.
        let c = u.ctor_id("C").unwrap();
        let p = u.ctor_id("P").unwrap();
        let t = Value::ctor(
            p,
            vec![
                Value::ctor(c, vec![Value::nat(1)]),
                Value::ctor(c, vec![Value::nat(2)]),
            ],
        );
        let outs = lib
            .enumerate(step, &Mode::producer(2, &[1]), 6, 6, &[t])
            .values();
        assert_eq!(outs, vec![vec![Value::ctor(c, vec![Value::nat(3)])]]);
    }
}
