//! Programming Language Foundations (PLF) relations.
//!
//! The IMP language's big-step evaluators (with states as association
//! lists, the one representation change the paper also makes — maps as
//! functions become lists, §6.1), the *Smallstep* chapter's toy
//! language, the simply typed lambda calculus, and the
//! sortedness/permutation predicates.

use crate::{Entry, Scope, Volume};
use indrel_term::{TypeExpr, Universe, Value};

fn fo(
    name: &'static str,
    relations: &'static [&'static str],
    source: &'static str,
    note: &'static str,
) -> Entry {
    Entry {
        name,
        volume: Volume::Plf,
        relations,
        source: Some(source),
        scope: Scope::FirstOrder,
        note,
    }
}

fn ho(name: &'static str, note: &'static str) -> Entry {
    Entry {
        name,
        volume: Volume::Plf,
        relations: &[],
        source: None,
        scope: Scope::HigherOrder,
        note,
    }
}

/// Declares the STLC datatypes (`ty`, `tml`) and registers the native
/// `lift_tm`/`subst_tm` de Bruijn operations they need. Idempotent.
///
/// # Panics
///
/// Panics only if the universe contains conflicting declarations.
pub fn register_stlc(u: &mut Universe) {
    if u.dt_id("ty").is_some() {
        return;
    }
    let ty = u
        .declare_datatype(
            "ty",
            0,
            &[
                ("TN", vec![]),
                ("TArrow", vec![TypeExpr::named("ty"), TypeExpr::named("ty")]),
            ],
        )
        .expect("fresh datatype");
    let tml = u
        .declare_datatype(
            "tml",
            0,
            &[
                ("TmConst", vec![TypeExpr::Nat]),
                (
                    "TmAdd",
                    vec![TypeExpr::named("tml"), TypeExpr::named("tml")],
                ),
                ("TmVar", vec![TypeExpr::Nat]),
                (
                    "TmApp",
                    vec![TypeExpr::named("tml"), TypeExpr::named("tml")],
                ),
                (
                    "TmAbs",
                    vec![TypeExpr::datatype(ty), TypeExpr::named("tml")],
                ),
            ],
        )
        .expect("fresh datatype");
    let tml_ty = TypeExpr::datatype(tml);
    let c_const = u.ctor_id("TmConst").expect("declared");
    let c_add = u.ctor_id("TmAdd").expect("declared");
    let c_var = u.ctor_id("TmVar").expect("declared");
    let c_app = u.ctor_id("TmApp").expect("declared");
    let c_abs = u.ctor_id("TmAbs").expect("declared");

    // lift c t: increment de Bruijn indices >= c.
    fn lift(
        ids: (
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
        ),
        c: u64,
        t: &Value,
    ) -> Value {
        let (c_const, c_add, c_var, c_app, c_abs) = ids;
        let (ctor, args) = t.as_ctor().expect("tml value");
        if ctor == c_var {
            let i = args[0].as_nat().expect("nat index");
            Value::ctor(c_var, vec![Value::nat(if i >= c { i + 1 } else { i })])
        } else if ctor == c_const {
            t.clone()
        } else if ctor == c_add || ctor == c_app {
            Value::ctor(ctor, vec![lift(ids, c, &args[0]), lift(ids, c, &args[1])])
        } else if ctor == c_abs {
            Value::ctor(ctor, vec![args[0].clone(), lift(ids, c + 1, &args[1])])
        } else {
            t.clone()
        }
    }

    // subst j s t: capture-avoiding substitution of s for index j in t.
    fn subst(
        ids: (
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
            indrel_term::CtorId,
        ),
        j: u64,
        s: &Value,
        t: &Value,
    ) -> Value {
        let (c_const, c_add, c_var, c_app, c_abs) = ids;
        let (ctor, args) = t.as_ctor().expect("tml value");
        if ctor == c_var {
            let i = args[0].as_nat().expect("nat index");
            if i == j {
                s.clone()
            } else if i > j {
                Value::ctor(c_var, vec![Value::nat(i - 1)])
            } else {
                t.clone()
            }
        } else if ctor == c_const {
            t.clone()
        } else if ctor == c_add || ctor == c_app {
            Value::ctor(
                ctor,
                vec![subst(ids, j, s, &args[0]), subst(ids, j, s, &args[1])],
            )
        } else if ctor == c_abs {
            Value::ctor(
                ctor,
                vec![
                    args[0].clone(),
                    subst(ids, j + 1, &lift(ids, 0, s), &args[1]),
                ],
            )
        } else {
            t.clone()
        }
    }

    let ids = (c_const, c_add, c_var, c_app, c_abs);
    u.declare_fun(
        "lift_tm",
        vec![TypeExpr::Nat, tml_ty.clone()],
        tml_ty.clone(),
        move |args| lift(ids, args[0].as_nat().expect("nat"), &args[1]),
    )
    .expect("fresh function");
    u.declare_fun(
        "subst_tm",
        vec![TypeExpr::Nat, tml_ty.clone(), tml_ty.clone()],
        tml_ty,
        move |args| subst(ids, args[0].as_nat().expect("nat"), &args[1], &args[2]),
    )
    .expect("fresh function");
}

/// The PLF corpus entries, in dependency order. The STLC entries assume
/// [`register_stlc`] ran first (done by [`crate::corpus_env`]).
pub fn entries() -> Vec<Entry> {
    vec![
        fo(
            "imp_lookup",
            &["lookupR"],
            r"data aexp := ANum nat | AId nat | APlus aexp aexp
                        | AMinus aexp aexp | AMult aexp aexp .
              data bexp := BTrue | BFalse | BEq aexp aexp | BLe aexp aexp
                        | BNot bexp | BAnd bexp bexp .
              data com := CSkip | CAsgn nat aexp | CSeq com com
                        | CIf bexp com com | CWhile bexp com .
              rel lookupR : (list (pair nat nat)) nat nat :=
              | lu_here  : forall x n st, lookupR (cons (Pair x n) st) x n
              | lu_there : forall x y n m st, x <> y -> lookupR st x n ->
                           lookupR (cons (Pair y m) st) x n
              .",
            "Maps (as association lists, the paper's representation change)",
        ),
        fo(
            "aevalR",
            &["aevalS"],
            r"rel aevalS : (list (pair nat nat)) aexp nat :=
              | E_ANum   : forall st n, aevalS st (ANum n) n
              | E_AId    : forall st x n, lookupR st x n -> aevalS st (AId x) n
              | E_APlus  : forall st a1 a2 n1 n2,
                  aevalS st a1 n1 -> aevalS st a2 n2 ->
                  aevalS st (APlus a1 a2) (plus n1 n2)
              | E_AMinus : forall st a1 a2 n1 n2,
                  aevalS st a1 n1 -> aevalS st a2 n2 ->
                  aevalS st (AMinus a1 a2) (minus n1 n2)
              | E_AMult  : forall st a1 a2 n1 n2,
                  aevalS st a1 n1 -> aevalS st a2 n2 ->
                  aevalS st (AMult a1 a2) (mult n1 n2)
              .",
            "Imp: big-step arithmetic evaluation",
        ),
        fo(
            "bevalR",
            &["bevalS"],
            r"rel bevalS : (list (pair nat nat)) bexp bool :=
              | E_BTrue  : forall st, bevalS st BTrue true
              | E_BFalse : forall st, bevalS st BFalse false
              | E_BEq    : forall st a1 a2 n1 n2,
                  aevalS st a1 n1 -> aevalS st a2 n2 ->
                  bevalS st (BEq a1 a2) (eqb n1 n2)
              | E_BLe    : forall st a1 a2 n1 n2,
                  aevalS st a1 n1 -> aevalS st a2 n2 ->
                  bevalS st (BLe a1 a2) (leb n1 n2)
              | E_BNot   : forall st b v, bevalS st b v -> bevalS st (BNot b) (notb v)
              | E_BAnd   : forall st b1 b2 v1 v2,
                  bevalS st b1 v1 -> bevalS st b2 v2 ->
                  bevalS st (BAnd b1 b2) (andb v1 v2)
              .",
            "Imp: big-step boolean evaluation",
        ),
        fo(
            "ceval",
            &["ceval"],
            r"rel ceval : com (list (pair nat nat)) (list (pair nat nat)) :=
              | E_Skip       : forall st, ceval CSkip st st
              | E_Asgn       : forall st a n x, aevalS st a n ->
                               ceval (CAsgn x a) st (cons (Pair x n) st)
              | E_Seq        : forall c1 c2 st st' st'',
                  ceval c1 st st' -> ceval c2 st' st'' ->
                  ceval (CSeq c1 c2) st st''
              | E_IfTrue     : forall st st' b c1 c2,
                  bevalS st b true -> ceval c1 st st' ->
                  ceval (CIf b c1 c2) st st'
              | E_IfFalse    : forall st st' b c1 c2,
                  bevalS st b false -> ceval c2 st st' ->
                  ceval (CIf b c1 c2) st st'
              | E_WhileFalse : forall b st c,
                  bevalS st b false -> ceval (CWhile b c) st st
              | E_WhileTrue  : forall st st' st'' b c,
                  bevalS st b true -> ceval c st st' ->
                  ceval (CWhile b c) st' st'' ->
                  ceval (CWhile b c) st st''
              .",
            "Imp: big-step command evaluation — E_Seq/E_WhileTrue need an intermediate-state producer",
        ),
        fo(
            "ceval_break",
            &["cevalB"],
            r"data comb := CBSkip | CBBreak | CBAsgn nat aexp | CBSeq comb comb
                        | CBIf bexp comb comb | CBWhile bexp comb .
              data result := SContinue | SBreak .
              rel cevalB : comb (list (pair nat nat)) result (list (pair nat nat)) :=
              | EB_Skip  : forall st, cevalB CBSkip st SContinue st
              | EB_Break : forall st, cevalB CBBreak st SBreak st
              | EB_Asgn  : forall st a n x, aevalS st a n ->
                  cevalB (CBAsgn x a) st SContinue (cons (Pair x n) st)
              | EB_SeqBreak : forall c1 c2 st st',
                  cevalB c1 st SBreak st' ->
                  cevalB (CBSeq c1 c2) st SBreak st'
              | EB_SeqContinue : forall c1 c2 st st' st'' s,
                  cevalB c1 st SContinue st' -> cevalB c2 st' s st'' ->
                  cevalB (CBSeq c1 c2) st s st''
              | EB_IfTrue : forall st st' b c1 c2 s,
                  bevalS st b true -> cevalB c1 st s st' ->
                  cevalB (CBIf b c1 c2) st s st'
              | EB_IfFalse : forall st st' b c1 c2 s,
                  bevalS st b false -> cevalB c2 st s st' ->
                  cevalB (CBIf b c1 c2) st s st'
              | EB_WhileFalse : forall b st c,
                  bevalS st b false -> cevalB (CBWhile b c) st SContinue st
              | EB_WhileTrueBreak : forall st st' b c,
                  bevalS st b true -> cevalB c st SBreak st' ->
                  cevalB (CBWhile b c) st SContinue st'
              | EB_WhileTrueContinue : forall st st' st'' b c,
                  bevalS st b true -> cevalB c st SContinue st' ->
                  cevalB (CBWhile b c) st' SContinue st'' ->
                  cevalB (CBWhile b c) st SContinue st''
              .",
            "Imp exercise `break_imp`: commands with early loop exit — the signal \
             result is threaded through the derivation",
        ),
        fo(
            "aevalD",
            &["aevalD"],
            r"data aexpd := DNum nat | DPlus aexpd aexpd | DDiv aexpd aexpd .
              rel aevalD : aexpd nat :=
              | D_Num  : forall n, aevalD (DNum n) n
              | D_Plus : forall a1 a2 n1 n2,
                  aevalD a1 n1 -> aevalD a2 n2 -> aevalD (DPlus a1 a2) (plus n1 n2)
              | D_Div  : forall a1 a2 n1 n2 n3,
                  aevalD a1 n1 -> aevalD a2 n2 -> n2 <> 0 ->
                  mult n2 n3 = n1 ->
                  aevalD (DDiv a1 a2) n3
              .",
            "Imp: evaluation as a relation — division makes evaluation partial,              the chapter's motivation for relational style (n3 is existential for checking)",
        ),
        fo(
            "tm_smallstep",
            &["tm_value", "tm_eval", "tm_step", "tm_multistep"],
            r"data tm := C nat | P tm tm .
              rel tm_value : tm :=
              | v_const : forall n, tm_value (C n)
              .
              rel tm_eval : tm nat :=
              | E_Const : forall n, tm_eval (C n) n
              | E_Plus  : forall t1 t2 v1 v2,
                  tm_eval t1 v1 -> tm_eval t2 v2 -> tm_eval (P t1 t2) (plus v1 v2)
              .
              rel tm_step : tm tm :=
              | ST_PlusConstConst : forall v1 v2,
                  tm_step (P (C v1) (C v2)) (C (plus v1 v2))
              | ST_Plus1 : forall t1 t1' t2,
                  tm_step t1 t1' -> tm_step (P t1 t2) (P t1' t2)
              | ST_Plus2 : forall v1 t2 t2',
                  tm_step t2 t2' -> tm_step (P (C v1) t2) (P (C v1) t2')
              .
              rel tm_multistep : tm tm :=
              | tms_refl : forall t, tm_multistep t t
              | tms_step : forall t1 t2 t3,
                  tm_step t1 t2 -> tm_multistep t2 t3 -> tm_multistep t1 t3
              .",
            "Smallstep: the toy arithmetic language; tms_step has an existential middle term",
        ),
        fo(
            "stlc",
            &["stlc_lookup", "stlc_value", "stlc_typing", "stlc_step", "stlc_multistep"],
            r"rel stlc_lookup : (list ty) nat ty :=
              | lk_here  : forall t G, stlc_lookup (cons t G) 0 t
              | lk_there : forall t t' G n,
                  stlc_lookup G n t -> stlc_lookup (cons t' G) (S n) t
              .
              rel stlc_value : tml :=
              | v_tmconst : forall n, stlc_value (TmConst n)
              | v_tmabs   : forall t e, stlc_value (TmAbs t e)
              .
              rel stlc_typing : (list ty) tml ty :=
              | T_Const : forall G n, stlc_typing G (TmConst n) TN
              | T_Add   : forall G e1 e2,
                  stlc_typing G e1 TN -> stlc_typing G e2 TN ->
                  stlc_typing G (TmAdd e1 e2) TN
              | T_Var   : forall G x t, stlc_lookup G x t -> stlc_typing G (TmVar x) t
              | T_Abs   : forall G t1 t2 e,
                  stlc_typing (cons t1 G) e t2 ->
                  stlc_typing G (TmAbs t1 e) (TArrow t1 t2)
              | T_App   : forall G e1 e2 t1 t2,
                  stlc_typing G e2 t1 -> stlc_typing G e1 (TArrow t1 t2) ->
                  stlc_typing G (TmApp e1 e2) t2
              .
              rel stlc_step : tml tml :=
              | ST_AppAbs    : forall t e v, stlc_value v ->
                  stlc_step (TmApp (TmAbs t e) v) (subst_tm 0 v e)
              | ST_App1      : forall e1 e1' e2,
                  stlc_step e1 e1' -> stlc_step (TmApp e1 e2) (TmApp e1' e2)
              | ST_App2      : forall v e2 e2', stlc_value v ->
                  stlc_step e2 e2' -> stlc_step (TmApp v e2) (TmApp v e2')
              | ST_AddConsts : forall n1 n2,
                  stlc_step (TmAdd (TmConst n1) (TmConst n2)) (TmConst (plus n1 n2))
              | ST_Add1      : forall e1 e1' e2,
                  stlc_step e1 e1' -> stlc_step (TmAdd e1 e2) (TmAdd e1' e2)
              | ST_Add2      : forall v e2 e2', stlc_value v ->
                  stlc_step e2 e2' -> stlc_step (TmAdd v e2) (TmAdd v e2')
              .
              rel stlc_multistep : tml tml :=
              | sms_refl : forall e, stlc_multistep e e
              | sms_step : forall e1 e2 e3,
                  stlc_step e1 e2 -> stlc_multistep e2 e3 -> stlc_multistep e1 e3
              .",
            "Stlc: the paper's running example — typing (existential in T_App), substitution-based step",
        ),
        fo(
            "typed_arith",
            &["bvalue", "nvalue", "tb_step", "tb_typing"],
            r"data tb := Tru | Fls | Test tb tb tb | Zro | Scc tb | Prd tb | Iszro tb .
              data tyb := TBool | TNat .
              rel bvalue : tb :=
              | bv_tru : bvalue Tru
              | bv_fls : bvalue Fls
              .
              rel nvalue : tb :=
              | nv_zro : nvalue Zro
              | nv_scc : forall t, nvalue t -> nvalue (Scc t)
              .
              rel tb_step : tb tb :=
              | ST_TestTru  : forall t1 t2, tb_step (Test Tru t1 t2) t1
              | ST_TestFls  : forall t1 t2, tb_step (Test Fls t1 t2) t2
              | ST_Test     : forall t1 t1' t2 t3,
                  tb_step t1 t1' -> tb_step (Test t1 t2 t3) (Test t1' t2 t3)
              | ST_Scc      : forall t t', tb_step t t' -> tb_step (Scc t) (Scc t')
              | ST_PrdZro   : tb_step (Prd Zro) Zro
              | ST_PrdScc   : forall t, nvalue t -> tb_step (Prd (Scc t)) t
              | ST_Prd      : forall t t', tb_step t t' -> tb_step (Prd t) (Prd t')
              | ST_IszroZro : tb_step (Iszro Zro) Tru
              | ST_IszroScc : forall t, nvalue t -> tb_step (Iszro (Scc t)) Fls
              | ST_Iszro    : forall t t', tb_step t t' -> tb_step (Iszro t) (Iszro t')
              .
              rel tb_typing : tb tyb :=
              | T_Tru   : tb_typing Tru TBool
              | T_Fls   : tb_typing Fls TBool
              | T_Test  : forall t1 t2 t3 T,
                  tb_typing t1 TBool -> tb_typing t2 T -> tb_typing t3 T ->
                  tb_typing (Test t1 t2 t3) T
              | T_Zro   : tb_typing Zro TNat
              | T_Scc   : forall t, tb_typing t TNat -> tb_typing (Scc t) TNat
              | T_Prd   : forall t, tb_typing t TNat -> tb_typing (Prd t) TNat
              | T_Iszro : forall t, tb_typing t TNat -> tb_typing (Iszro t) TBool
              .",
            "Types: the typed arithmetic language (values, step, typing)",
        ),
        fo(
            "sorted",
            &["sorted"],
            r"rel sorted : (list nat) :=
              | sorted_nil  : sorted nil
              | sorted_sing : forall x, sorted (cons x nil)
              | sorted_cons : forall x y l, le x y -> sorted (cons y l) ->
                              sorted (cons x (cons y l))
              .",
            "Sorting (also the §6.3 reflection case study)",
        ),
        fo(
            "permutation",
            &["permutation"],
            r"rel permutation : (list nat) (list nat) :=
              | perm_nil   : permutation nil nil
              | perm_skip  : forall x l l', permutation l l' ->
                             permutation (cons x l) (cons x l')
              | perm_swap  : forall x y l,
                             permutation (cons y (cons x l)) (cons x (cons y l))
              | perm_trans : forall l1 l2 l3,
                             permutation l1 l2 -> permutation l2 l3 ->
                             permutation l1 l3
              .",
            "Sorting: Permutation — perm_trans has an existential list",
        ),
        // ---- higher-order entries (no source) ----
        ho("multi", "Smallstep: `multi R` is parameterized by a relation"),
        ho("hoare_proof", "Hoare2: assertions are predicates over states"),
        ho("halts", "Norm: defined through an existential over derivations"),
        ho("cimp_ceval", "Auto/Imp variants quantifying over maps-as-functions"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stlc_registration_is_idempotent() {
        let mut u = Universe::new();
        u.std_list();
        register_stlc(&mut u);
        register_stlc(&mut u);
        assert!(u.fun_id("subst_tm").is_some());
        assert!(u.fun_id("lift_tm").is_some());
    }

    #[test]
    fn subst_beta_reduces() {
        let mut u = Universe::new();
        u.std_list();
        register_stlc(&mut u);
        let var = u.ctor_id("TmVar").unwrap();
        let constc = u.ctor_id("TmConst").unwrap();
        let add = u.ctor_id("TmAdd").unwrap();
        let subst = u.fun_id("subst_tm").unwrap();
        // subst 0 (TmConst 5) (TmAdd (TmVar 0) (TmVar 0)) = TmAdd 5 5
        let body = Value::ctor(
            add,
            vec![
                Value::ctor(var, vec![Value::nat(0)]),
                Value::ctor(var, vec![Value::nat(0)]),
            ],
        );
        let five = Value::ctor(constc, vec![Value::nat(5)]);
        let out = u.fun(subst).apply(&[Value::nat(0), five.clone(), body]);
        assert_eq!(out, Value::ctor(add, vec![five.clone(), five]));
    }

    #[test]
    fn subst_shifts_free_vars_under_binders() {
        let mut u = Universe::new();
        u.std_list();
        register_stlc(&mut u);
        let var = u.ctor_id("TmVar").unwrap();
        let abs = u.ctor_id("TmAbs").unwrap();
        let tn = u.ctor_id("TN").unwrap();
        let subst = u.fun_id("subst_tm").unwrap();
        // subst 0 (TmVar 3) (TmAbs TN (TmVar 1)) = TmAbs TN (TmVar 4):
        // the substituted term's free variable is lifted under the binder.
        let body = Value::ctor(
            abs,
            vec![
                Value::ctor(tn, vec![]),
                Value::ctor(var, vec![Value::nat(1)]),
            ],
        );
        let s = Value::ctor(var, vec![Value::nat(3)]);
        let out = u.fun(subst).apply(&[Value::nat(0), s, body]);
        let expected = Value::ctor(
            abs,
            vec![
                Value::ctor(tn, vec![]),
                Value::ctor(var, vec![Value::nat(4)]),
            ],
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn plf_entries_unique() {
        let es = entries();
        let mut names: Vec<_> = es.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), es.len());
    }
}
