//! Logical Foundations (LF) relations.
//!
//! Transcriptions of the inductive relations of *Logical Foundations*:
//! the `IndProp` chapter's predicates on naturals, the list predicates
//! of its exercises, and the regular-expression matcher. Higher-order
//! entries (the `ProofObjects` encodings of logical connectives and the
//! `reflect` predicate) are recorded without source, matching the
//! relations the paper's evaluation excludes.

use crate::{Entry, Scope, Volume};

fn fo(
    name: &'static str,
    relations: &'static [&'static str],
    source: &'static str,
    note: &'static str,
) -> Entry {
    Entry {
        name,
        volume: Volume::Lf,
        relations,
        source: Some(source),
        scope: Scope::FirstOrder,
        note,
    }
}

fn ho(name: &'static str, note: &'static str) -> Entry {
    Entry {
        name,
        volume: Volume::Lf,
        relations: &[],
        source: None,
        scope: Scope::HigherOrder,
        note,
    }
}

/// The LF corpus entries, in dependency order.
pub fn entries() -> Vec<Entry> {
    vec![
        fo(
            "ev",
            &["ev"],
            r"rel ev : nat :=
              | ev_0  : ev 0
              | ev_SS : forall n, ev n -> ev (S (S n))
              .",
            "IndProp: evenness",
        ),
        fo(
            "ev'",
            &["ev'"],
            r"rel ev' : nat :=
              | ev'_0   : ev' 0
              | ev'_2   : ev' 2
              | ev'_sum : forall n m, ev' n -> ev' m -> ev' (plus n m)
              .",
            "IndProp: alternative evenness with a sum conclusion (function call)",
        ),
        fo(
            "le",
            &["le"],
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            "IndProp: less-or-equal (non-linear reflexivity)",
        ),
        fo(
            "lt",
            &["lt"],
            r"rel lt : nat nat :=
              | lt_ : forall n m, le (S n) m -> lt n m
              .",
            "IndProp: strict order via le",
        ),
        fo(
            "ge",
            &["ge"],
            r"rel ge : nat nat :=
              | ge_ : forall n m, le m n -> ge n m
              .",
            "IndProp exercise: flipped order",
        ),
        fo(
            "eq_nat",
            &["eq_nat"],
            r"rel eq_nat : nat nat :=
              | eq_refl : forall n, eq_nat n n
              .",
            "ProofObjects: propositional equality at nat (non-linear)",
        ),
        fo(
            "square_of",
            &["square_of"],
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
            "IndProp exercise: function call in the conclusion (§3.1 of the paper)",
        ),
        fo(
            "next_nat",
            &["next_nat"],
            r"rel next_nat : nat nat :=
              | nn : forall n, next_nat n (S n)
              .",
            "IndProp exercise",
        ),
        fo(
            "next_ev",
            &["next_ev"],
            r"rel next_ev : nat nat :=
              | ne_1 : forall n, ev (S n) -> next_ev n (S n)
              | ne_2 : forall n, ev (S (S n)) -> next_ev n (S (S n))
              .",
            "IndProp exercise: non-linear across argument positions",
        ),
        fo(
            "total_relation",
            &["total_relation"],
            r"rel total_relation : nat nat :=
              | total : forall n m, total_relation n m
              .",
            "IndProp exercise",
        ),
        fo(
            "empty_relation",
            &["empty_relation"],
            r"rel empty_relation : nat nat := .",
            "IndProp exercise: no constructors",
        ),
        fo(
            "R",
            &["R"],
            r"rel R : nat nat nat :=
              | c1 : R 0 0 0
              | c2 : forall m n o, R m n o -> R (S m) n (S o)
              | c3 : forall m n o, R m n o -> R m (S n) (S o)
              | c4 : forall m n o, R (S m) (S n) (S (S o)) -> R m n o
              | c5 : forall m n o, R m n o -> R n m o
              .",
            "IndProp exercise: ternary playground relation (c4/c5 defeat structural recursion)",
        ),
        fo(
            "collatz_holds_for",
            &["collatz_holds_for"],
            r"rel collatz_holds_for : nat :=
              | Chf_one  : collatz_holds_for 1
              | Chf_even : forall n, evenb n = true ->
                           collatz_holds_for (div2 n) -> collatz_holds_for n
              | Chf_odd  : forall n, evenb n = false ->
                           collatz_holds_for (plus (mult 3 n) 1) -> collatz_holds_for n
              .",
            "IndProp: Collatz — a genuinely semi-decidable predicate",
        ),
        fo(
            "in_list",
            &["in_list"],
            r"rel in_list : nat (list nat) :=
              | in_here  : forall x l, in_list x (cons x l)
              | in_there : forall x y l, in_list x l -> in_list x (cons y l)
              .",
            "Logic: membership, inductive form",
        ),
        fo(
            "subseq",
            &["subseq"],
            r"rel subseq : (list nat) (list nat) :=
              | sub_nil  : forall l, subseq nil l
              | sub_take : forall x l1 l2, subseq l1 l2 -> subseq (cons x l1) (cons x l2)
              | sub_skip : forall x l1 l2, subseq l1 l2 -> subseq l1 (cons x l2)
              .",
            "IndProp exercise: subsequences (non-linear cons)",
        ),
        fo(
            "pal",
            &["pal"],
            r"rel pal : (list nat) :=
              | pal_nil  : pal nil
              | pal_sing : forall x, pal (cons x nil)
              | pal_app  : forall x l, pal l -> pal (cons x (app l (cons x nil)))
              .",
            "IndProp exercise: palindromes (function call + non-linear conclusion)",
        ),
        fo(
            "nostutter",
            &["nostutter"],
            r"rel nostutter : (list nat) :=
              | ns_nil  : nostutter nil
              | ns_sing : forall x, nostutter (cons x nil)
              | ns_cons : forall x y l, x <> y -> nostutter (cons y l) ->
                          nostutter (cons x (cons y l))
              .",
            "IndProp exercise: disequality premise",
        ),
        fo(
            "merge",
            &["merge"],
            r"rel merge : (list nat) (list nat) (list nat) :=
              | merge_nil   : merge nil nil nil
              | merge_left  : forall x l1 l2 l, merge l1 l2 l ->
                              merge (cons x l1) l2 (cons x l)
              | merge_right : forall x l1 l2 l, merge l1 l2 l ->
                              merge l1 (cons x l2) (cons x l)
              .",
            "IndProp exercise: interleavings (non-linear across positions)",
        ),
        fo(
            "repeats",
            &["repeats"],
            r"rel repeats : (list nat) :=
              | rep_here  : forall x l, in_list x l -> repeats (cons x l)
              | rep_later : forall x l, repeats l -> repeats (cons x l)
              .",
            "IndProp exercise (pigeonhole)",
        ),
        fo(
            "nodup",
            &["nodup"],
            r"rel nodup : (list nat) :=
              | nd_nil  : nodup nil
              | nd_cons : forall x l, ~ (in_list x l) -> nodup l -> nodup (cons x l)
              .",
            "Logic exercise: negated premise",
        ),
        fo(
            "disjoint",
            &["disjoint"],
            r"rel disjoint : (list nat) (list nat) :=
              | dj_nil  : forall l, disjoint nil l
              | dj_cons : forall x l1 l2, ~ (in_list x l2) -> disjoint l1 l2 ->
                          disjoint (cons x l1) l2
              .",
            "Logic exercise: disjoint lists via a negated membership premise",
        ),
        fo(
            "exp_match",
            &["exp_match"],
            r"data reg_exp := EmptySet | EmptyStr | Chr nat
                           | Cat reg_exp reg_exp | Union reg_exp reg_exp | Star reg_exp .
              rel exp_match : (list nat) reg_exp :=
              | MEmpty   : exp_match nil EmptyStr
              | MChar    : forall x, exp_match (cons x nil) (Chr x)
              | MApp     : forall s1 re1 s2 re2,
                  exp_match s1 re1 -> exp_match s2 re2 ->
                  exp_match (app s1 s2) (Cat re1 re2)
              | MUnionL  : forall s re1 re2, exp_match s re1 -> exp_match s (Union re1 re2)
              | MUnionR  : forall s re1 re2, exp_match s re2 -> exp_match s (Union re1 re2)
              | MStar0   : forall re, exp_match nil (Star re)
              | MStarApp : forall s1 s2 re,
                  exp_match s1 re -> exp_match s2 (Star re) ->
                  exp_match (app s1 s2) (Star re)
              .",
            "IndProp: regular-expression matching — the chapter's centerpiece",
        ),
        // ---- higher-order entries (no source), as excluded in §6.1 ----
        ho("and", "ProofObjects: conjunction — Prop-indexed"),
        ho("or", "ProofObjects: disjunction — Prop-indexed"),
        ho(
            "ex",
            "ProofObjects: existential — quantifies over a predicate",
        ),
        ho(
            "True",
            "ProofObjects: trivial proposition — Prop-valued constructor",
        ),
        ho("False", "ProofObjects: absurd proposition — Prop-valued"),
        ho(
            "eq_poly",
            "ProofObjects: polymorphic equality at arbitrary Type",
        ),
        ho(
            "reflect",
            "IndProp: reflection predicate — indexed by a Prop",
        ),
        ho(
            "all",
            "Logic exercise `All`: quantifies over a predicate on elements",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lf_has_first_order_majority() {
        let es = entries();
        let fo_count = es.iter().filter(|e| e.scope == Scope::FirstOrder).count();
        let ho_count = es.iter().filter(|e| e.scope == Scope::HigherOrder).count();
        assert!(fo_count > ho_count);
        assert!(fo_count >= 20);
    }

    #[test]
    fn entries_have_unique_names() {
        let es = entries();
        let mut names: Vec<_> = es.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), es.len());
    }
}
