//! The STLC case study — the paper's running example (§2) and
//! benchmark \[15\].
//!
//! Builds on the corpus transcription of the simply typed lambda
//! calculus (`stlc_typing`, `stlc_step`, …) and adds everything the
//! evaluation needs:
//!
//! * a **handwritten typechecker** (the `typing_dec` of §2, completed
//!   with type inference for the application case),
//! * a **handwritten generator** of well-typed terms (the classic
//!   QuickChick STLC generator: type-directed, backtracking),
//! * the **derived** checker (`stlc_typing` at the all-input mode), the
//!   derived type-inference enumerator of Figure 2 (`stlc_typing` with
//!   the type as output), and the derived well-typed-term generator
//!   (`stlc_typing` with the term as output),
//! * a call-by-value **small-step evaluator** with the suite's
//!   substitution/lifting **mutations**, which break type preservation
//!   (§6.2's STLC bugs).
//!
//! # Example
//!
//! ```
//! use indrel_stlc::{Stlc, Mutation};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let stlc = Stlc::new();
//! let mut rng = SmallRng::seed_from_u64(7);
//! // Generate a closed term of type N -> N and typecheck it both ways.
//! let ty = stlc.ty_arrow(stlc.ty_n(), stlc.ty_n());
//! let e = stlc.handwritten_gen(&[], &ty, 5, &mut rng).unwrap();
//! assert!(stlc.handwritten_check(&[], &e, &ty));
//! assert_eq!(stlc.derived_check(&[], &e, &ty, 40), Some(true));
//! ```

use indrel_core::{Library, LibraryBuilder, Mode};
use indrel_term::{CtorId, FunId, RelId, Value};
use rand::Rng as _;

/// Which mutation (if any) the evaluator applies — the suite's bugs in
/// the substitution and lifting functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mutation {
    /// Correct evaluator.
    #[default]
    None,
    /// Substitution compares against `j + 1`, leaving the bound
    /// variable unsubstituted (a dangling free variable after a beta
    /// step — preservation breaks).
    SubstOffByOne,
    /// Lifting ignores its cutoff and shifts every variable, capturing
    /// bound variables of the substituted value.
    LiftNoCutoff,
}

/// The STLC case study.
#[derive(Clone)]
pub struct Stlc {
    lib: Library,
    typing: RelId,
    step: RelId,
    c_tn: CtorId,
    c_arrow: CtorId,
    c_const: CtorId,
    c_add: CtorId,
    c_var: CtorId,
    c_app: CtorId,
    c_abs: CtorId,
    c_nil: CtorId,
    c_cons: CtorId,
    f_subst: FunId,
}

impl std::fmt::Debug for Stlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stlc").finish_non_exhaustive()
    }
}

impl Default for Stlc {
    fn default() -> Stlc {
        Stlc::new()
    }
}

impl Stlc {
    /// Loads the corpus STLC and derives the checker, the
    /// type-inference enumerator, and the well-typed-term generator.
    ///
    /// # Panics
    ///
    /// Panics only if the corpus fails to load or derive, which the
    /// test suites rule out.
    pub fn new() -> Stlc {
        let (u, env) = indrel_corpus::corpus_env();
        let typing = env.rel_id("stlc_typing").expect("corpus relation");
        let step = env.rel_id("stlc_step").expect("corpus relation");
        let ids = (
            u.ctor_id("TN").expect("corpus ctor"),
            u.ctor_id("TArrow").expect("corpus ctor"),
            u.ctor_id("TmConst").expect("corpus ctor"),
            u.ctor_id("TmAdd").expect("corpus ctor"),
            u.ctor_id("TmVar").expect("corpus ctor"),
            u.ctor_id("TmApp").expect("corpus ctor"),
            u.ctor_id("TmAbs").expect("corpus ctor"),
            u.ctor_id("nil").expect("std ctor"),
            u.ctor_id("cons").expect("std ctor"),
        );
        let f_subst = u.fun_id("subst_tm").expect("corpus fun");
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(typing).expect("typing checker derives");
        b.derive_producer(typing, Mode::producer(3, &[2]))
            .expect("type-inference enumerator derives");
        b.derive_producer(typing, Mode::producer(3, &[1]))
            .expect("well-typed-term generator derives");
        b.derive_checker(step).expect("step checker derives");
        b.derive_producer(step, Mode::producer(2, &[1]))
            .expect("step producer derives");
        Stlc {
            lib: b.build(),
            typing,
            step,
            c_tn: ids.0,
            c_arrow: ids.1,
            c_const: ids.2,
            c_add: ids.3,
            c_var: ids.4,
            c_app: ids.5,
            c_abs: ids.6,
            c_nil: ids.7,
            c_cons: ids.8,
            f_subst,
        }
    }

    /// The underlying instance library.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The `stlc_typing` relation.
    pub fn typing_relation(&self) -> RelId {
        self.typing
    }

    /// The `stlc_step` relation.
    pub fn step_relation(&self) -> RelId {
        self.step
    }

    /// The mode producing terms: `stlc_typing Γ ?e t`.
    pub fn term_mode(&self) -> Mode {
        Mode::producer(3, &[1])
    }

    /// The mode inferring types: `stlc_typing Γ e ?t` (Figure 2).
    pub fn type_mode(&self) -> Mode {
        Mode::producer(3, &[2])
    }

    // ---- value builders ----

    /// The base type `N`.
    pub fn ty_n(&self) -> Value {
        Value::ctor(self.c_tn, vec![])
    }

    /// The arrow type.
    pub fn ty_arrow(&self, a: Value, b: Value) -> Value {
        Value::ctor(self.c_arrow, vec![a, b])
    }

    /// A constant.
    pub fn con(&self, n: u64) -> Value {
        Value::ctor(self.c_const, vec![Value::nat(n)])
    }

    /// An addition.
    pub fn add(&self, a: Value, b: Value) -> Value {
        Value::ctor(self.c_add, vec![a, b])
    }

    /// A de Bruijn variable.
    pub fn var(&self, i: u64) -> Value {
        Value::ctor(self.c_var, vec![Value::nat(i)])
    }

    /// An application.
    pub fn app(&self, f: Value, a: Value) -> Value {
        Value::ctor(self.c_app, vec![f, a])
    }

    /// A lambda abstraction.
    pub fn abs(&self, ty: Value, body: Value) -> Value {
        Value::ctor(self.c_abs, vec![ty, body])
    }

    /// Builds the environment value from a slice of types (innermost
    /// binder first).
    pub fn ctx(&self, tys: &[Value]) -> Value {
        let mut acc = Value::ctor(self.c_nil, vec![]);
        for t in tys.iter().rev() {
            acc = Value::ctor(self.c_cons, vec![t.clone(), acc.clone()]);
        }
        acc
    }

    /// A random type of the given depth budget.
    pub fn random_ty(&self, size: u64, rng: &mut dyn rand::RngCore) -> Value {
        if size == 0 || rng.gen_range(0..3) > 0 {
            self.ty_n()
        } else {
            let a = self.random_ty(size - 1, rng);
            let b = self.random_ty(size - 1, rng);
            self.ty_arrow(a, b)
        }
    }

    // ------------------------------------------------------------------
    // Handwritten baselines
    // ------------------------------------------------------------------

    /// Type inference, the handwritten way: `type_of Γ e`.
    pub fn type_of(&self, ctx: &[Value], e: &Value) -> Option<Value> {
        let (c, args) = e.as_ctor().expect("term value");
        if c == self.c_const {
            Some(self.ty_n())
        } else if c == self.c_add {
            let t1 = self.type_of(ctx, &args[0])?;
            let t2 = self.type_of(ctx, &args[1])?;
            (t1 == self.ty_n() && t2 == self.ty_n()).then(|| self.ty_n())
        } else if c == self.c_var {
            let i = args[0].as_nat().expect("nat index") as usize;
            ctx.get(i).cloned()
        } else if c == self.c_abs {
            let mut ctx2 = Vec::with_capacity(ctx.len() + 1);
            ctx2.push(args[0].clone());
            ctx2.extend(ctx.iter().cloned());
            let t2 = self.type_of(&ctx2, &args[1])?;
            Some(self.ty_arrow(args[0].clone(), t2))
        } else if c == self.c_app {
            let tf = self.type_of(ctx, &args[0])?;
            let ta = self.type_of(ctx, &args[1])?;
            let (cf, fargs) = tf.as_ctor()?;
            (cf == self.c_arrow && fargs[0] == ta).then(|| fargs[1].clone())
        } else {
            None
        }
    }

    /// The handwritten checker `typing_dec` of §2, completed through
    /// inference.
    pub fn handwritten_check(&self, ctx: &[Value], e: &Value, t: &Value) -> bool {
        self.type_of(ctx, e).as_ref() == Some(t)
    }

    /// The classic handwritten generator of well-typed terms: pick a
    /// constructor compatible with the goal type, generate premises
    /// type-directedly, backtrack on failure.
    pub fn handwritten_gen(
        &self,
        ctx: &[Value],
        ty: &Value,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Option<Value> {
        // Candidate productions, weighted like the derived generator:
        // base constructors weight 1, recursive ones weight `size`.
        #[derive(Clone, Copy, PartialEq)]
        enum Prod {
            Con,
            VarP,
            Abs,
            Add,
            App,
        }
        let (tc, targs) = ty.as_ctor().expect("type value");
        let is_n = tc == self.c_tn;
        let mut options: Vec<(u64, Prod)> = Vec::new();
        if is_n {
            options.push((1, Prod::Con));
        } else {
            options.push((1, Prod::Abs));
        }
        options.push((1, Prod::VarP));
        if size > 0 {
            if is_n {
                options.push((size, Prod::Add));
            }
            options.push((size, Prod::App));
        }
        while !options.is_empty() {
            let total: u64 = options.iter().map(|(w, _)| w).sum();
            let mut pick = rng.gen_range(0..total);
            let mut idx = 0;
            for (i, (w, _)) in options.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= *w;
            }
            let prod = options[idx].1;
            let produced = match prod {
                Prod::Con => Some(self.con(rng.gen_range(0..=size))),
                Prod::VarP => {
                    let hits: Vec<u64> = ctx
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| *t == ty)
                        .map(|(i, _)| i as u64)
                        .collect();
                    if hits.is_empty() {
                        None
                    } else {
                        Some(self.var(hits[rng.gen_range(0..hits.len())]))
                    }
                }
                Prod::Abs => {
                    let t1 = targs[0].clone();
                    let t2 = targs[1].clone();
                    let mut ctx2 = Vec::with_capacity(ctx.len() + 1);
                    ctx2.push(t1.clone());
                    ctx2.extend(ctx.iter().cloned());
                    self.handwritten_gen(&ctx2, &t2, size.saturating_sub(1), rng)
                        .map(|body| self.abs(t1, body))
                }
                Prod::Add => {
                    let a = self.handwritten_gen(ctx, &self.ty_n(), size - 1, rng);
                    let b = a.and_then(|a| {
                        self.handwritten_gen(ctx, &self.ty_n(), size - 1, rng)
                            .map(|b| (a, b))
                    });
                    b.map(|(a, b)| self.add(a, b))
                }
                Prod::App => {
                    let t1 = self.random_ty(2, rng);
                    let tf = self.ty_arrow(t1.clone(), ty.clone());
                    let f = self.handwritten_gen(ctx, &tf, size - 1, rng);
                    f.and_then(|f| {
                        self.handwritten_gen(ctx, &t1, size - 1, rng)
                            .map(|a| self.app(f, a))
                    })
                }
            };
            if produced.is_some() {
                return produced;
            }
            let _ = options.swap_remove(idx);
        }
        None
    }

    // ------------------------------------------------------------------
    // Derived artifacts
    // ------------------------------------------------------------------

    /// The derived checker for `stlc_typing`.
    pub fn derived_check(&self, ctx: &[Value], e: &Value, t: &Value, fuel: u64) -> Option<bool> {
        self.lib.check(
            self.typing,
            fuel,
            fuel,
            &[self.ctx(ctx), e.clone(), t.clone()],
        )
    }

    /// The derived type-inference enumerator (Figure 2), returning the
    /// first inferred type.
    pub fn derived_infer(&self, ctx: &[Value], e: &Value, fuel: u64) -> Option<Value> {
        self.lib
            .enumerate(
                self.typing,
                &self.type_mode(),
                fuel,
                fuel,
                &[self.ctx(ctx), e.clone()],
            )
            .first()
            .map(|mut outs| outs.pop().expect("one output"))
    }

    /// The derived generator of well-typed terms.
    pub fn derived_gen(
        &self,
        ctx: &[Value],
        ty: &Value,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Option<Value> {
        self.lib
            .generate(
                self.typing,
                &self.term_mode(),
                size,
                size,
                &[self.ctx(ctx), ty.clone()],
                rng,
            )
            .map(|mut outs| outs.pop().expect("one output"))
    }

    // ------------------------------------------------------------------
    // Evaluation and mutations
    // ------------------------------------------------------------------

    /// `true` when the term is a value (constant or abstraction).
    pub fn is_value(&self, e: &Value) -> bool {
        let (c, _) = e.as_ctor().expect("term value");
        c == self.c_const || c == self.c_abs
    }

    fn lift(&self, mutation: Mutation, cutoff: u64, e: &Value) -> Value {
        let (c, args) = e.as_ctor().expect("term value");
        if c == self.c_var {
            let i = args[0].as_nat().expect("nat index");
            let shifted = match mutation {
                // BUG: ignores the cutoff, capturing bound variables.
                Mutation::LiftNoCutoff => i + 1,
                _ => {
                    if i >= cutoff {
                        i + 1
                    } else {
                        i
                    }
                }
            };
            self.var(shifted)
        } else if c == self.c_const {
            e.clone()
        } else if c == self.c_add || c == self.c_app {
            Value::ctor(
                c,
                vec![
                    self.lift(mutation, cutoff, &args[0]),
                    self.lift(mutation, cutoff, &args[1]),
                ],
            )
        } else {
            // abs
            Value::ctor(
                c,
                vec![args[0].clone(), self.lift(mutation, cutoff + 1, &args[1])],
            )
        }
    }

    /// Substitution with an optional injected bug.
    pub fn subst(&self, mutation: Mutation, j: u64, s: &Value, e: &Value) -> Value {
        let (c, args) = e.as_ctor().expect("term value");
        if c == self.c_var {
            let i = args[0].as_nat().expect("nat index");
            let target = match mutation {
                // BUG: substitutes one binder too high, leaving the real
                // occurrence dangling.
                Mutation::SubstOffByOne => j + 1,
                _ => j,
            };
            if i == target {
                s.clone()
            } else if i > j {
                self.var(i - 1)
            } else {
                self.var(i)
            }
        } else if c == self.c_const {
            e.clone()
        } else if c == self.c_add || c == self.c_app {
            Value::ctor(
                c,
                vec![
                    self.subst(mutation, j, s, &args[0]),
                    self.subst(mutation, j, s, &args[1]),
                ],
            )
        } else {
            // abs
            let lifted = self.lift(mutation, 0, s);
            Value::ctor(
                c,
                vec![
                    args[0].clone(),
                    self.subst(mutation, j + 1, &lifted, &args[1]),
                ],
            )
        }
    }

    /// One call-by-value step; `None` for values and stuck terms.
    pub fn step(&self, mutation: Mutation, e: &Value) -> Option<Value> {
        let (c, args) = e.as_ctor().expect("term value");
        if c == self.c_app {
            let (f, a) = (&args[0], &args[1]);
            if !self.is_value(f) {
                return Some(self.app(self.step(mutation, f)?, a.clone()));
            }
            if !self.is_value(a) {
                return Some(self.app(f.clone(), self.step(mutation, a)?));
            }
            let (fc, fargs) = f.as_ctor().expect("term value");
            (fc == self.c_abs).then(|| self.subst(mutation, 0, a, &fargs[1]))
        } else if c == self.c_add {
            let (a, b) = (&args[0], &args[1]);
            if !self.is_value(a) {
                return Some(self.add(self.step(mutation, a)?, b.clone()));
            }
            if !self.is_value(b) {
                return Some(self.add(a.clone(), self.step(mutation, b)?));
            }
            let (ca, aargs) = a.as_ctor().expect("term value");
            let (cb, bargs) = b.as_ctor().expect("term value");
            (ca == self.c_const && cb == self.c_const).then(|| {
                self.con(
                    aargs[0]
                        .as_nat()
                        .expect("nat")
                        .saturating_add(bargs[0].as_nat().expect("nat")),
                )
            })
        } else {
            None
        }
    }

    /// The correct substitution function registered in the universe
    /// (used by the `stlc_step` relation).
    pub fn subst_fun(&self) -> FunId {
        self.f_subst
    }

    /// Preservation: if `e : t` in the empty context and `e` steps
    /// (under the mutated evaluator), the result still has type `t`.
    /// Returns `None` when `e` does not step.
    pub fn preservation_holds(&self, mutation: Mutation, e: &Value, t: &Value) -> Option<bool> {
        let e2 = self.step(mutation, e)?;
        Some(self.handwritten_check(&[], &e2, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn handwritten_and_derived_checkers_agree_on_generated_terms() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut checked = 0;
        for _ in 0..60 {
            let ty = s.random_ty(2, &mut rng);
            if let Some(e) = s.handwritten_gen(&[], &ty, 4, &mut rng) {
                assert!(s.handwritten_check(&[], &e, &ty));
                assert_eq!(
                    s.derived_check(&[], &e, &ty, 40),
                    Some(true),
                    "term should typecheck"
                );
                checked += 1;
            }
        }
        assert!(checked > 30);
    }

    #[test]
    fn derived_checker_rejects_ill_typed_terms() {
        let s = Stlc::new();
        // (Con 1) (Con 2) — applying a number.
        let bad = s.app(s.con(1), s.con(2));
        assert_eq!(s.derived_check(&[], &bad, &s.ty_n(), 40), Some(false));
        // Add of an abstraction.
        let bad2 = s.add(s.con(1), s.abs(s.ty_n(), s.var(0)));
        assert_eq!(s.derived_check(&[], &bad2, &s.ty_n(), 40), Some(false));
        // Unbound variable.
        let bad3 = s.var(0);
        assert_eq!(s.derived_check(&[], &bad3, &s.ty_n(), 40), Some(false));
    }

    #[test]
    fn derived_inference_matches_handwritten() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..40 {
            let ty = s.random_ty(2, &mut rng);
            if let Some(e) = s.handwritten_gen(&[], &ty, 3, &mut rng) {
                let inferred = s.derived_infer(&[], &e, 30);
                assert_eq!(inferred.as_ref(), s.type_of(&[], &e).as_ref());
            }
        }
    }

    #[test]
    fn derived_generator_produces_well_typed_terms() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut produced = 0;
        for _ in 0..60 {
            let ty = s.random_ty(1, &mut rng);
            if let Some(e) = s.derived_gen(&[], &ty, 4, &mut rng) {
                produced += 1;
                assert!(
                    s.handwritten_check(&[], &e, &ty),
                    "derived generator produced an ill-typed term"
                );
            }
        }
        assert!(produced > 20, "generator should mostly succeed: {produced}");
    }

    #[test]
    fn derived_generator_respects_context() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let ctx = vec![s.ty_n(), s.ty_arrow(s.ty_n(), s.ty_n())];
        for _ in 0..30 {
            if let Some(e) = s.derived_gen(&ctx, &s.ty_n(), 4, &mut rng) {
                assert!(s.handwritten_check(&ctx, &e, &s.ty_n()));
            }
        }
    }

    #[test]
    fn evaluation_preserves_types() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut stepped = 0;
        for _ in 0..200 {
            let ty = s.random_ty(1, &mut rng);
            if let Some(e) = s.handwritten_gen(&[], &ty, 5, &mut rng) {
                if let Some(ok) = s.preservation_holds(Mutation::None, &e, &ty) {
                    assert!(ok, "correct evaluator broke preservation");
                    stepped += 1;
                }
            }
        }
        assert!(stepped > 10, "some generated terms should step: {stepped}");
    }

    #[test]
    fn mutations_break_preservation() {
        let s = Stlc::new();
        for mutation in [Mutation::SubstOffByOne, Mutation::LiftNoCutoff] {
            let mut rng = SmallRng::seed_from_u64(6);
            let mut broken = false;
            for _ in 0..3000 {
                let ty = s.random_ty(2, &mut rng);
                if let Some(e) = s.handwritten_gen(&[], &ty, 6, &mut rng) {
                    if s.preservation_holds(mutation, &e, &ty) == Some(false) {
                        broken = true;
                        break;
                    }
                }
            }
            assert!(broken, "{mutation:?} should violate preservation");
        }
    }

    #[test]
    fn beta_reduction_computes() {
        let s = Stlc::new();
        // (\x:N. x + x) 21  →  21 + 21  →  42
        let f = s.abs(s.ty_n(), s.add(s.var(0), s.var(0)));
        let e = s.app(f, s.con(21));
        let e1 = s.step(Mutation::None, &e).unwrap();
        let e2 = s.step(Mutation::None, &e1).unwrap();
        assert_eq!(e2, s.con(42));
        assert!(s.step(Mutation::None, &e2).is_none());
    }

    #[test]
    fn derived_step_agrees_with_native_evaluator() {
        let s = Stlc::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let mode = Mode::producer(2, &[1]);
        for _ in 0..40 {
            let ty = s.random_ty(1, &mut rng);
            let Some(e) = s.handwritten_gen(&[], &ty, 4, &mut rng) else {
                continue;
            };
            let native = s.step(Mutation::None, &e);
            let derived = s
                .library()
                .enumerate(s.step_relation(), &mode, 30, 30, std::slice::from_ref(&e))
                .first()
                .map(|mut o| o.pop().unwrap());
            assert_eq!(native, derived, "step disagreement on {e:?}");
        }
    }
}
