//! Proof by computational reflection (§6.3 of the paper).
//!
//! The paper's case study: proving `Sorted (repeat 1 2000)`.
//!
//! * The **naive** route builds an explicit proof object by repeatedly
//!   applying the suitable `Sorted` constructor (the `repeat eapply`
//!   script) and then has the kernel re-check the whole term — both the
//!   term size and the structural comparisons grow quadratically, which
//!   is what made the Coq proof take 11.2 s to construct and 16.3 s to
//!   check.
//! * The **reflective** route runs the *derived checker* once and
//!   appeals to its soundness — in Coq, the mechanized soundness
//!   theorem; here, the soundness certificate of `indrel-validate` —
//!   turning the proof into a single computation.
//!
//! [`Reflection::compare`] measures both routes; the
//! `indrel-bench` crate's `reflection` binary prints the table.
//!
//! # Example
//!
//! ```
//! use indrel_reflect::Reflection;
//!
//! let r = Reflection::new();
//! let l = r.repeat_list(1, 50);
//! // Naive: construct an explicit derivation and kernel-check it.
//! let proof = r.naive_prove(&l).unwrap();
//! assert!(r.kernel_check(&proof).is_ok());
//! // Reflective: one checker run.
//! assert_eq!(r.reflective_check(&l), Some(true));
//! ```

use indrel_core::{Library, LibraryBuilder};
use indrel_semantics::{Proof, ProofError, ProofSystem};
use indrel_term::{RelId, Value};
use std::time::{Duration, Instant};

/// Timings for one `Sorted (repeat 1 n)` experiment.
#[derive(Clone, Copy, Debug)]
pub struct ReflectionReport {
    /// List length.
    pub n: u64,
    /// Proof-object node count.
    pub proof_size: u64,
    /// Time to construct the explicit proof.
    pub construct: Duration,
    /// Time for the kernel to re-check it.
    pub kernel_check: Duration,
    /// Time for one derived-checker run.
    pub reflective: Duration,
}

impl ReflectionReport {
    /// Naive total (construction + checking) over reflective time.
    pub fn speedup(&self) -> f64 {
        (self.construct + self.kernel_check).as_secs_f64() / self.reflective.as_secs_f64().max(1e-9)
    }
}

/// The reflection case study over the corpus `sorted` relation.
#[derive(Debug)]
pub struct Reflection {
    sys: ProofSystem,
    lib: Library,
    sorted: RelId,
}

impl Default for Reflection {
    fn default() -> Reflection {
        Reflection::new()
    }
}

impl Reflection {
    /// Loads the corpus, derives the `sorted` checker, and builds the
    /// reference proof system.
    ///
    /// # Panics
    ///
    /// Panics only if the corpus fails to load, which the test suites
    /// rule out.
    pub fn new() -> Reflection {
        let (u, env) = indrel_corpus::corpus_env();
        let sorted = env.rel_id("sorted").expect("corpus relation");
        let sys = ProofSystem::new(u.clone(), env.clone()).expect("corpus preprocesses");
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(sorted).expect("sorted checker derives");
        Reflection {
            sys,
            lib: b.build(),
            sorted,
        }
    }

    /// The `sorted` relation.
    pub fn sorted_relation(&self) -> RelId {
        self.sorted
    }

    /// The library holding the derived checker.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The reference proof system (the "kernel").
    pub fn system(&self) -> &ProofSystem {
        &self.sys
    }

    /// `repeat x n`: the list of `n` copies of `x`.
    pub fn repeat_list(&self, x: u64, n: u64) -> Value {
        self.lib
            .universe()
            .list_value((0..n).map(|_| Value::nat(x)))
    }

    /// Builds the explicit derivation of `sorted l` by proof search
    /// (the analogue of `repeat (eapply Sorted_cons; …)`).
    pub fn naive_prove(&self, l: &Value) -> Option<Proof> {
        let depth = l.size() + 2;
        self.sys.prove(self.sorted, std::slice::from_ref(l), depth)
    }

    /// Kernel-checks an explicit proof (the analogue of `Qed`).
    ///
    /// # Errors
    ///
    /// Returns the first [`ProofError`] in a malformed proof.
    pub fn kernel_check(&self, proof: &Proof) -> Result<(), ProofError> {
        self.sys.check_proof(proof)
    }

    /// One derived-checker run with just enough fuel (the analogue of
    /// `eapply sound; compute; reflexivity`).
    pub fn reflective_check(&self, l: &Value) -> Option<bool> {
        let fuel = l.size() + 2;
        self.lib
            .check(self.sorted, fuel, fuel, std::slice::from_ref(l))
    }

    /// Runs both routes on `sorted (repeat 1 n)` and reports timings.
    ///
    /// # Panics
    ///
    /// Panics if either route fails to establish the (true) property.
    pub fn compare(&self, n: u64) -> ReflectionReport {
        let l = self.repeat_list(1, n);

        let t0 = Instant::now();
        let proof = self.naive_prove(&l).expect("the list is sorted");
        let construct = t0.elapsed();

        let t1 = Instant::now();
        self.kernel_check(&proof).expect("the proof checks");
        let kernel_check = t1.elapsed();

        let t2 = Instant::now();
        let ok = self.reflective_check(&l);
        let reflective = t2.elapsed();
        assert_eq!(ok, Some(true), "the derived checker accepts");

        ReflectionReport {
            n,
            proof_size: proof.size(),
            construct,
            kernel_check,
            reflective,
        }
    }
}

/// Runs [`Reflection::compare`] for each length on a thread with a
/// large stack.
///
/// Proof construction and checking recurse once per list element; at
/// the paper's `n = 2000` (and beyond) that exceeds the 2 MiB default
/// of test threads. The whole case study is built inside the spawned
/// thread: a `Library` *session* is single-threaded (its scratch pools
/// and probe state are `Rc`/`RefCell`-based), and nothing here needs
/// the cross-thread `SharedLibrary`/`fork()` path that parallel test
/// runs use.
///
/// # Panics
///
/// Panics if the worker thread cannot be spawned or a comparison fails.
pub fn compare_with_big_stack(lengths: &[u64]) -> Vec<ReflectionReport> {
    let lengths = lengths.to_vec();
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(move || {
            let r = Reflection::new();
            lengths.iter().map(|&n| r.compare(n)).collect()
        })
        .expect("spawn reflection worker")
        .join()
        .expect("reflection worker succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_routes_prove_sortedness() {
        let r = Reflection::new();
        let l = r.repeat_list(1, 100);
        let proof = r.naive_prove(&l).unwrap();
        assert!(r.kernel_check(&proof).is_ok());
        assert_eq!(r.reflective_check(&l), Some(true));
        // proof: 99 Sorted_cons nodes + 1 Sorted_sing + le sub-proofs
        assert!(proof.size() >= 100);
    }

    #[test]
    fn unsorted_lists_are_rejected_by_both() {
        let r = Reflection::new();
        let u = r.library().universe();
        let l = u.list_value([Value::nat(2), Value::nat(1)]);
        assert!(r.naive_prove(&l).is_none());
        assert_eq!(r.reflective_check(&l), Some(false));
    }

    #[test]
    fn compare_runs_at_paper_scale() {
        // The paper's instance is n = 2000; keep the unit test at 400
        // to stay fast, the bench binary runs 2000.
        let r = Reflection::new();
        let report = r.compare(400);
        assert_eq!(report.n, 400);
        assert!(report.proof_size >= 400);
        // The reflective route must win by a wide margin.
        assert!(
            report.speedup() > 2.0,
            "expected reflection to be much faster: {report:?}"
        );
    }

    #[test]
    fn tampered_proofs_fail_the_kernel() {
        let r = Reflection::new();
        let l = r.repeat_list(1, 10);
        let mut proof = r.naive_prove(&l).unwrap();
        // Graft the wrong sub-derivation.
        let small = r.naive_prove(&r.repeat_list(1, 3)).unwrap();
        // subproofs: [le proof, sorted proof] for sorted_cons
        let last = proof.subproofs.len() - 1;
        proof.subproofs[last] = small;
        assert!(r.kernel_check(&proof).is_err());
    }
}
