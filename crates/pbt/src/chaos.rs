//! Seed-controlled fault injection for the PBT pipeline.
//!
//! Robustness of the [`Runner`](crate::Runner) — crash isolation,
//! budget cut-offs, deadline enforcement — is itself testable: wrap a
//! generator and a property in a [`Chaos`] configuration and the
//! wrappers inject faults at controlled rates:
//!
//! * generator `None`s (spurious discards),
//! * panics in the generator or the property (simulating a buggy
//!   handwritten checker),
//! * busy-loop *budget burns* (simulating pathologically slow
//!   checkers, to exercise deadlines).
//!
//! Fault schedules are driven by dedicated RNG streams derived from the
//! chaos seed, independent of the runner's own RNG, so a given
//! `(seed, rates)` pair injects the same faults at the same test
//! indices on every run — failures found under chaos reproduce
//! exactly.
//!
//! # Example
//!
//! ```
//! use indrel_pbt::{chaos::{silence_panics, Chaos}, Runner, TestOutcome};
//! use indrel_term::Value;
//!
//! let chaos = Chaos::new(7).with_panic_rate(0.01);
//! let _quiet = silence_panics();
//! let report = Runner::new(1).run(
//!     1000,
//!     chaos.wrap_gen(|_, _| Some(vec![Value::nat(4)])),
//!     chaos.wrap_property(|_| TestOutcome::Pass),
//! );
//! // Every requested test executed; the injected panics were caught.
//! assert_eq!(report.passed + report.crashed, 1000);
//! ```

use crate::TestOutcome;
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::hash::{Hash, Hasher};
use std::panic;

/// Stream separators so the generator and property wrappers see
/// independent fault schedules from one seed.
const GEN_STREAM: u64 = 0x67656e5f73747265; // "gen_stre"
const PROP_STREAM: u64 = 0x70726f705f737472; // "prop_str"
/// Streams for the keyed serving-layer faults ([`Chaos::rolls_shard_poison`],
/// [`Chaos::rolls_deadline_storm`]).
const POISON_STREAM: u64 = 0x73686172645f7073; // "shard_ps"
const STORM_STREAM: u64 = 0x73746f726d5f646c; // "storm_dl"

/// A seed-controlled fault-injection configuration. All rates default
/// to zero (no faults); the builders below switch individual faults
/// on. `Chaos` is a plain config — each call to [`Chaos::wrap_gen`] /
/// [`Chaos::wrap_property`] starts a fresh deterministic fault
/// schedule.
#[derive(Clone, Debug)]
pub struct Chaos {
    seed: u64,
    none_rate: f64,
    gen_panic_rate: f64,
    prop_panic_rate: f64,
    burn_rate: f64,
    burn_iters: u64,
    shard_poison_rate: f64,
    deadline_storm_rate: f64,
}

impl Chaos {
    /// A fault-free configuration with the given schedule seed.
    pub fn new(seed: u64) -> Chaos {
        Chaos {
            seed,
            none_rate: 0.0,
            gen_panic_rate: 0.0,
            prop_panic_rate: 0.0,
            burn_rate: 0.0,
            burn_iters: 0,
            shard_poison_rate: 0.0,
            deadline_storm_rate: 0.0,
        }
    }

    /// Probability that a wrapped generator returns `None` (a discard).
    pub fn with_none_rate(mut self, p: f64) -> Chaos {
        self.none_rate = p;
        self
    }

    /// Probability that a wrapped generator panics.
    pub fn with_gen_panic_rate(mut self, p: f64) -> Chaos {
        self.gen_panic_rate = p;
        self
    }

    /// Probability that a wrapped property panics (an injected checker
    /// crash).
    pub fn with_panic_rate(mut self, p: f64) -> Chaos {
        self.prop_panic_rate = p;
        self
    }

    /// Probability that a wrapped property first spins a busy loop of
    /// `iters` iterations — a budget burn, for exercising deadlines.
    pub fn with_burn(mut self, p: f64, iters: u64) -> Chaos {
        self.burn_rate = p;
        self.burn_iters = iters;
        self
    }

    /// Probability that [`Chaos::rolls_shard_poison`] answers `true`
    /// for a given key — the concurrent-serving harness poisons a memo
    /// shard on those requests (simulating a writer panicking inside
    /// the shard lock).
    pub fn with_shard_poison_rate(mut self, p: f64) -> Chaos {
        self.shard_poison_rate = p;
        self
    }

    /// Probability that [`Chaos::rolls_deadline_storm`] answers `true`
    /// for a given key — the harness collapses that request's budget to
    /// near-nothing, forcing the retry/backoff and shedding paths.
    pub fn with_deadline_storm_rate(mut self, p: f64) -> Chaos {
        self.deadline_storm_rate = p;
        self
    }

    /// Keyed, stateless fault roll: the answer depends only on
    /// `(chaos seed, stream, key)`, never on call order or thread
    /// interleaving — exactly what a concurrent harness needs, where
    /// worker scheduling is nondeterministic but the fault plan must
    /// not be. Zero rates never construct an RNG.
    fn keyed_roll(&self, stream: u64, key: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ stream ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        roll(&mut rng, p)
    }

    /// Whether the request (or test) identified by `key` should poison
    /// a memo shard. Deterministic per `(seed, key)`.
    pub fn rolls_shard_poison(&self, key: u64) -> bool {
        self.keyed_roll(POISON_STREAM, key, self.shard_poison_rate)
    }

    /// Whether the request identified by `key` is caught in a deadline
    /// storm (its budget collapsed). Deterministic per `(seed, key)`,
    /// independent of the shard-poison schedule.
    pub fn rolls_deadline_storm(&self, key: u64) -> bool {
        self.keyed_roll(STORM_STREAM, key, self.deadline_storm_rate)
    }

    /// Wraps a generator with the configured generator faults. Faults
    /// are decided *before* delegating, so an injected fault consumes
    /// no randomness from the runner's RNG.
    pub fn wrap_gen<F>(&self, mut f: F) -> impl FnMut(u64, &mut dyn RngCore) -> Option<Vec<Value>>
    where
        F: FnMut(u64, &mut dyn RngCore) -> Option<Vec<Value>>,
    {
        let mut faults = SmallRng::seed_from_u64(self.seed ^ GEN_STREAM);
        let panic_rate = self.gen_panic_rate;
        let none_rate = self.none_rate;
        move |size, rng| {
            if roll(&mut faults, panic_rate) {
                panic!("chaos: injected generator panic");
            }
            if roll(&mut faults, none_rate) {
                return None;
            }
            f(size, rng)
        }
    }

    /// Wraps a property with the configured property faults.
    pub fn wrap_property<F>(&self, mut f: F) -> impl FnMut(&[Value]) -> TestOutcome
    where
        F: FnMut(&[Value]) -> TestOutcome,
    {
        let mut faults = SmallRng::seed_from_u64(self.seed ^ PROP_STREAM);
        let panic_rate = self.prop_panic_rate;
        let burn_rate = self.burn_rate;
        let burn_iters = self.burn_iters;
        move |args| {
            if roll(&mut faults, burn_rate) {
                burn(burn_iters);
            }
            if roll(&mut faults, panic_rate) {
                panic!("chaos: injected checker panic on {args:?}");
            }
            f(args)
        }
    }

    /// [`Chaos::wrap_gen`] for the parallel engine
    /// ([`Runner::run_par`](crate::Runner::run_par)).
    ///
    /// The sequential wrapper keys its fault schedule on *call order*,
    /// which is meaningless under work stealing. This wrapper instead
    /// rolls faults from the RNG handed to the generator — the slot's
    /// own deterministic stream — so whether test `(seed, index)` gets
    /// a fault is identical at any worker count. Rolls consume slot
    /// randomness, so a nonzero-rate wrapped generator produces
    /// different inputs than the bare one; zero-rate wrapping draws
    /// nothing and is a no-op, as in the sequential wrapper.
    ///
    /// The wrapper holds no schedule state of its own (`Send`/`Sync`
    /// follow from `F`), so build one per worker inside the `make`
    /// factory — even around a worker-local forked session.
    pub fn wrap_gen_par<F>(&self, f: F) -> impl Fn(u64, &mut dyn RngCore) -> Option<Vec<Value>>
    where
        F: Fn(u64, &mut dyn RngCore) -> Option<Vec<Value>>,
    {
        let panic_rate = self.gen_panic_rate;
        let none_rate = self.none_rate;
        move |size, rng| {
            if roll(rng, panic_rate) {
                panic!("chaos: injected generator panic");
            }
            if roll(rng, none_rate) {
                return None;
            }
            f(size, rng)
        }
    }

    /// [`Chaos::wrap_property`] for the parallel engine.
    ///
    /// Properties receive no RNG, so per-test determinism comes from a
    /// fingerprint instead: faults are rolled from a fresh RNG seeded
    /// by hashing the chaos seed with the input tuple. The same input
    /// is faulted the same way on every run and at any worker count
    /// (within one build — the fingerprint uses
    /// [`std::hash::DefaultHasher`], which is stable per build, not
    /// across toolchains).
    pub fn wrap_property_par<F>(&self, f: F) -> impl Fn(&[Value]) -> TestOutcome
    where
        F: Fn(&[Value]) -> TestOutcome,
    {
        let seed = self.seed ^ PROP_STREAM;
        let panic_rate = self.prop_panic_rate;
        let burn_rate = self.burn_rate;
        let burn_iters = self.burn_iters;
        move |args| {
            let mut h = std::hash::DefaultHasher::new();
            seed.hash(&mut h);
            args.hash(&mut h);
            let mut faults = SmallRng::seed_from_u64(h.finish());
            if roll(&mut faults, burn_rate) {
                burn(burn_iters);
            }
            if roll(&mut faults, panic_rate) {
                panic!("chaos: injected checker panic on {args:?}");
            }
            f(args)
        }
    }
}

/// True with probability `p`; draws nothing when `p` is zero, so a
/// disabled fault does not perturb the schedules of enabled ones.
fn roll<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> bool {
    p > 0.0 && ((rng.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
}

/// Spins `iters` iterations of opaque arithmetic: wall-clock waste the
/// optimizer cannot remove.
fn burn(iters: u64) {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = std::hint::black_box(acc.wrapping_add(i | 1));
    }
    std::hint::black_box(acc);
}

/// Runs `f`; if it panics, renders `dump` to stderr before resuming
/// the panic.
///
/// This is the harness-failure path of the serving layer's flight
/// recorder: wrap a chaos round in
/// `dump_on_panic(|| server.dump_flight_recorder(), || …)` and the last
/// N request spans survive the crash in the test log, repro tokens
/// included. The dump closure is only invoked on panic, so a passing
/// run pays nothing. Generic over the renderer because this crate
/// cannot depend on the serving layer (the dependency points the other
/// way).
pub fn dump_on_panic<T>(dump: impl FnOnce() -> String, f: impl FnOnce() -> T) -> T {
    match panic::catch_unwind(panic::AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(payload) => {
            eprintln!("{}", dump());
            panic::resume_unwind(payload);
        }
    }
}

/// Replaces the global panic hook with a no-op until the returned guard
/// drops, then restores the previous hook.
///
/// The [`Runner`](crate::Runner) catches panics, but the default hook
/// still prints a message per caught panic to stderr; a chaos run with
/// hundreds of injected crashes would bury real output. The hook is
/// process-global, so the guard silences panics on *all* threads while
/// alive — keep it scoped tightly.
pub fn silence_panics() -> PanicSilence {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    PanicSilence { prev: Some(prev) }
}

/// Guard returned by [`silence_panics`]; restores the previous panic
/// hook on drop.
pub struct PanicSilence {
    prev: Option<PanicHook>,
}

/// The type [`std::panic::set_hook`] accepts.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync>;

impl Drop for PanicSilence {
    fn drop(&mut self) {
        // `take_hook`/`set_hook` panic when called from a panicking
        // thread, and a panic escaping this destructor during cleanup
        // aborts the whole process ("thread caused non-unwinding
        // panic"). A failing test under `silence_panics` must fail,
        // not abort: on the unwinding path, leave the no-op hook
        // installed instead of restoring.
        if std::thread::panicking() {
            return;
        }
        if let Some(prev) = self.prev.take() {
            let _ = panic::take_hook();
            panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Runner, TestOutcome};
    use indrel_producers::{Budget, Exhaustion};
    use rand::Rng as _;
    use std::time::Duration;

    fn gen_nat(size: u64, rng: &mut dyn RngCore) -> Option<Vec<Value>> {
        Some(vec![Value::nat(rng.gen_range(0..=size))])
    }

    #[test]
    fn one_percent_panics_complete_the_run() {
        // The ISSUE acceptance scenario: 1% injected checker panics,
        // the run still completes every requested test and reports the
        // crashes.
        let chaos = Chaos::new(42).with_panic_rate(0.01);
        let _quiet = silence_panics();
        let r = Runner::new(1).run(
            2000,
            chaos.wrap_gen(gen_nat),
            chaos.wrap_property(|_| TestOutcome::Pass),
        );
        assert_eq!(r.passed + r.crashed, 2000, "all requested tests executed");
        assert!(r.crashed > 0, "~20 crashes expected at 1%");
        assert!(r.crashed < 100, "rate should stay near 1%: {}", r.crashed);
        assert!(r.failed.is_none());
        assert!(r.stopped.is_none());
        let crash = r.first_crash.expect("first crashing input recorded");
        assert!(crash.input.is_some());
        assert!(crash.message.contains("injected checker panic"));
    }

    #[test]
    fn chaos_schedules_are_deterministic() {
        let run = || {
            let chaos = Chaos::new(42)
                .with_panic_rate(0.02)
                .with_none_rate(0.05)
                .with_gen_panic_rate(0.01);
            let _quiet = silence_panics();
            Runner::new(1).run(
                500,
                chaos.wrap_gen(gen_nat),
                chaos.wrap_property(|_| TestOutcome::Pass),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.discarded, b.discarded);
        assert_eq!(a.first_crash.map(|c| c.test), b.first_crash.map(|c| c.test));
    }

    #[test]
    fn none_rate_discards() {
        let chaos = Chaos::new(7).with_none_rate(0.5);
        let r = Runner::new(1).run(
            200,
            chaos.wrap_gen(gen_nat),
            chaos.wrap_property(|_| TestOutcome::Pass),
        );
        assert_eq!(r.passed, 200);
        assert!(r.discarded > 50, "~200 discards expected: {}", r.discarded);
        assert_eq!(r.crashed, 0);
    }

    #[test]
    fn burns_trip_the_deadline() {
        let chaos = Chaos::new(9).with_burn(1.0, 2_000_000);
        let r = Runner::new(1)
            .with_budget(Budget::unlimited().with_deadline(Duration::from_millis(5)))
            .run(
                1_000_000,
                chaos.wrap_gen(gen_nat),
                chaos.wrap_property(|_| TestOutcome::Pass),
            );
        assert_eq!(r.stopped, Some(Exhaustion::Deadline));
        assert!(r.passed < 1_000_000);
    }

    #[test]
    fn keyed_rolls_are_deterministic_independent_and_rate_bounded() {
        let chaos = Chaos::new(11)
            .with_shard_poison_rate(0.1)
            .with_deadline_storm_rate(0.25);
        // Per-key determinism: same (seed, key) → same answer, in any
        // order, any number of times.
        for key in (0..200u64).rev() {
            assert_eq!(chaos.rolls_shard_poison(key), chaos.rolls_shard_poison(key));
            assert_eq!(
                chaos.rolls_deadline_storm(key),
                chaos.rolls_deadline_storm(key)
            );
        }
        // Rates land in the right ballpark over many keys.
        let poisons = (0..2000u64)
            .filter(|k| chaos.rolls_shard_poison(*k))
            .count();
        let storms = (0..2000u64)
            .filter(|k| chaos.rolls_deadline_storm(*k))
            .count();
        assert!((100..400).contains(&poisons), "~200 expected: {poisons}");
        assert!((300..700).contains(&storms), "~500 expected: {storms}");
        // The streams are independent: changing one rate must not move
        // the other schedule.
        let storm_only = Chaos::new(11).with_deadline_storm_rate(0.25);
        for key in 0..500u64 {
            assert_eq!(
                chaos.rolls_deadline_storm(key),
                storm_only.rolls_deadline_storm(key)
            );
            assert!(!storm_only.rolls_shard_poison(key), "zero rate never fires");
        }
    }

    #[test]
    fn dump_on_panic_renders_only_on_panic_and_rethrows() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let dumped = AtomicBool::new(false);
        let v = dump_on_panic(
            || {
                dumped.store(true, Ordering::Relaxed);
                String::new()
            },
            || 7,
        );
        assert_eq!(v, 7);
        assert!(!dumped.load(Ordering::Relaxed), "passing runs pay nothing");
        let _quiet = silence_panics();
        let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            dump_on_panic(
                || {
                    dumped.store(true, Ordering::Relaxed);
                    "flight dump".to_string()
                },
                || panic!("chaos failure"),
            )
        }));
        assert!(caught.is_err(), "the panic must propagate");
        assert!(dumped.load(Ordering::Relaxed), "the dump must render");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let chaos = Chaos::new(3);
        let plain = Runner::new(5).run(300, gen_nat, |args| {
            TestOutcome::from_bool(args[0].as_nat().unwrap() != 9)
        });
        let wrapped = Runner::new(5).run(
            300,
            chaos.wrap_gen(gen_nat),
            chaos.wrap_property(|args| TestOutcome::from_bool(args[0].as_nat().unwrap() != 9)),
        );
        assert_eq!(plain.passed, wrapped.passed);
        assert_eq!(plain.failed.is_some(), wrapped.failed.is_some());
        assert_eq!(wrapped.crashed, 0);
    }
}
