//! A QuickChick-style property-based testing runner.
//!
//! This crate provides the harness that the paper's evaluation (§6.2)
//! exercises: generate test inputs with a (handwritten or derived)
//! generator, check a property with a (handwritten or derived) checker,
//! and measure **throughput** (tests per second, Figure 3) and **mean
//! tests to failure** (the mutation study).
//!
//! Inputs are tuples of [`Value`]s; a generator may fail to produce
//! (backtracking exhausted), which counts as a *discard*, exactly like
//! QuickChick's `None` results.
//!
//! # Example
//!
//! ```
//! use indrel_pbt::{Runner, TestOutcome};
//! use indrel_term::Value;
//!
//! let runner = Runner::new(42);
//! let report = runner.run(
//!     1000,
//!     |size, rng| Some(vec![Value::nat(rand::Rng::gen_range(rng, 0..=size))]),
//!     |args| TestOutcome::from_bool(args[0].as_nat().unwrap() <= 100),
//! );
//! assert!(report.failed.is_none());
//! assert_eq!(report.passed, 1000);
//! ```

use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};

/// The verdict of one test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TestOutcome {
    /// The property held.
    Pass,
    /// The property failed — a counterexample.
    Fail,
    /// The input did not satisfy the property's precondition.
    Discard,
}

impl TestOutcome {
    /// `true → Pass`, `false → Fail`.
    pub fn from_bool(b: bool) -> TestOutcome {
        if b {
            TestOutcome::Pass
        } else {
            TestOutcome::Fail
        }
    }

    /// Converts a three-valued checker result; `None` discards (the
    /// checker could not decide within fuel).
    pub fn from_check(r: Option<bool>) -> TestOutcome {
        match r {
            Some(true) => TestOutcome::Pass,
            Some(false) => TestOutcome::Fail,
            None => TestOutcome::Discard,
        }
    }
}

/// The result of a bounded test run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Tests that passed.
    pub passed: usize,
    /// Inputs discarded (generator failures or property preconditions).
    pub discarded: usize,
    /// The first counterexample, with the number of tests executed
    /// before it (inclusive).
    pub failed: Option<(Vec<Value>, usize)>,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failed {
            None => write!(f, "+++ Passed {} tests ({} discards)", self.passed, self.discarded),
            Some((_, n)) => write!(f, "*** Failed after {n} tests ({} discards)", self.discarded),
        }
    }
}

/// Throughput measurement (Figure 3's metric).
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Tests executed.
    pub tests: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl Throughput {
    /// Tests per second.
    pub fn tests_per_second(&self) -> f64 {
        self.tests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Mean-tests-to-failure measurement (the §6.2 mutation study metric).
#[derive(Clone, Copy, Debug)]
pub struct MeanTestsToFailure {
    /// Trials that found the bug.
    pub failures: usize,
    /// Trials that hit the test budget without failing.
    pub exhausted: usize,
    /// Mean number of tests needed to find the bug, over failing
    /// trials.
    pub mean: f64,
}

/// A deterministic test runner.
///
/// Generators receive a size parameter and the runner's RNG; properties
/// receive the generated tuple.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    seed: u64,
    size: u64,
    max_discards: usize,
}

impl Runner {
    /// A runner with the given seed, default size 10, and a discard
    /// budget of 10× the test budget.
    pub fn new(seed: u64) -> Runner {
        Runner {
            seed,
            size: 10,
            max_discards: 0,
        }
    }

    /// Sets the generation size.
    pub fn with_size(mut self, size: u64) -> Runner {
        self.size = size;
        self
    }

    /// Runs up to `n` tests.
    pub fn run(
        &self,
        n: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> RunReport {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut passed = 0;
        let mut discarded = 0;
        let max_discards = if self.max_discards == 0 {
            10 * n
        } else {
            self.max_discards
        };
        while passed < n && discarded < max_discards {
            let Some(input) = generate(self.size, &mut rng) else {
                discarded += 1;
                continue;
            };
            match property(&input) {
                TestOutcome::Pass => passed += 1,
                TestOutcome::Discard => discarded += 1,
                TestOutcome::Fail => {
                    return RunReport {
                        passed,
                        discarded,
                        failed: Some((input, passed + 1)),
                    };
                }
            }
        }
        RunReport {
            passed,
            discarded,
            failed: None,
        }
    }

    /// Measures throughput: runs tests until `budget` elapses (checking
    /// the clock every `batch` tests), returning the count and the
    /// exact elapsed time. Failures and discards still count as
    /// executed tests, matching the paper's tests-per-second metric.
    pub fn throughput(
        &self,
        budget: Duration,
        batch: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> Throughput {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let start = Instant::now();
        let mut tests = 0usize;
        loop {
            for _ in 0..batch {
                if let Some(input) = generate(self.size, &mut rng) {
                    let _ = property(&input);
                }
                tests += 1;
            }
            if start.elapsed() >= budget {
                break;
            }
        }
        Throughput {
            tests,
            elapsed: start.elapsed(),
        }
    }

    /// Runs `trials` independent bug hunts, each with a budget of
    /// `budget` tests, and reports the mean number of tests needed to
    /// find a counterexample.
    pub fn mean_tests_to_failure(
        &self,
        trials: usize,
        budget: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> MeanTestsToFailure {
        let mut failures = 0usize;
        let mut exhausted = 0usize;
        let mut total_tests = 0usize;
        for trial in 0..trials {
            let runner = Runner {
                seed: self.seed.wrapping_add(trial as u64).wrapping_mul(0x9E3779B9),
                size: self.size,
                max_discards: self.max_discards,
            };
            let report = runner.run(budget, &mut generate, &mut property);
            match report.failed {
                Some((_, n)) => {
                    failures += 1;
                    total_tests += n;
                }
                None => exhausted += 1,
            }
        }
        MeanTestsToFailure {
            failures,
            exhausted,
            mean: if failures == 0 {
                f64::NAN
            } else {
                total_tests as f64 / failures as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    fn gen_nat(size: u64, rng: &mut dyn rand::RngCore) -> Option<Vec<Value>> {
        Some(vec![Value::nat(rng.gen_range(0..=size))])
    }

    #[test]
    fn passing_property_runs_to_budget() {
        let r = Runner::new(1).run(500, gen_nat, |_| TestOutcome::Pass);
        assert_eq!(r.passed, 500);
        assert!(r.failed.is_none());
        assert!(r.to_string().contains("Passed"));
    }

    #[test]
    fn failing_property_reports_counterexample() {
        let r = Runner::new(1).with_size(100).run(10_000, gen_nat, |args| {
            TestOutcome::from_bool(args[0].as_nat().unwrap() < 90)
        });
        let (cex, n) = r.failed.clone().expect("should fail");
        assert!(cex[0].as_nat().unwrap() >= 90);
        assert!(n >= 1);
        assert!(r.to_string().contains("Failed"));
    }

    #[test]
    fn discards_bound_the_run() {
        let r = Runner::new(1).run(100, |_, _| None, |_| TestOutcome::Pass);
        assert_eq!(r.passed, 0);
        assert_eq!(r.discarded, 1000);
    }

    #[test]
    fn from_check_maps_three_values() {
        assert_eq!(TestOutcome::from_check(Some(true)), TestOutcome::Pass);
        assert_eq!(TestOutcome::from_check(Some(false)), TestOutcome::Fail);
        assert_eq!(TestOutcome::from_check(None), TestOutcome::Discard);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let prop = |args: &[Value]| TestOutcome::from_bool(args[0].as_nat().unwrap() != 7);
        let a = Runner::new(9).with_size(10).run(1000, gen_nat, prop);
        let b = Runner::new(9).with_size(10).run(1000, gen_nat, prop);
        assert_eq!(a.failed.is_some(), b.failed.is_some());
        if let (Some((_, na)), Some((_, nb))) = (a.failed, b.failed) {
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn throughput_counts_tests() {
        let t = Runner::new(1).throughput(
            Duration::from_millis(20),
            64,
            gen_nat,
            |_| TestOutcome::Pass,
        );
        assert!(t.tests >= 64);
        assert!(t.tests_per_second() > 0.0);
    }

    #[test]
    fn mtf_finds_seeded_bug() {
        let m = Runner::new(5).with_size(50).mean_tests_to_failure(
            20,
            10_000,
            gen_nat,
            |args| TestOutcome::from_bool(args[0].as_nat().unwrap() % 37 != 0 || args[0].as_nat().unwrap() == 0),
        );
        assert!(m.failures > 0);
        assert!(m.mean >= 1.0);
    }

    #[test]
    fn mtf_reports_exhaustion() {
        let m = Runner::new(5).mean_tests_to_failure(3, 50, gen_nat, |_| TestOutcome::Pass);
        assert_eq!(m.failures, 0);
        assert_eq!(m.exhausted, 3);
        assert!(m.mean.is_nan());
    }
}
