//! A QuickChick-style property-based testing runner.
//!
//! This crate provides the harness that the paper's evaluation (§6.2)
//! exercises: generate test inputs with a (handwritten or derived)
//! generator, check a property with a (handwritten or derived) checker,
//! and measure **throughput** (tests per second, Figure 3) and **mean
//! tests to failure** (the mutation study).
//!
//! Inputs are tuples of [`Value`]s; a generator may fail to produce
//! (backtracking exhausted), which counts as a *discard*, exactly like
//! QuickChick's `None` results.
//!
//! The runner is fault-isolated: a generator or property that panics
//! does not abort the run. The panic is caught, counted as a *crash* in
//! the [`RunReport`] (with the first crashing input preserved), and the
//! run continues. Runs can also carry a [`Budget`] — steps, backtracks,
//! a wall-clock deadline — whose exhaustion stops the run early with a
//! structured [`Exhaustion`] reason instead of hanging. The [`chaos`]
//! module injects faults on purpose to test exactly these paths.
//!
//! Runs can execute across worker threads: configure
//! [`Parallelism`] and call [`Runner::run_par`], which shards test
//! indices over deterministic per-index RNG streams so the merged
//! [`RunReport`] is byte-identical regardless of worker count — see
//! the [`par`] module for the full model and the `(seed, index)`
//! reproduction token.
//!
//! # Example
//!
//! ```
//! use indrel_pbt::{Runner, TestOutcome};
//! use indrel_term::Value;
//!
//! let runner = Runner::new(42);
//! let report = runner.run(
//!     1000,
//!     |size, rng| Some(vec![Value::nat(rand::Rng::gen_range(rng, 0..=size))]),
//!     |args| TestOutcome::from_bool(args[0].as_nat().unwrap() <= 100),
//! );
//! assert!(report.failed.is_none());
//! assert_eq!(report.passed, 1000);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod par;

pub use par::Parallelism;

use indrel_producers::{Budget, Exhaustion, Hist, Meter};
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The verdict of one test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TestOutcome {
    /// The property held.
    Pass,
    /// The property failed — a counterexample.
    Fail,
    /// The input did not satisfy the property's precondition.
    Discard,
}

impl TestOutcome {
    /// `true → Pass`, `false → Fail`.
    pub fn from_bool(b: bool) -> TestOutcome {
        if b {
            TestOutcome::Pass
        } else {
            TestOutcome::Fail
        }
    }

    /// Converts a three-valued checker result; `None` discards (the
    /// checker could not decide within fuel).
    pub fn from_check(r: Option<bool>) -> TestOutcome {
        match r {
            Some(true) => TestOutcome::Pass,
            Some(false) => TestOutcome::Fail,
            None => TestOutcome::Discard,
        }
    }
}

/// QuickChick-style label sink, handed to properties run through
/// [`Runner::run_with`]. Labels recorded by a test are folded into
/// [`RunReport::labels`] when the test reaches a pass/fail verdict
/// (discarded and crashed tests record nothing, as in QuickChick);
/// duplicate labels within one test count once.
///
/// ```
/// use indrel_pbt::{Runner, TestOutcome};
/// use indrel_term::Value;
/// let report = Runner::new(1).run_with(
///     100,
///     |size, rng| Some(vec![Value::nat(rand::Rng::gen_range(rng, 0..=size))]),
///     |args, labels| {
///         let n = args[0].as_nat().unwrap();
///         labels.collect(format!("parity={}", n % 2));
///         labels.classify(n == 0, "zero");
///         TestOutcome::Pass
///     },
/// );
/// assert_eq!(report.labels.values().copied().take(2).sum::<u64>(), 100);
/// ```
#[derive(Debug, Default)]
pub struct Labels {
    current: Vec<String>,
}

impl Labels {
    /// Records `label` for the current test (QuickChick's `collect`).
    pub fn collect(&mut self, label: impl fmt::Display) {
        self.current.push(label.to_string());
    }

    /// Records `label` when `cond` holds (QuickChick's `classify`).
    pub fn classify(&mut self, cond: bool, label: &str) {
        if cond {
            self.current.push(label.to_string());
        }
    }

    /// Folds this test's labels into the run totals (deduplicated
    /// within the test) and clears for the next test.
    fn fold_into(&mut self, totals: &mut BTreeMap<String, u64>) {
        self.current.sort_unstable();
        self.current.dedup();
        for label in self.current.drain(..) {
            *totals.entry(label).or_default() += 1;
        }
    }
}

/// A test whose generator or property panicked.
#[derive(Clone, Debug)]
pub struct Crash {
    /// The generated input. `None` when the *generator* panicked, so
    /// there was no input yet.
    pub input: Option<Vec<Value>>,
    /// The panic payload, rendered as a string.
    pub message: String,
    /// 1-based index of the crashing test among executed tests.
    pub test: usize,
}

/// Budget resources consumed by one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Spent {
    /// Steps charged (one per attempted test).
    pub steps: u64,
    /// Backtracks charged (one per discard).
    pub backtracks: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
}

/// The result of a bounded test run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Tests that passed.
    pub passed: usize,
    /// Inputs discarded (generator failures or property preconditions).
    pub discarded: usize,
    /// Tests whose generator or property panicked. Each panic is
    /// caught and counted; the run continues.
    pub crashed: usize,
    /// The first crash observed, if any.
    pub first_crash: Option<Crash>,
    /// The first counterexample, with the number of tests executed
    /// before it (inclusive).
    pub failed: Option<(Vec<Value>, usize)>,
    /// Set when the runner's [`Budget`] stopped the run before the
    /// requested number of tests.
    pub stopped: Option<Exhaustion>,
    /// The seed the run was started with — one half of the
    /// reproduction token.
    pub seed: u64,
    /// The counterexample's slot index, for runs executed by the
    /// parallel engine ([`Runner::run_par`]). Together with
    /// [`RunReport::seed`] this is the *reproduction token*: replay it
    /// with [`Runner::repro_index`] on any machine, with any worker
    /// count. `None` for sequential runs (whose RNG is threaded
    /// through the whole run, so single tests are not independently
    /// replayable) and for parallel runs that did not fail.
    pub failed_index: Option<u64>,
    /// Budget accounting for the whole run.
    pub spent: Spent,
    /// Label counts from [`Labels::collect`] / [`Labels::classify`],
    /// over tests that reached a pass/fail verdict.
    pub labels: BTreeMap<String, u64>,
    /// Distribution of generated input sizes (summed constructor nodes
    /// per tuple), over every successful generation — the generator's
    /// observable output distribution.
    pub input_sizes: Hist,
}

impl RunReport {
    /// Attempted tests: every verdict plus discards and crashes.
    pub fn attempts(&self) -> usize {
        self.passed + self.discarded + self.crashed + usize::from(self.failed.is_some())
    }

    /// Discards as a percentage of attempts (0 when nothing ran).
    pub fn discard_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            100.0 * self.discarded as f64 / attempts as f64
        }
    }

    /// The `(seed, index)` reproduction token of a parallel run's
    /// counterexample — `None` unless this report has a
    /// [`failed_index`](RunReport::failed_index). Feed it back to
    /// [`Runner::repro_index`] to replay exactly the failing test.
    pub fn reproduction(&self) -> Option<(u64, u64)> {
        self.failed_index.map(|i| (self.seed, i))
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failed {
            Some((_, n)) => {
                write!(
                    f,
                    "*** Failed after {n} tests ({} discards)",
                    self.discarded
                )?;
            }
            None => match self.stopped {
                Some(e) => write!(
                    f,
                    "!!! Gave up after {} tests ({} discards): {e}",
                    self.passed, self.discarded
                )?,
                None => {
                    write!(
                        f,
                        "+++ Passed {} tests ({} discards)",
                        self.passed, self.discarded
                    )?;
                }
            },
        }
        if self.crashed > 0 {
            write!(f, " [{} crashed]", self.crashed)?;
        }
        writeln!(f)?;
        if let Some(index) = self.failed_index {
            writeln!(f, "  repro:     seed={} index={index}", self.seed)?;
        }
        match &self.first_crash {
            Some(c) => writeln!(
                f,
                "  crashed:   {} (first at test {})",
                self.crashed, c.test
            )?,
            None => writeln!(f, "  crashed:   0")?,
        }
        writeln!(
            f,
            "  discards:  {} of {} attempts ({:.1}%)",
            self.discarded,
            self.attempts(),
            self.discard_rate()
        )?;
        match self.stopped {
            Some(e) => writeln!(f, "  stopped:   {e}")?,
            None => writeln!(f, "  stopped:   no (ran to completion)")?,
        }
        writeln!(
            f,
            "  spent:     {} steps, {} backtracks",
            self.spent.steps, self.spent.backtracks
        )?;
        if self.labels.is_empty() {
            writeln!(f, "  labels:    (none)")?;
        } else {
            writeln!(f, "  labels:")?;
            let verdicts = self.passed + usize::from(self.failed.is_some());
            for (label, count) in &self.labels {
                let pct = if verdicts == 0 {
                    0.0
                } else {
                    100.0 * *count as f64 / verdicts as f64
                };
                writeln!(f, "    {pct:>5.1}% {label} ({count})")?;
            }
        }
        write!(f, "  input sizes: {}", self.input_sizes)
    }
}

/// Throughput measurement (Figure 3's metric).
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Tests executed.
    pub tests: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl Throughput {
    /// Tests per second.
    pub fn tests_per_second(&self) -> f64 {
        self.tests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Mean-tests-to-failure measurement (the §6.2 mutation study metric).
#[derive(Clone, Copy, Debug)]
pub struct MeanTestsToFailure {
    /// Trials that found the bug.
    pub failures: usize,
    /// Trials that hit the test budget without failing.
    pub exhausted: usize,
    /// Mean number of tests needed to find the bug, over failing
    /// trials.
    pub mean: f64,
}

/// A deterministic test runner.
///
/// Generators receive a size parameter and the runner's RNG; properties
/// receive the generated tuple.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    seed: u64,
    size: u64,
    max_discards: usize,
    budget: Budget,
    parallelism: Parallelism,
}

impl Runner {
    /// A runner with the given seed, default size 10, a discard budget
    /// of 10× the test budget, no resource budget, and
    /// [`Parallelism::Off`].
    pub fn new(seed: u64) -> Runner {
        Runner {
            seed,
            size: 10,
            max_discards: 0,
            budget: Budget::unlimited(),
            parallelism: Parallelism::Off,
        }
    }

    /// Sets the generation size.
    pub fn with_size(mut self, size: u64) -> Runner {
        self.size = size;
        self
    }

    /// Sets the worker-thread configuration used by
    /// [`Runner::run_par`]. Reports from budget-unlimited parallel
    /// runs are byte-identical across every [`Parallelism`] setting;
    /// [`Runner::run`] is unaffected.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Runner {
        self.parallelism = parallelism;
        self
    }

    /// Sets a resource budget for each [`run`](Runner::run): one step
    /// is charged per attempted test, one backtrack per discard, and
    /// the deadline is polled before every test. Exhaustion ends the
    /// run early with [`RunReport::stopped`] set.
    pub fn with_budget(mut self, budget: Budget) -> Runner {
        self.budget = budget;
        self
    }

    /// Runs up to `n` tests.
    ///
    /// Panics in the generator or the property are caught
    /// ([`catch_unwind`]) and recorded as crashes; a crashed test
    /// counts toward `n` but neither passes nor discards. The default
    /// panic hook still prints each caught panic to stderr — wrap noisy
    /// runs in [`chaos::silence_panics`].
    pub fn run(
        &self,
        n: usize,
        generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> RunReport {
        self.run_with(n, generate, move |args, _| property(args))
    }

    /// [`Runner::run`] with a [`Labels`] sink handed to the property,
    /// for QuickChick-style `collect`/`classify` distribution
    /// reporting. Everything else behaves identically.
    pub fn run_with(
        &self,
        n: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value], &mut Labels) -> TestOutcome,
    ) -> RunReport {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let meter = Meter::new(self.budget);
        let start = Instant::now();
        let mut passed = 0;
        let mut discarded = 0;
        let mut crashed = 0;
        let mut first_crash: Option<Crash> = None;
        let mut failed: Option<(Vec<Value>, usize)> = None;
        let mut labels = Labels::default();
        let mut label_totals: BTreeMap<String, u64> = BTreeMap::new();
        let mut input_sizes = Hist::default();
        let max_discards = if self.max_discards == 0 {
            10 * n
        } else {
            self.max_discards
        };
        while passed + crashed < n && discarded < max_discards {
            // One step per attempted test. The deadline poll rides on
            // charge_step's own once-per-DEADLINE_POLL_PERIOD check —
            // no extra Instant::now() on the per-test hot path.
            if !meter.charge_step() {
                break;
            }
            let input = match catch_unwind(AssertUnwindSafe(|| generate(self.size, &mut rng))) {
                Ok(Some(input)) => input,
                Ok(None) => {
                    discarded += 1;
                    if !meter.charge_backtrack() {
                        break;
                    }
                    continue;
                }
                Err(payload) => {
                    crashed += 1;
                    if first_crash.is_none() {
                        first_crash = Some(Crash {
                            input: None,
                            message: panic_message(&*payload),
                            test: passed + crashed,
                        });
                    }
                    continue;
                }
            };
            input_sizes.record(input.iter().map(Value::size).sum());
            labels.current.clear();
            match catch_unwind(AssertUnwindSafe(|| property(&input, &mut labels))) {
                Ok(TestOutcome::Pass) => {
                    passed += 1;
                    labels.fold_into(&mut label_totals);
                }
                Ok(TestOutcome::Discard) => {
                    discarded += 1;
                    if !meter.charge_backtrack() {
                        break;
                    }
                }
                Ok(TestOutcome::Fail) => {
                    labels.fold_into(&mut label_totals);
                    failed = Some((input, passed + 1));
                    break;
                }
                Err(payload) => {
                    crashed += 1;
                    if first_crash.is_none() {
                        first_crash = Some(Crash {
                            input: Some(input),
                            message: panic_message(&*payload),
                            test: passed + crashed,
                        });
                    }
                }
            }
        }
        RunReport {
            passed,
            discarded,
            crashed,
            first_crash,
            failed,
            stopped: meter.exhaustion(),
            seed: self.seed,
            failed_index: None,
            spent: Spent {
                steps: meter.steps_used(),
                backtracks: meter.backtracks_used(),
                elapsed: start.elapsed(),
            },
            labels: label_totals,
            input_sizes,
        }
    }

    /// Measures throughput: runs tests until `budget` elapses (checking
    /// the clock every `batch` tests), returning the count and the
    /// exact elapsed time. Failures and discards still count as
    /// executed tests, matching the paper's tests-per-second metric.
    pub fn throughput(
        &self,
        budget: Duration,
        batch: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> Throughput {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let start = Instant::now();
        let mut tests = 0usize;
        loop {
            for _ in 0..batch {
                if let Some(input) = generate(self.size, &mut rng) {
                    let _ = property(&input);
                }
                tests += 1;
            }
            if start.elapsed() >= budget {
                break;
            }
        }
        Throughput {
            tests,
            elapsed: start.elapsed(),
        }
    }

    /// Runs `trials` independent bug hunts, each with a budget of
    /// `budget` tests, and reports the mean number of tests needed to
    /// find a counterexample.
    pub fn mean_tests_to_failure(
        &self,
        trials: usize,
        budget: usize,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> MeanTestsToFailure {
        let mut failures = 0usize;
        let mut exhausted = 0usize;
        let mut total_tests = 0usize;
        for trial in 0..trials {
            let runner = Runner {
                seed: self
                    .seed
                    .wrapping_add(trial as u64)
                    .wrapping_mul(0x9E3779B9),
                size: self.size,
                max_discards: self.max_discards,
                budget: self.budget,
                parallelism: self.parallelism,
            };
            let report = runner.run(budget, &mut generate, &mut property);
            match report.failed {
                Some((_, n)) => {
                    failures += 1;
                    total_tests += n;
                }
                None => exhausted += 1,
            }
        }
        MeanTestsToFailure {
            failures,
            exhausted,
            mean: if failures == 0 {
                f64::NAN
            } else {
                total_tests as f64 / failures as f64
            },
        }
    }
}

/// Renders a caught panic payload; panics carry `&str` or `String`
/// payloads in practice.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    fn gen_nat(size: u64, rng: &mut dyn rand::RngCore) -> Option<Vec<Value>> {
        Some(vec![Value::nat(rng.gen_range(0..=size))])
    }

    #[test]
    fn passing_property_runs_to_budget() {
        let r = Runner::new(1).run(500, gen_nat, |_| TestOutcome::Pass);
        assert_eq!(r.passed, 500);
        assert!(r.failed.is_none());
        assert_eq!(r.crashed, 0);
        assert!(r.stopped.is_none());
        assert_eq!(r.spent.steps, 500);
        assert!(r.to_string().contains("Passed"));
    }

    #[test]
    fn failing_property_reports_counterexample() {
        let r = Runner::new(1).with_size(100).run(10_000, gen_nat, |args| {
            TestOutcome::from_bool(args[0].as_nat().unwrap() < 90)
        });
        let (cex, n) = r.failed.clone().expect("should fail");
        assert!(cex[0].as_nat().unwrap() >= 90);
        assert!(n >= 1);
        assert!(r.to_string().contains("Failed"));
    }

    #[test]
    fn discards_bound_the_run() {
        let r = Runner::new(1).run(100, |_, _| None, |_| TestOutcome::Pass);
        assert_eq!(r.passed, 0);
        assert_eq!(r.discarded, 1000);
        assert_eq!(r.spent.backtracks, 1000);
    }

    #[test]
    fn from_check_maps_three_values() {
        assert_eq!(TestOutcome::from_check(Some(true)), TestOutcome::Pass);
        assert_eq!(TestOutcome::from_check(Some(false)), TestOutcome::Fail);
        assert_eq!(TestOutcome::from_check(None), TestOutcome::Discard);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let prop = |args: &[Value]| TestOutcome::from_bool(args[0].as_nat().unwrap() != 7);
        let a = Runner::new(9).with_size(10).run(1000, gen_nat, prop);
        let b = Runner::new(9).with_size(10).run(1000, gen_nat, prop);
        assert_eq!(a.failed.is_some(), b.failed.is_some());
        if let (Some((_, na)), Some((_, nb))) = (a.failed, b.failed) {
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn throughput_counts_tests() {
        let t = Runner::new(1).throughput(Duration::from_millis(20), 64, gen_nat, |_| {
            TestOutcome::Pass
        });
        assert!(t.tests >= 64);
        assert!(t.tests_per_second() > 0.0);
    }

    #[test]
    fn mtf_finds_seeded_bug() {
        let m = Runner::new(5)
            .with_size(50)
            .mean_tests_to_failure(20, 10_000, gen_nat, |args| {
                TestOutcome::from_bool(
                    args[0].as_nat().unwrap() % 37 != 0 || args[0].as_nat().unwrap() == 0,
                )
            });
        assert!(m.failures > 0);
        assert!(m.mean >= 1.0);
    }

    #[test]
    fn mtf_reports_exhaustion() {
        let m = Runner::new(5).mean_tests_to_failure(3, 50, gen_nat, |_| TestOutcome::Pass);
        assert_eq!(m.failures, 0);
        assert_eq!(m.exhausted, 3);
        assert!(m.mean.is_nan());
    }

    #[test]
    fn panicking_property_is_isolated() {
        let _quiet = crate::chaos::silence_panics();
        let r = Runner::new(3).run(100, gen_nat, |args| {
            if args[0].as_nat().unwrap() == 0 {
                panic!("boom on zero");
            }
            TestOutcome::Pass
        });
        assert_eq!(r.passed + r.crashed, 100);
        assert!(r.crashed > 0, "size-10 nats must hit zero in 100 tests");
        assert!(r.failed.is_none());
        let crash = r.first_crash.clone().expect("crash recorded");
        assert_eq!(crash.input.unwrap()[0].as_nat(), Some(0));
        assert_eq!(crash.message, "boom on zero");
        assert!(crash.test >= 1 && crash.test <= 100);
        assert!(r.to_string().contains("crashed"));
    }

    #[test]
    fn panicking_generator_is_isolated() {
        let _quiet = crate::chaos::silence_panics();
        let mut calls = 0u64;
        let r = Runner::new(3).run(
            50,
            move |size, rng| {
                calls += 1;
                if calls.is_multiple_of(10) {
                    panic!("generator exploded");
                }
                gen_nat(size, rng)
            },
            |_| TestOutcome::Pass,
        );
        assert_eq!(r.passed + r.crashed, 50);
        assert_eq!(r.crashed, 5);
        let crash = r.first_crash.expect("crash recorded");
        assert!(crash.input.is_none(), "generator crash has no input");
        assert_eq!(crash.message, "generator exploded");
    }

    #[test]
    fn step_budget_stops_the_run() {
        let r = Runner::new(1)
            .with_budget(Budget::unlimited().with_steps(25))
            .run(100, gen_nat, |_| TestOutcome::Pass);
        assert_eq!(r.passed, 25);
        assert_eq!(
            r.stopped,
            Some(Exhaustion::Budget(indrel_producers::Resource::Steps))
        );
        assert_eq!(r.spent.steps, 25);
        assert!(r.to_string().contains("Gave up"));
    }

    #[test]
    fn backtrack_budget_bounds_discards() {
        let r = Runner::new(1)
            .with_budget(Budget::unlimited().with_backtracks(7))
            .run(100, |_, _| None, |_| TestOutcome::Pass);
        assert_eq!(r.discarded, 8);
        assert_eq!(
            r.stopped,
            Some(Exhaustion::Budget(indrel_producers::Resource::Backtracks))
        );
    }

    #[test]
    fn deadline_stops_a_slow_run() {
        let r = Runner::new(1)
            .with_budget(Budget::unlimited().with_deadline(Duration::from_millis(10)))
            .run(1_000_000, gen_nat, |_| {
                std::thread::sleep(Duration::from_millis(1));
                TestOutcome::Pass
            });
        assert!(r.passed < 1_000_000);
        assert_eq!(r.stopped, Some(Exhaustion::Deadline));
        assert!(r.spent.elapsed >= Duration::from_millis(10));
    }

    #[test]
    fn labels_count_pass_and_fail_verdicts_only() {
        let r = Runner::new(3).run_with(
            50,
            |_, rng| Some(vec![Value::nat(rand::Rng::gen_range(rng, 0..10u64))]),
            |args, labels| {
                let n = args[0].as_nat().unwrap();
                labels.collect(format!("parity={}", n % 2));
                labels.classify(n >= 5, "big");
                // duplicates within one test count once
                labels.classify(n >= 5, "big");
                if n == 7 {
                    TestOutcome::Discard // labels from discards are dropped
                } else {
                    TestOutcome::Pass
                }
            },
        );
        let verdicts: u64 = ["parity=0", "parity=1"]
            .iter()
            .map(|l| r.labels.get(*l).copied().unwrap_or(0))
            .sum();
        assert_eq!(verdicts, r.passed as u64);
        let big = r.labels.get("big").copied().unwrap_or(0);
        assert!(big <= r.passed as u64);
        assert_eq!(r.attempts(), r.passed + r.discarded);
    }

    #[test]
    fn input_sizes_recorded_per_generated_tuple() {
        let r = Runner::new(5).run(10, |_, _| Some(vec![Value::nat(3)]), |_| TestOutcome::Pass);
        assert_eq!(r.input_sizes.total(), 10);
        assert_eq!(r.input_sizes.max(), Value::nat(3).size());
    }

    #[test]
    fn report_display_always_shows_observability_block() {
        let r = Runner::new(1).run(20, gen_nat, |_| TestOutcome::Pass);
        let s = r.to_string();
        assert!(s.contains("+++ Passed 20 tests (0 discards)"), "{s}");
        assert!(s.contains("crashed:   0"), "{s}");
        assert!(s.contains("discards:  0 of 20 attempts (0.0%)"), "{s}");
        assert!(s.contains("stopped:   no (ran to completion)"), "{s}");
        assert!(s.contains("spent:"), "{s}");
        assert!(s.contains("labels:    (none)"), "{s}");
        assert!(s.contains("input sizes:"), "{s}");
    }

    #[test]
    fn report_display_shows_labels_with_percentages() {
        let r = Runner::new(1).run_with(10, gen_nat, |_, labels| {
            labels.collect("always");
            TestOutcome::Pass
        });
        let s = r.to_string();
        assert!(s.contains("labels:"), "{s}");
        assert!(s.contains("100.0% always (10)"), "{s}");
    }

    #[test]
    fn budget_runs_are_deterministic() {
        let budget = Budget::unlimited().with_steps(40);
        let run = || {
            Runner::new(11)
                .with_budget(budget)
                .run(1000, gen_nat, |_| TestOutcome::Pass)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.stopped, b.stopped);
        assert_eq!(a.spent.steps, b.spent.steps);
    }
}
