//! The parallel test engine: deterministic sharded runs over worker
//! threads.
//!
//! # Determinism model
//!
//! The sequential [`Runner::run`] threads one RNG through every test,
//! so test `i`'s input depends on everything generated before it. The
//! parallel engine instead makes each test *slot* a pure function of
//! `(seed, index)`: slot `i` draws its randomness from the dedicated
//! stream `SmallRng::seed_from_u64_stream(seed, i)` (a SplitMix64
//! derivation in the vendored `rand` shim), retrying discards within
//! the slot on the same stream. No slot ever observes another slot's
//! randomness, thread identity, or scheduling, so:
//!
//! * the same `(seed, index)` pair reproduces the same test on any
//!   machine with any worker count — the *reproduction token* printed
//!   in failing [`RunReport`]s and replayable with
//!   [`Runner::repro_index`];
//! * merged reports are **byte-identical** across
//!   [`Parallelism::Off`], [`Parallelism::Fixed`]`(2)`, `Fixed(8)`, …
//!   for budget-unlimited runs (see *Budgets* below).
//!
//! # Work sharing and report merging
//!
//! Workers claim disjoint contiguous chunks of slot indices from one
//! atomic counter and record a [`RunReport`]-shaped summary per chunk.
//! Chunk summaries merge associatively: counters and label maps add,
//! histograms add bucketwise, and the run's counterexample is the
//! failure with the **lowest slot index** — not the first one found in
//! wall-clock order. On failure the merged report is truncated to the
//! region a sequential run would have executed: chunks entirely above
//! the failing index are discarded, so `passed`, `discarded`, label
//! counts, and histograms match what `Off` reports.
//!
//! # Budgets
//!
//! The runner's [`Budget`] becomes a shared atomic pool
//! ([`BudgetPool`]): workers draw steps (one per attempted test) and
//! backtracks (one per discard) in chunks of 64, and the
//! wall-clock deadline is polled once per refill and once per claimed
//! chunk — never on the per-test hot path. Which slots a finite budget
//! reaches depends on scheduling, so budget-truncated parallel runs
//! (unlike budget-unlimited ones) are *not* guaranteed byte-identical
//! across worker counts; run with `Parallelism::Off` when exact
//! budget-cutoff reproducibility matters.
//!
//! [`Budget`]: indrel_producers::Budget

use crate::{panic_message, Crash, Labels, RunReport, Runner, Spent, TestOutcome};
use indrel_producers::{BudgetPool, Hist};
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How many worker threads a [`Runner`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded, on the calling thread (the default). Runs the
    /// same sharded engine as the parallel modes, so reports are
    /// byte-identical to theirs — just without the thread overhead.
    #[default]
    Off,
    /// Exactly this many worker threads (`Fixed(0)` behaves like
    /// `Fixed(1)`).
    Fixed(usize),
    /// One worker per available core, via
    /// [`std::thread::available_parallelism`] (1 when that errors).
    Auto,
}

impl Parallelism {
    /// The number of workers this configuration resolves to for a run
    /// of `n` slots: never 0, never more than one worker per index
    /// chunk (extra threads would have nothing to claim).
    pub fn workers(self, n: usize) -> usize {
        let want = match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(k) => k.max(1),
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |k| k.get()),
        };
        let chunks = (n as u64).div_ceil(INDEX_CHUNK).max(1);
        want.min(chunks.min(usize::MAX as u64) as usize)
    }
}

/// Slot indices are claimed from the shared counter in contiguous
/// chunks of this size: large enough that claiming is a negligible
/// fraction of the work, small enough to load-balance uneven tests.
const INDEX_CHUNK: u64 = 64;

/// Steps/backtracks are drawn from the shared [`BudgetPool`] in chunks
/// of this size, bounding both atomic contention and the over-draw a
/// worker can hold when the pool runs dry.
const POOL_DRAW: u64 = 64;

/// Attempts (initial try + discard retries) each slot may spend before
/// giving up, mirroring the sequential runner's default allowance of
/// 10 discards per requested test.
const SLOT_ATTEMPTS: u32 = 10;

/// A worker-local cache of budget units drawn from the shared pool.
/// Dropping the drawer returns unspent units, so pool accounting is
/// exact once every worker has stopped.
struct Drawer<'a> {
    pool: &'a BudgetPool,
    steps: u64,
    backtracks: u64,
}

impl<'a> Drawer<'a> {
    fn new(pool: &'a BudgetPool) -> Drawer<'a> {
        Drawer {
            pool,
            steps: 0,
            backtracks: 0,
        }
    }

    /// Takes one step from the local cache, refilling from the pool
    /// (and polling the deadline) when empty. `false` = pool dry.
    fn step(&mut self) -> bool {
        if self.steps == 0 {
            if !self.pool.check_deadline() {
                return false;
            }
            self.steps = self.pool.draw_steps(POOL_DRAW);
            if self.steps == 0 {
                return false;
            }
        }
        self.steps -= 1;
        true
    }

    /// Takes one backtrack from the local cache. `false` = pool dry.
    fn backtrack(&mut self) -> bool {
        if self.backtracks == 0 {
            self.backtracks = self.pool.draw_backtracks(POOL_DRAW);
            if self.backtracks == 0 {
                return false;
            }
        }
        self.backtracks -= 1;
        true
    }
}

impl Drop for Drawer<'_> {
    fn drop(&mut self) {
        self.pool.return_steps(self.steps);
        self.pool.return_backtracks(self.backtracks);
    }
}

/// One claimed chunk's contribution to the merged report. All fields
/// are pure functions of `(seed, [start, end))` for budget-unlimited
/// runs, which is what makes the merge deterministic.
struct Chunk {
    start: u64,
    passed: usize,
    discarded: usize,
    crashed: usize,
    /// Lowest-index crash in this chunk: `(slot, input, message)`.
    first_crash: Option<(u64, Option<Vec<Value>>, String)>,
    /// This chunk's counterexample, if any: `(slot, input)`. A worker
    /// stops at its first failure, so at most one per chunk.
    failure: Option<(u64, Vec<Value>)>,
    labels: BTreeMap<String, u64>,
    input_sizes: Hist,
    steps: u64,
    backtracks: u64,
}

impl Chunk {
    fn new(start: u64) -> Chunk {
        Chunk {
            start,
            passed: 0,
            discarded: 0,
            crashed: 0,
            first_crash: None,
            failure: None,
            labels: BTreeMap::new(),
            input_sizes: Hist::default(),
            steps: 0,
            backtracks: 0,
        }
    }
}

/// How one slot resolved.
enum Slot {
    Pass,
    Fail(Vec<Value>),
    Crash(Option<Vec<Value>>, String),
    /// All [`SLOT_ATTEMPTS`] attempts discarded.
    GaveUp,
    /// The budget pool ran dry mid-slot; the run is stopping.
    Exhausted,
}

impl Runner {
    /// Parallel [`Runner::run`]: runs `n` test slots across the
    /// configured [`Parallelism`], each slot a deterministic function
    /// of `(seed, index)`.
    ///
    /// `make` is called once per worker thread to build that worker's
    /// `(generator, property)` pair — fork any per-worker state (e.g. a
    /// [`SharedLibrary`] session) inside it. Determinism requires the
    /// closures it returns to be deterministic in their arguments;
    /// worker-local mutable state (caches, counters) is fine as long as
    /// it doesn't leak into verdicts.
    ///
    /// See the [module docs](crate::par) for the determinism and
    /// merge semantics, and [`Runner::run_par_with`] for the
    /// label-collecting variant.
    ///
    /// [`SharedLibrary`]: https://docs.rs/indrel-core
    ///
    /// # Example
    ///
    /// ```
    /// use indrel_pbt::{Parallelism, Runner, TestOutcome};
    /// use indrel_term::Value;
    ///
    /// let runner = Runner::new(42).with_parallelism(Parallelism::Auto);
    /// let report = runner.run_par(1000, || {
    ///     (
    ///         |size, rng: &mut dyn rand::RngCore| {
    ///             Some(vec![Value::nat(rand::Rng::gen_range(rng, 0..=size))])
    ///         },
    ///         |args: &[Value]| TestOutcome::from_bool(args[0].as_nat().unwrap() <= 100),
    ///     )
    /// });
    /// assert_eq!(report.passed, 1000);
    /// ```
    pub fn run_par<G, P>(&self, n: usize, make: impl Fn() -> (G, P) + Sync) -> RunReport
    where
        G: FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        P: FnMut(&[Value]) -> TestOutcome,
    {
        self.run_par_with(n, || {
            let (gen, mut prop) = make();
            (gen, move |args: &[Value], _: &mut Labels| prop(args))
        })
    }

    /// [`Runner::run_par`] with a [`Labels`] sink handed to the
    /// property. Label counts merge across workers by addition, so the
    /// merged distribution equals the sequential one.
    pub fn run_par_with<G, P>(&self, n: usize, make: impl Fn() -> (G, P) + Sync) -> RunReport
    where
        G: FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        P: FnMut(&[Value], &mut Labels) -> TestOutcome,
    {
        let workers = self.parallelism.workers(n);
        let pool = BudgetPool::new(self.budget);
        let next = AtomicU64::new(0);
        let min_fail = AtomicU64::new(u64::MAX);
        let start = Instant::now();
        let chunks: Vec<Chunk> = if workers <= 1 {
            let (gen, prop) = make();
            self.worker_loop(n as u64, &next, &min_fail, &pool, gen, prop)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (next, min_fail, pool, make) = (&next, &min_fail, &pool, &make);
                        scope.spawn(move || {
                            let (gen, prop) = make();
                            self.worker_loop(n as u64, next, min_fail, pool, gen, prop)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("test worker thread panicked"))
                    .collect()
            })
        };
        self.merge(chunks, &pool, start)
    }

    /// Replays one slot of a parallel run — the `(seed, index)`
    /// reproduction token from a failing [`RunReport`] — and returns
    /// the input and outcome of the attempt that resolved the slot
    /// (`None` if every attempt discarded). Unlike the run itself,
    /// panics are **not** caught: a crashing slot panics here, which is
    /// exactly what a debugger wants.
    pub fn repro_index(
        &self,
        index: u64,
        mut generate: impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        mut property: impl FnMut(&[Value]) -> TestOutcome,
    ) -> Option<(Vec<Value>, TestOutcome)> {
        let mut rng = SmallRng::seed_from_u64_stream(self.seed, index);
        for _ in 0..SLOT_ATTEMPTS {
            let Some(input) = generate(self.size, &mut rng) else {
                continue;
            };
            match property(&input) {
                TestOutcome::Discard => continue,
                outcome => return Some((input, outcome)),
            }
        }
        None
    }

    /// The sharded work loop run by every worker (and inline for
    /// single-worker runs — same code path, so `Off` matches `Fixed`).
    fn worker_loop<G, P>(
        &self,
        n: u64,
        next: &AtomicU64,
        min_fail: &AtomicU64,
        pool: &BudgetPool,
        mut generate: G,
        mut property: P,
    ) -> Vec<Chunk>
    where
        G: FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        P: FnMut(&[Value], &mut Labels) -> TestOutcome,
    {
        let mut out = Vec::new();
        let mut drawer = Drawer::new(pool);
        let mut labels = Labels::default();
        'claim: loop {
            let start = next.fetch_add(INDEX_CHUNK, Ordering::Relaxed);
            if start >= n {
                break;
            }
            // A failure below this chunk makes it (and every later
            // claim, since starts only grow) unreportable — stop.
            if start > min_fail.load(Ordering::Relaxed) {
                break;
            }
            if !pool.check_deadline() {
                break;
            }
            let end = (start + INDEX_CHUNK).min(n);
            let mut chunk = Chunk::new(start);
            for idx in start..end {
                match self.run_slot(
                    idx,
                    &mut generate,
                    &mut property,
                    &mut drawer,
                    &mut chunk,
                    &mut labels,
                ) {
                    Slot::Pass => chunk.passed += 1,
                    Slot::GaveUp => {}
                    Slot::Crash(input, message) => {
                        chunk.crashed += 1;
                        if chunk.first_crash.is_none() {
                            chunk.first_crash = Some((idx, input, message));
                        }
                    }
                    Slot::Fail(input) => {
                        chunk.failure = Some((idx, input));
                        min_fail.fetch_min(idx, Ordering::Relaxed);
                        out.push(chunk);
                        break 'claim;
                    }
                    Slot::Exhausted => {
                        out.push(chunk);
                        break 'claim;
                    }
                }
                // Another worker failed below us: the rest of this
                // chunk can never appear in the merged report.
                if min_fail.load(Ordering::Relaxed) < start {
                    break;
                }
            }
            out.push(chunk);
        }
        out
    }

    /// Runs one slot: up to [`SLOT_ATTEMPTS`] generate/check attempts
    /// on the slot's own RNG stream.
    fn run_slot<G, P>(
        &self,
        idx: u64,
        generate: &mut G,
        property: &mut P,
        drawer: &mut Drawer<'_>,
        chunk: &mut Chunk,
        labels: &mut Labels,
    ) -> Slot
    where
        G: FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        P: FnMut(&[Value], &mut Labels) -> TestOutcome,
    {
        let mut rng = SmallRng::seed_from_u64_stream(self.seed, idx);
        for _ in 0..SLOT_ATTEMPTS {
            if !drawer.step() {
                return Slot::Exhausted;
            }
            chunk.steps += 1;
            let input = match catch_unwind(AssertUnwindSafe(|| generate(self.size, &mut rng))) {
                Ok(Some(input)) => input,
                Ok(None) => {
                    chunk.discarded += 1;
                    if !drawer.backtrack() {
                        return Slot::Exhausted;
                    }
                    chunk.backtracks += 1;
                    continue;
                }
                Err(payload) => return Slot::Crash(None, panic_message(&*payload)),
            };
            chunk
                .input_sizes
                .record(input.iter().map(Value::size).sum());
            labels.current.clear();
            match catch_unwind(AssertUnwindSafe(|| property(&input, labels))) {
                Ok(TestOutcome::Pass) => {
                    labels.fold_into(&mut chunk.labels);
                    return Slot::Pass;
                }
                Ok(TestOutcome::Discard) => {
                    chunk.discarded += 1;
                    if !drawer.backtrack() {
                        return Slot::Exhausted;
                    }
                    chunk.backtracks += 1;
                }
                Ok(TestOutcome::Fail) => {
                    labels.fold_into(&mut chunk.labels);
                    return Slot::Fail(input);
                }
                Err(payload) => return Slot::Crash(Some(input), panic_message(&*payload)),
            }
        }
        Slot::GaveUp
    }

    /// Merges per-chunk summaries into one [`RunReport`]. Associative
    /// and order-independent: chunks are keyed by their start index,
    /// the counterexample is the lowest failing index, and on failure
    /// the report is truncated to the chunks a sequential run would
    /// have executed.
    fn merge(&self, mut chunks: Vec<Chunk>, pool: &BudgetPool, start: Instant) -> RunReport {
        chunks.sort_by_key(|c| c.start);
        let fail_idx = chunks
            .iter()
            .filter_map(|c| c.failure.as_ref().map(|(i, _)| *i))
            .min();
        let included = chunks
            .iter()
            .filter(|c| fail_idx.is_none_or(|f| c.start <= f));
        let mut passed = 0;
        let mut discarded = 0;
        let mut crashed = 0;
        let mut first_crash: Option<Crash> = None;
        let mut failed_input: Option<Vec<Value>> = None;
        let mut labels: BTreeMap<String, u64> = BTreeMap::new();
        let mut input_sizes = Hist::default();
        let mut steps = 0;
        let mut backtracks = 0;
        for c in included {
            passed += c.passed;
            discarded += c.discarded;
            crashed += c.crashed;
            steps += c.steps;
            backtracks += c.backtracks;
            if first_crash.is_none() {
                // Chunks are sorted, ≤ 1 crash candidate per chunk, so
                // the first seen is the lowest-index crash.
                if let Some((idx, input, message)) = &c.first_crash {
                    first_crash = Some(Crash {
                        input: input.clone(),
                        message: message.clone(),
                        test: *idx as usize + 1,
                    });
                }
            }
            if let Some((idx, input)) = &c.failure {
                if Some(*idx) == fail_idx {
                    failed_input = Some(input.clone());
                }
            }
            for (label, count) in &c.labels {
                *labels.entry(label.clone()).or_default() += count;
            }
            input_sizes.merge(&c.input_sizes);
        }
        let failed = failed_input.map(|input| (input, passed + 1));
        debug_assert_eq!(failed.is_some(), fail_idx.is_some());
        RunReport {
            passed,
            discarded,
            crashed,
            first_crash,
            stopped: if failed.is_some() {
                None
            } else {
                pool.exhaustion()
            },
            failed,
            failed_index: fail_idx,
            seed: self.seed,
            spent: Spent {
                steps,
                backtracks,
                elapsed: start.elapsed(),
            },
            labels,
            input_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestOutcome;
    use indrel_producers::Budget;
    use rand::Rng as _;

    #[allow(clippy::type_complexity)]
    fn nat_prop_factory() -> (
        impl FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>>,
        impl FnMut(&[Value]) -> TestOutcome,
    ) {
        (
            |size, rng: &mut dyn rand::RngCore| Some(vec![Value::nat(rng.gen_range(0..=size))]),
            |args: &[Value]| TestOutcome::from_bool(args[0].as_nat().unwrap() < 95),
        )
    }

    #[test]
    fn reports_are_byte_identical_across_worker_counts() {
        // A passing run and a failing run (size 100 makes ≥95 likely),
        // each rendered at Off / Fixed(2) / Fixed(8): the Display
        // output (which covers every deterministic report field) must
        // match byte for byte.
        for size in [10, 100] {
            let render = |p: Parallelism| {
                let r = Runner::new(7)
                    .with_size(size)
                    .with_parallelism(p)
                    .run_par(500, nat_prop_factory);
                // elapsed is wall-clock, not part of Display — nothing
                // nondeterministic reaches the string.
                r.to_string()
            };
            let off = render(Parallelism::Off);
            assert_eq!(off, render(Parallelism::Fixed(2)), "size {size}");
            assert_eq!(off, render(Parallelism::Fixed(8)), "size {size}");
        }
    }

    #[test]
    fn parallel_failure_matches_repro_token() {
        let report = Runner::new(7)
            .with_size(100)
            .with_parallelism(Parallelism::Fixed(4))
            .run_par(2000, nat_prop_factory);
        let (cex, _) = report.failed.clone().expect("size-100 run must fail");
        let (seed, index) = report.reproduction().expect("token present");
        assert_eq!(seed, 7);
        let (mut gen, mut prop) = nat_prop_factory();
        let (input, outcome) = Runner::new(seed)
            .with_size(100)
            .repro_index(index, &mut gen, &mut prop)
            .expect("slot resolves");
        assert_eq!(input, cex);
        assert_eq!(outcome, TestOutcome::Fail);
        assert!(report.to_string().contains(&format!("index={index}")));
    }

    #[test]
    fn failure_is_lowest_index_not_first_found() {
        // Many slots fail (1/997 of inputs hit zero); the merged
        // report must pin the counterexample to the lowest failing
        // slot and truncate the counts to match a sequential run, at
        // any worker count.
        let make = || {
            (
                |_, rng: &mut dyn rand::RngCore| Some(vec![Value::nat(rng.next_u64() % 997)]),
                |args: &[Value]| TestOutcome::from_bool(args[0].as_nat().unwrap() != 0),
            )
        };
        let off = Runner::new(3).run_par(10_000, make);
        let par = Runner::new(3)
            .with_parallelism(Parallelism::Fixed(8))
            .run_par(10_000, make);
        assert_eq!(off.failed, par.failed);
        assert_eq!(off.failed_index, par.failed_index);
        assert_eq!(off.passed, par.passed);
        assert_eq!(off.spent.steps, par.spent.steps);
    }

    #[test]
    fn step_budget_bounds_a_parallel_run() {
        let r = Runner::new(1)
            .with_budget(Budget::unlimited().with_steps(100))
            .with_parallelism(Parallelism::Fixed(4))
            .run_par(10_000, || {
                (
                    |_, _: &mut dyn rand::RngCore| Some(vec![Value::nat(1)]),
                    |_: &[Value]| TestOutcome::Pass,
                )
            });
        assert_eq!(r.passed, 100, "drawn chunks return unspent steps");
        assert_eq!(r.spent.steps, 100);
        assert_eq!(
            r.stopped,
            Some(indrel_producers::Exhaustion::Budget(
                indrel_producers::Resource::Steps
            ))
        );
    }

    #[test]
    fn slots_give_up_after_bounded_discards() {
        let r = Runner::new(1).run_par(50, || {
            (
                |_, _: &mut dyn rand::RngCore| None::<Vec<Value>>,
                |_: &[Value]| TestOutcome::Pass,
            )
        });
        assert_eq!(r.passed, 0);
        assert_eq!(r.discarded, 50 * SLOT_ATTEMPTS as usize);
        assert!(r.failed.is_none());
        assert!(r.stopped.is_none());
    }

    #[test]
    fn workers_cap_never_exceeds_chunks() {
        assert_eq!(Parallelism::Fixed(8).workers(64), 1);
        assert_eq!(Parallelism::Fixed(8).workers(65), 2);
        assert_eq!(Parallelism::Fixed(0).workers(1000), 1);
        assert_eq!(Parallelism::Off.workers(1000), 1);
        assert!(Parallelism::Auto.workers(100_000) >= 1);
    }
}
