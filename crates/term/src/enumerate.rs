//! Bounded-exhaustive enumeration of raw values of a type.
//!
//! This module implements the *unconstrained* enumerator: all values of a
//! ground [`TypeExpr`] whose [`Value::size`] is bounded. It is the
//! fallback producer used when the derivation algorithm must instantiate
//! a variable that no premise constrains, and it drives the
//! bounded-exhaustive half of the validation harness.

use crate::types::TypeExpr;
use crate::universe::Universe;
use crate::value::Value;

/// Enumerates every value of `ty` with `Value::size` exactly `size`.
///
/// # Panics
///
/// Panics if `ty` is not ground or mentions an unknown datatype.
pub fn values_of_exact(universe: &Universe, ty: &TypeExpr, size: u64) -> Vec<Value> {
    match ty {
        TypeExpr::Nat => vec![Value::nat(size)],
        TypeExpr::Bool => {
            if size == 0 {
                vec![Value::bool(false), Value::bool(true)]
            } else {
                Vec::new()
            }
        }
        TypeExpr::Param(_) => panic!("cannot enumerate a non-ground type"),
        TypeExpr::App(dt, ty_args) => {
            let mut out = Vec::new();
            if size == 0 {
                return out;
            }
            for &ctor in universe.datatype(*dt).ctors() {
                let arg_tys = universe.ctor_arg_types(ctor, ty_args);
                for args in tuples_of_total_size(universe, &arg_tys, size - 1) {
                    out.push(Value::ctor(ctor, args));
                }
            }
            out
        }
    }
}

/// Enumerates every value of `ty` with `Value::size` at most `size`.
///
/// # Panics
///
/// Panics if `ty` is not ground or mentions an unknown datatype.
pub fn values_up_to(universe: &Universe, ty: &TypeExpr, size: u64) -> Vec<Value> {
    let mut out = Vec::new();
    for s in 0..=size {
        out.extend(values_of_exact(universe, ty, s));
    }
    out
}

/// Enumerates every tuple of values for `tys` whose sizes sum to exactly
/// `total`.
fn tuples_of_total_size(universe: &Universe, tys: &[TypeExpr], total: u64) -> Vec<Vec<Value>> {
    match tys.split_first() {
        None => {
            if total == 0 {
                vec![Vec::new()]
            } else {
                Vec::new()
            }
        }
        Some((first, rest)) => {
            let mut out = Vec::new();
            for s in 0..=total {
                let heads = values_of_exact(universe, first, s);
                if heads.is_empty() {
                    continue;
                }
                let tails = tuples_of_total_size(universe, rest, total - s);
                for head in &heads {
                    for tail in &tails {
                        let mut tuple = Vec::with_capacity(tys.len());
                        tuple.push(head.clone());
                        tuple.extend(tail.iter().cloned());
                        out.push(tuple);
                    }
                }
            }
            out
        }
    }
}

/// Enumerates every tuple of values for `tys` with each component of size
/// at most `size`. Used by the validation harness to sweep relation
/// input spaces.
pub fn tuples_up_to(universe: &Universe, tys: &[TypeExpr], size: u64) -> Vec<Vec<Value>> {
    match tys.split_first() {
        None => vec![Vec::new()],
        Some((first, rest)) => {
            let heads = values_up_to(universe, first, size);
            let tails = tuples_up_to(universe, rest, size);
            let mut out = Vec::with_capacity(heads.len() * tails.len());
            for head in &heads {
                for tail in &tails {
                    let mut tuple = Vec::with_capacity(tys.len());
                    tuple.push(head.clone());
                    tuple.extend(tail.iter().cloned());
                    out.push(tuple);
                }
            }
            out
        }
    }
}

/// The maximum [`Value::size`] of any inhabitant of `ty`, or `None`
/// when inhabitants of unbounded size exist (recursive datatypes,
/// naturals). Used by the executors to decide whether a bounded
/// enumeration of a type was *truncated* — a truncated enumeration
/// must surface an out-of-fuel outcome to keep derived checkers
/// monotonic.
pub fn finite_size_bound(universe: &Universe, ty: &TypeExpr) -> Option<u64> {
    fn go(universe: &Universe, ty: &TypeExpr, visiting: &mut Vec<crate::ids::DtId>) -> Option<u64> {
        match ty {
            TypeExpr::Nat => None,
            TypeExpr::Bool => Some(0),
            TypeExpr::Param(_) => panic!("cannot bound a non-ground type"),
            TypeExpr::App(dt, args) => {
                if visiting.contains(dt) {
                    return None; // recursive datatype: unbounded
                }
                visiting.push(*dt);
                let mut max = 0u64;
                for &ctor in universe.datatype(*dt).ctors() {
                    let mut total = 1u64;
                    for at in universe.ctor_arg_types(ctor, args) {
                        match go(universe, &at, visiting) {
                            Some(b) => total += b,
                            None => {
                                visiting.pop();
                                return None;
                            }
                        }
                    }
                    max = max.max(total);
                }
                visiting.pop();
                Some(max)
            }
        }
    }
    go(universe, ty, &mut Vec::new())
}

/// Counts the values of `ty` with size at most `size` without
/// materializing them (used by tests and by sizing heuristics).
pub fn count_up_to(universe: &Universe, ty: &TypeExpr, size: u64) -> u64 {
    (0..=size).map(|s| count_exact(universe, ty, s)).sum()
}

fn count_exact(universe: &Universe, ty: &TypeExpr, size: u64) -> u64 {
    match ty {
        TypeExpr::Nat => 1,
        TypeExpr::Bool => {
            if size == 0 {
                2
            } else {
                0
            }
        }
        TypeExpr::Param(_) => panic!("cannot count a non-ground type"),
        TypeExpr::App(dt, ty_args) => {
            if size == 0 {
                return 0;
            }
            universe
                .datatype(*dt)
                .ctors()
                .iter()
                .map(|&ctor| {
                    let arg_tys = universe.ctor_arg_types(ctor, ty_args);
                    count_tuples(universe, &arg_tys, size - 1)
                })
                .sum()
        }
    }
}

fn count_tuples(universe: &Universe, tys: &[TypeExpr], total: u64) -> u64 {
    match tys.split_first() {
        None => u64::from(total == 0),
        Some((first, rest)) => (0..=total)
            .map(|s| {
                let h = count_exact(universe, first, s);
                if h == 0 {
                    0
                } else {
                    h * count_tuples(universe, rest, total - s)
                }
            })
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_universe() -> (Universe, TypeExpr) {
        let mut u = Universe::new();
        let dt = u
            .declare_datatype(
                "tree",
                0,
                &[
                    ("Leaf", vec![]),
                    (
                        "Node",
                        vec![
                            TypeExpr::Nat,
                            TypeExpr::named("tree"),
                            TypeExpr::named("tree"),
                        ],
                    ),
                ],
            )
            .unwrap();
        (u, TypeExpr::datatype(dt))
    }

    #[test]
    fn nats_enumerate_by_magnitude() {
        let u = Universe::new();
        assert_eq!(values_up_to(&u, &TypeExpr::Nat, 3).len(), 4);
        assert_eq!(values_of_exact(&u, &TypeExpr::Nat, 2), vec![Value::nat(2)]);
    }

    #[test]
    fn bools_have_size_zero() {
        let u = Universe::new();
        assert_eq!(values_up_to(&u, &TypeExpr::Bool, 5).len(), 2);
    }

    #[test]
    fn trees_enumerate_without_duplicates() {
        let (u, ty) = tree_universe();
        let all = values_up_to(&u, &ty, 5);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
        assert!(all.iter().all(|v| v.size() <= 5));
        // Leaf is the only size-1 tree.
        assert_eq!(values_of_exact(&u, &ty, 1).len(), 1);
        // size 3: Node 0 Leaf Leaf (nat must be 0).
        assert_eq!(values_of_exact(&u, &ty, 3).len(), 1);
    }

    #[test]
    fn counts_agree_with_enumeration() {
        let (u, ty) = tree_universe();
        for s in 0..=6 {
            assert_eq!(
                count_up_to(&u, &ty, s),
                values_up_to(&u, &ty, s).len() as u64,
                "size {s}"
            );
        }
    }

    #[test]
    fn lists_of_nats() {
        let mut u = Universe::new();
        let list = u.std_list();
        let ty = TypeExpr::App(list, vec![TypeExpr::Nat]);
        let all = values_up_to(&u, &ty, 4);
        // nil (1), [0..3] as singletons with element+2 nodes... just check
        // membership and boundedness.
        assert!(all.contains(&u.list_value([])));
        assert!(all.contains(&u.list_value([Value::nat(2)])));
        assert!(all.iter().all(|v| v.size() <= 4));
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn tuples_sweep_products() {
        let u = Universe::new();
        let tys = vec![TypeExpr::Nat, TypeExpr::Nat];
        let tuples = tuples_up_to(&u, &tys, 2);
        assert_eq!(tuples.len(), 9);
    }
}
