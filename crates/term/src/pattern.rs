//! Patterns and pattern matching.

use crate::env::Env;
use crate::ids::{CtorId, VarId};
use crate::universe::Universe;
use crate::value::Value;
use std::fmt;

/// A pattern over [`Value`]s.
///
/// Patterns produced by the derivation algorithm are *linear* — every
/// variable occurs at most once — because the preprocessing phase of
/// §3.1 of the paper rewrites non-linear conclusions into equality
/// premises. [`Pattern::matches`] nevertheless tolerates repeated
/// variables by checking value equality, which the reference semantics
/// uses directly.
///
/// Natural numbers can be deconstructed with [`Pattern::Succ`], playing
/// the role of Coq's `S` constructor over the machine representation.
///
/// # Example
///
/// ```
/// use indrel_term::{Pattern, Value, VarId, Env};
/// // the pattern `S (S n)`
/// let p = Pattern::Succ(Box::new(Pattern::Succ(Box::new(Pattern::Var(VarId::new(0))))));
/// let mut env = Env::with_slots(1);
/// assert!(p.matches(&Value::nat(5), &mut env));
/// assert_eq!(env.get(VarId::new(0)), Some(&Value::nat(3)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// Matches anything, binds nothing.
    Wild,
    /// Binds a variable (or, if already bound, checks equality).
    Var(VarId),
    /// Matches an exact natural literal.
    NatLit(u64),
    /// Matches `n + 1` and continues on `n`.
    Succ(Box<Pattern>),
    /// Matches an exact boolean.
    BoolLit(bool),
    /// Matches a constructor application.
    Ctor(CtorId, Vec<Pattern>),
}

impl Pattern {
    /// Convenience constructor for [`Pattern::Ctor`].
    pub fn ctor(ctor: CtorId, args: Vec<Pattern>) -> Pattern {
        Pattern::Ctor(ctor, args)
    }

    /// Convenience constructor for [`Pattern::Var`].
    pub fn var(index: usize) -> Pattern {
        Pattern::Var(VarId::new(index))
    }

    /// Attempts to match `value`, extending `env` with bindings.
    ///
    /// On failure the environment may contain partial bindings; callers
    /// that backtrack either clone the environment first or rebind on the
    /// next attempt (derived handlers always rebind every variable they
    /// touch, so stale bindings are harmless there).
    ///
    /// If a [`Pattern::Var`] is already bound in `env`, the existing
    /// binding must be equal to the scrutinee.
    pub fn matches(&self, value: &Value, env: &mut Env) -> bool {
        match self {
            Pattern::Wild => true,
            Pattern::Var(x) => match env.get(*x) {
                Some(bound) => bound == value,
                None => {
                    env.bind(*x, value.clone());
                    true
                }
            },
            Pattern::NatLit(n) => value.as_nat() == Some(*n),
            Pattern::Succ(inner) => match value.as_nat() {
                Some(n) if n > 0 => inner.matches(&Value::nat(n - 1), env),
                _ => false,
            },
            Pattern::BoolLit(b) => value.as_bool() == Some(*b),
            Pattern::Ctor(c, pats) => match value.as_ctor() {
                Some((vc, args)) if vc == *c && args.len() == pats.len() => {
                    pats.iter().zip(args.iter()).all(|(p, v)| p.matches(v, env))
                }
                _ => false,
            },
        }
    }

    /// Collects the variables bound by this pattern, in left-to-right
    /// order (with duplicates if the pattern is non-linear).
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Pattern::Wild | Pattern::NatLit(_) | Pattern::BoolLit(_) => {}
            Pattern::Var(x) => out.push(*x),
            Pattern::Succ(inner) => inner.collect_vars(out),
            Pattern::Ctor(_, pats) => {
                for p in pats {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// Returns `true` when the pattern binds each variable at most once.
    pub fn is_linear(&self) -> bool {
        let mut vars = self.variables();
        let n = vars.len();
        vars.sort_unstable();
        vars.dedup();
        vars.len() == n
    }

    /// Renders the pattern with constructor names from the universe and
    /// variable names from the provided table.
    pub fn display<'a>(
        &'a self,
        universe: &'a Universe,
        var_names: &'a [String],
    ) -> DisplayPattern<'a> {
        DisplayPattern {
            pattern: self,
            universe,
            var_names,
        }
    }
}

/// Helper returned by [`Pattern::display`].
#[derive(Debug)]
pub struct DisplayPattern<'a> {
    pattern: &'a Pattern,
    universe: &'a Universe,
    var_names: &'a [String],
}

impl fmt::Display for DisplayPattern<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pattern(self.pattern, self.universe, self.var_names, f, false)
    }
}

fn fmt_pattern(
    p: &Pattern,
    universe: &Universe,
    var_names: &[String],
    f: &mut fmt::Formatter<'_>,
    nested: bool,
) -> fmt::Result {
    match p {
        Pattern::Wild => write!(f, "_"),
        Pattern::Var(x) => match var_names.get(x.index()) {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "{x}"),
        },
        Pattern::NatLit(n) => write!(f, "{n}"),
        Pattern::BoolLit(b) => write!(f, "{b}"),
        Pattern::Succ(inner) => {
            if nested {
                write!(f, "(")?;
            }
            write!(f, "S ")?;
            fmt_pattern(inner, universe, var_names, f, true)?;
            if nested {
                write!(f, ")")?;
            }
            Ok(())
        }
        Pattern::Ctor(c, pats) => {
            let name = universe.ctor(*c).name();
            if pats.is_empty() {
                write!(f, "{name}")
            } else {
                if nested {
                    write!(f, "(")?;
                }
                write!(f, "{name}")?;
                for p in pats {
                    write!(f, " ")?;
                    fmt_pattern(p, universe, var_names, f, true)?;
                }
                if nested {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_pattern_matches_and_binds() {
        let mut u = Universe::new();
        u.std_list();
        let cons = u.ctor_id("cons").unwrap();
        let nil = u.ctor_id("nil").unwrap();
        let p = Pattern::ctor(cons, vec![Pattern::var(0), Pattern::var(1)]);
        let v = u.list_value([Value::nat(9)]);
        let mut env = Env::with_slots(2);
        assert!(p.matches(&v, &mut env));
        assert_eq!(env.get(VarId::new(0)), Some(&Value::nat(9)));
        assert_eq!(env.get(VarId::new(1)), Some(&Value::ctor(nil, vec![])));
    }

    #[test]
    fn mismatched_ctor_fails() {
        let mut u = Universe::new();
        u.std_list();
        let nil = u.ctor_id("nil").unwrap();
        let cons = u.ctor_id("cons").unwrap();
        let p = Pattern::ctor(cons, vec![Pattern::Wild, Pattern::Wild]);
        let mut env = Env::with_slots(0);
        assert!(!p.matches(&Value::ctor(nil, vec![]), &mut env));
    }

    #[test]
    fn succ_pattern_decrements() {
        let p = Pattern::Succ(Box::new(Pattern::var(0)));
        let mut env = Env::with_slots(1);
        assert!(!p.matches(&Value::nat(0), &mut env));
        assert!(p.matches(&Value::nat(1), &mut env));
        assert_eq!(env.get(VarId::new(0)), Some(&Value::nat(0)));
    }

    #[test]
    fn nat_and_bool_literals() {
        let mut env = Env::with_slots(0);
        assert!(Pattern::NatLit(4).matches(&Value::nat(4), &mut env));
        assert!(!Pattern::NatLit(4).matches(&Value::nat(5), &mut env));
        assert!(Pattern::BoolLit(true).matches(&Value::bool(true), &mut env));
        assert!(!Pattern::BoolLit(true).matches(&Value::bool(false), &mut env));
        assert!(!Pattern::NatLit(0).matches(&Value::bool(false), &mut env));
    }

    #[test]
    fn nonlinear_pattern_checks_equality() {
        let mut u = Universe::new();
        u.std_pair();
        let pair = u.ctor_id("Pair").unwrap();
        let p = Pattern::ctor(pair, vec![Pattern::var(0), Pattern::var(0)]);
        assert!(!p.is_linear());
        let mut env = Env::with_slots(1);
        assert!(p.matches(
            &Value::ctor(pair, vec![Value::nat(1), Value::nat(1)]),
            &mut env
        ));
        let mut env2 = Env::with_slots(1);
        assert!(!p.matches(
            &Value::ctor(pair, vec![Value::nat(1), Value::nat(2)]),
            &mut env2
        ));
    }

    #[test]
    fn variables_in_order() {
        let mut u = Universe::new();
        u.std_pair();
        let pair = u.ctor_id("Pair").unwrap();
        let p = Pattern::ctor(
            pair,
            vec![Pattern::var(2), Pattern::Succ(Box::new(Pattern::var(1)))],
        );
        assert_eq!(p.variables(), vec![VarId::new(2), VarId::new(1)]);
        assert!(p.is_linear());
    }

    #[test]
    fn display_pattern() {
        let mut u = Universe::new();
        u.std_list();
        let cons = u.ctor_id("cons").unwrap();
        let names = vec!["x".to_string(), "xs".to_string()];
        let p = Pattern::ctor(cons, vec![Pattern::var(0), Pattern::var(1)]);
        assert_eq!(p.display(&u, &names).to_string(), "cons x xs");
    }
}
