//! Variable environments.

use crate::ids::VarId;
use crate::value::Value;

/// A partial assignment of rule variables to values.
///
/// Environments are dense slot vectors indexed by [`VarId`]; a slot is
/// `None` while the variable is still *undefined* (an output yet to be
/// produced, in the vocabulary of §4 of the paper).
///
/// # Example
///
/// ```
/// use indrel_term::{Env, VarId, Value};
/// let mut env = Env::with_slots(2);
/// let x = VarId::new(0);
/// assert!(env.get(x).is_none());
/// env.bind(x, Value::nat(7));
/// assert_eq!(env.get(x), Some(&Value::nat(7)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env {
    slots: Vec<Option<Value>>,
}

impl Env {
    /// Creates an environment with `n` undefined slots.
    pub fn with_slots(n: usize) -> Env {
        Env {
            slots: vec![None; n],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the environment has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks up a variable.
    pub fn get(&self, var: VarId) -> Option<&Value> {
        self.slots.get(var.index()).and_then(Option::as_ref)
    }

    /// Binds a variable to a value, overwriting any previous binding.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range.
    pub fn bind(&mut self, var: VarId, value: Value) {
        self.slots[var.index()] = Some(value);
    }

    /// Removes a binding (used when backtracking out of a pattern match).
    pub fn unbind(&mut self, var: VarId) {
        if var.index() < self.slots.len() {
            self.slots[var.index()] = None;
        }
    }

    /// Clears all bindings and resizes to `n` undefined slots without
    /// reallocating when capacity suffices (used by the executor's
    /// buffer pool).
    pub fn reset(&mut self, n: usize) {
        self.slots.clear();
        self.slots.resize(n, None);
    }

    /// Iterates over bound `(var, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Value)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (VarId::new(i), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut env = Env::with_slots(3);
        assert_eq!(env.len(), 3);
        assert!(!env.is_empty());
        env.bind(VarId::new(1), Value::nat(4));
        assert_eq!(env.get(VarId::new(1)), Some(&Value::nat(4)));
        assert_eq!(env.iter().count(), 1);
        env.unbind(VarId::new(1));
        assert!(env.get(VarId::new(1)).is_none());
    }

    #[test]
    fn empty_env() {
        let env = Env::with_slots(0);
        assert!(env.is_empty());
        assert_eq!(env.iter().count(), 0);
    }
}
