//! Hash-consing of [`Value`] terms.
//!
//! The tabling layer in `indrel-core` keys its memo table on checker
//! arguments. Hashing and comparing those arguments structurally would
//! cost a deep traversal per lookup — exactly the work the cache is
//! supposed to avoid. The [`Interner`] removes that cost by
//! *canonicalizing* terms: within one interner, two structurally equal
//! constructor values intern to the **same** `Arc`, so downstream keys
//! can hash and compare constructor nodes by `Arc` pointer identity in
//! O(arity) instead of O(size).
//!
//! Canonicalization is bottom-up. Each constructor node is identified
//! by a *shallow* key — its [`CtorId`] plus the identities of its
//! (already canonical) children, where a child's identity is its
//! numeric payload for `Nat`/`Bool` and its `Arc` data pointer for
//! constructors. The interner owns every canonical `Arc` it hands out,
//! so those pointers are stable for the interner's lifetime; the
//! `seen` fast path likewise stores *owning* handles to already
//! interned argument vectors (a raw pointer would dangle once the
//! original dropped, and a recycled allocation would then alias a
//! different term — a correctness bug, not just a slow path).
//!
//! The interner offers a second, cheaper service for hot lookup paths:
//! [`Interner::fingerprint`] computes a 64-bit *structural* hash of a
//! term without canonicalizing it, hash-consing the fingerprint of the
//! term's *root* by `Arc` identity (the cache entry owns a clone of the
//! `Arc`, pinning the address it is keyed by). A term seen before —
//! re-checks of the same value, fuel ladders, duplicate-heavy random
//! corpora — fingerprints in one map probe with no allocation; a fresh
//! term costs one mixing walk (which still shortcuts through any
//! subterm cached as some earlier term's root). Interior nodes are
//! deliberately not cached: pinning every node of a
//! seen-once term costs more map traffic than the walk it saves.
//! Consumers that key on fingerprints must confirm candidates
//! structurally (fingerprint equality is evidence, not proof).
//!
//! All maps stop admitting new nodes once `node_cap` is reached;
//! interning then degrades to returning the input unchanged (always
//! sound for pointer-keyed consumers — pointer equality still implies
//! structural equality; distinct uncanonicalized terms merely miss)
//! and fingerprinting to an uncached full walk.
//!
//! # Example
//!
//! ```
//! use indrel_term::{Interner, Value, CtorId};
//! use std::sync::Arc;
//!
//! let mut interner = Interner::new(1 << 20);
//! let t = |n| Value::ctor(CtorId::new(1), vec![Value::nat(n)]);
//! let (a, b) = (interner.intern(&t(7)), interner.intern(&t(7)));
//! match (&a, &b) {
//!     (Value::Ctor(_, xs), Value::Ctor(_, ys)) => assert!(Arc::ptr_eq(xs, ys)),
//!     _ => unreachable!(),
//! }
//! ```

use crate::hash::FastHashBuilder;
use crate::ids::CtorId;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// The address a constructor node is identified by: its argument
/// vector's `Arc` data pointer (unique per live allocation).
fn addr_of(args: &Arc<Vec<Value>>) -> usize {
    Arc::as_ptr(args) as *const () as usize
}

/// Identity of an already canonical child value inside a shallow node
/// key. Scalars are identified by payload, constructor children by the
/// data pointer of their canonical argument `Arc` (unique per
/// allocation, and kept alive by the interner).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum ChildId {
    Nat(u64),
    Bool(bool),
    Node(usize),
}

fn child_id(v: &Value) -> ChildId {
    match v {
        Value::Nat(n) => ChildId::Nat(*n),
        Value::Bool(b) => ChildId::Bool(*b),
        Value::Ctor(_, args) => ChildId::Node(addr_of(args)),
    }
}

/// An owning handle to an argument vector, hashed and compared by
/// pointer identity. Owning the `Arc` is what keeps the pointer from
/// being recycled while it is a map key.
struct ArcKey(Arc<Vec<Value>>);

impl PartialEq for ArcKey {
    fn eq(&self, other: &ArcKey) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}
impl Eq for ArcKey {}
impl std::hash::Hash for ArcKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.0) as *const () as usize).hash(state);
    }
}

/// A hash-consing pool for [`Value`] terms. See the module docs.
pub struct Interner {
    /// Shallow node key → the canonical value for that node.
    nodes: HashMap<(CtorId, Vec<ChildId>), Value, FastHashBuilder>,
    /// Already interned argument vectors → their canonical value, so
    /// re-interning a previously seen term is O(1) instead of a walk.
    seen: HashMap<ArcKey, Value, FastHashBuilder>,
    /// Node address → (pin, structural fingerprint). The stored `Arc`
    /// keeps the keyed allocation alive, so an address can never be
    /// recycled out from under its entry.
    fp: HashMap<usize, (Arc<Vec<Value>>, u64), FastHashBuilder>,
    node_cap: usize,
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("nodes", &self.nodes.len())
            .field("node_cap", &self.node_cap)
            .finish()
    }
}

/// Post-order traversal tasks for the iterative interning loop.
enum Task<'a> {
    Visit(&'a Value),
    Build(CtorId, &'a Arc<Vec<Value>>),
}

impl Interner {
    /// Creates an interner that stops admitting new canonical nodes
    /// once it holds `node_cap` of them.
    pub fn new(node_cap: usize) -> Interner {
        Interner {
            nodes: HashMap::default(),
            seen: HashMap::default(),
            fp: HashMap::default(),
            node_cap,
        }
    }

    /// Number of canonical constructor nodes currently held.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of node fingerprints currently cached.
    pub fn len_fp(&self) -> usize {
        self.fp.len()
    }

    /// True if no node has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops every canonical node, releasing the memory (and the
    /// pointer-identity guarantees) of all previously returned values.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.seen.clear();
        self.fp.clear();
    }

    /// Canonicalizes `v`: structurally equal inputs return
    /// pointer-identical outputs (until [`Interner::clear`], or unless
    /// the node cap was reached first). Scalars are returned as-is.
    ///
    /// Iterative, so arbitrarily deep terms cannot overflow the stack.
    pub fn intern(&mut self, v: &Value) -> Value {
        if !matches!(v, Value::Ctor(..)) {
            return v.clone();
        }
        let mut tasks = vec![Task::Visit(v)];
        let mut done: Vec<Value> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Task::Visit(val) => match val {
                    Value::Ctor(ctor, args) => {
                        if let Some(hit) = self.seen.get(&ArcKey(Arc::clone(args))) {
                            done.push(hit.clone());
                        } else {
                            tasks.push(Task::Build(*ctor, args));
                            // Children pushed in reverse so they pop —
                            // and land in `done` — left to right.
                            tasks.extend(args.iter().rev().map(Task::Visit));
                        }
                    }
                    scalar => done.push(scalar.clone()),
                },
                Task::Build(ctor, orig) => {
                    let children = done.split_off(done.len() - orig.len());
                    let key = (ctor, children.iter().map(child_id).collect::<Vec<_>>());
                    let canon = match self.nodes.get(&key) {
                        Some(c) => c.clone(),
                        None if self.nodes.len() < self.node_cap => {
                            let c = Value::Ctor(ctor, Arc::new(children));
                            self.nodes.insert(key, c.clone());
                            c
                        }
                        // Cap reached: hand back an uncanonicalized
                        // node without remembering it.
                        None => Value::Ctor(ctor, Arc::new(children)),
                    };
                    if self.seen.len() < self.node_cap {
                        if let Value::Ctor(_, canon_args) = &canon {
                            self.seen.insert(ArcKey(Arc::clone(orig)), canon.clone());
                            // The canonical Arc itself re-interns in O(1).
                            self.seen
                                .insert(ArcKey(Arc::clone(canon_args)), canon.clone());
                        }
                    }
                    done.push(canon);
                }
            }
        }
        debug_assert_eq!(done.len(), 1);
        done.pop().expect("intern traversal leaves one result")
    }

    /// Structural fingerprint of `v`: equal for structurally equal
    /// terms, and one allocation-free map probe for any constructor
    /// whose `Arc` was fingerprinted (as a root) before. A fresh term
    /// costs one mixing walk, after which its root is cached, its
    /// address pinned by the cache.
    ///
    /// Iterative, so arbitrarily deep terms cannot overflow the stack.
    pub fn fingerprint(&mut self, v: &Value) -> u64 {
        match v {
            Value::Nat(n) => fp_scalar(0, *n),
            Value::Bool(b) => fp_scalar(1, u64::from(*b)),
            Value::Ctor(_, args) => {
                if let Some(&(_, h)) = self.fp.get(&addr_of(args)) {
                    return h;
                }
                let h = self.fingerprint_cold(v);
                if self.fp.len() < self.node_cap {
                    self.fp.insert(addr_of(args), (Arc::clone(args), h));
                }
                h
            }
        }
    }

    /// The uncached fingerprint walk: a preorder fold over the term's
    /// tokens (constructor ids, scalar payloads). Preorder with known
    /// arities determines the tree uniquely, so no postorder combining
    /// — and no cache probing, which on seen-once terms costs more than
    /// the mixing it could save — is needed. The caller caches the
    /// result under the root's address.
    ///
    /// The fold stops after [`FP_TOKEN_CAP`] tokens: a fingerprint is a
    /// hash, not an identity, and every consumer confirms candidates
    /// structurally, so truncating to a preorder prefix (still a pure
    /// function of the term — equal terms share every prefix) only
    /// trades bucket selectivity on huge terms for a hard bound on
    /// hashing cost. That bound is what keeps table lookups affordable
    /// on workloads that never hit.
    fn fingerprint_cold(&self, v: &Value) -> u64 {
        let mut h = 0x6A09_E667_F3BC_C909u64;
        let mut budget = FP_TOKEN_CAP;
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            // Tokens are tagged cheaply (one multiply at most); the
            // rotate-xor-multiply fold and the final mix carry the
            // diffusion, and consumers confirm structurally anyway.
            let tok = match x {
                Value::Nat(n) => n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                Value::Bool(b) => 0x0310_5AB3_u64 | u64::from(*b) << 63,
                Value::Ctor(ctor, args) => {
                    stack.extend(args.iter().rev());
                    (ctor.index() as u64) << 2 | 2
                }
            };
            h = (h.rotate_left(5) ^ tok).wrapping_mul(0x517C_C1B7_2722_0A95);
        }
        splitmix(h)
    }
}

/// How many preorder tokens a cold fingerprint walk folds before
/// truncating (see [`Interner::fingerprint`]); terms whose first
/// `FP_TOKEN_CAP` tokens agree share a fingerprint and are told apart
/// by the structural confirmation their consumers already perform.
const FP_TOKEN_CAP: usize = 48;

/// Finalizing mix (splitmix64), applied once per constructor node.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn fp_scalar(tag: u64, payload: u64) -> u64 {
    splitmix(payload ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Value {
        Value::ctor(CtorId::new(0), vec![])
    }

    fn node(n: u64, l: Value, r: Value) -> Value {
        Value::ctor(CtorId::new(1), vec![Value::nat(n), l, r])
    }

    fn args_of(v: &Value) -> &Arc<Vec<Value>> {
        match v {
            Value::Ctor(_, args) => args,
            _ => panic!("expected a constructor"),
        }
    }

    #[test]
    fn equal_terms_intern_to_the_same_arc() {
        let mut i = Interner::new(1 << 16);
        let a = i.intern(&node(3, leaf(), node(1, leaf(), leaf())));
        let b = i.intern(&node(3, leaf(), node(1, leaf(), leaf())));
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(args_of(&a), args_of(&b)));
    }

    #[test]
    fn distinct_terms_stay_distinct() {
        let mut i = Interner::new(1 << 16);
        let a = i.intern(&node(3, leaf(), leaf()));
        let b = i.intern(&node(4, leaf(), leaf()));
        assert_ne!(a, b);
        assert!(!Arc::ptr_eq(args_of(&a), args_of(&b)));
    }

    #[test]
    fn shared_subterms_are_shared_in_the_output() {
        let mut i = Interner::new(1 << 16);
        let t = i.intern(&node(0, node(7, leaf(), leaf()), node(7, leaf(), leaf())));
        let (l, r) = (&args_of(&t)[1], &args_of(&t)[2]);
        assert!(Arc::ptr_eq(args_of(l), args_of(r)));
    }

    #[test]
    fn reinterning_a_canonical_value_is_identity() {
        let mut i = Interner::new(1 << 16);
        let a = i.intern(&node(3, leaf(), leaf()));
        let b = i.intern(&a);
        assert!(Arc::ptr_eq(args_of(&a), args_of(&b)));
    }

    #[test]
    fn scalars_pass_through() {
        let mut i = Interner::new(1 << 16);
        assert_eq!(i.intern(&Value::nat(9)), Value::nat(9));
        assert_eq!(i.intern(&Value::bool(true)), Value::bool(true));
        assert!(i.is_empty());
    }

    #[test]
    fn cap_degrades_without_losing_structure() {
        let mut i = Interner::new(1); // room for a single node
        let a = i.intern(&node(1, leaf(), leaf()));
        let b = i.intern(&node(2, leaf(), leaf()));
        assert_eq!(a, node(1, leaf(), leaf()));
        assert_eq!(b, node(2, leaf(), leaf()));
        assert!(i.len() <= 1);
    }

    #[test]
    fn clear_resets_the_pool() {
        let mut i = Interner::new(1 << 16);
        let a = i.intern(&node(1, leaf(), leaf()));
        i.clear();
        assert!(i.is_empty());
        let b = i.intern(&node(1, leaf(), leaf()));
        // Structure survives; identity is only promised within an epoch.
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprints_are_structural() {
        let mut i = Interner::new(1 << 16);
        // Physically fresh but structurally equal terms agree.
        let a = i.fingerprint(&node(3, leaf(), node(1, leaf(), leaf())));
        let b = i.fingerprint(&node(3, leaf(), node(1, leaf(), leaf())));
        assert_eq!(a, b);
        // Distinct payloads, shapes, and constructors all differ.
        assert_ne!(a, i.fingerprint(&node(4, leaf(), node(1, leaf(), leaf()))));
        assert_ne!(a, i.fingerprint(&node(3, node(1, leaf(), leaf()), leaf())));
        assert_ne!(i.fingerprint(&leaf()), i.fingerprint(&Value::nat(0)));
        assert_ne!(
            i.fingerprint(&Value::nat(0)),
            i.fingerprint(&Value::bool(false))
        );
    }

    #[test]
    fn fingerprints_are_cached_by_identity() {
        let mut i = Interner::new(1 << 16);
        let t = node(5, leaf(), leaf());
        let first = i.fingerprint(&t);
        let cached = i.len_fp();
        // Re-fingerprinting the same Arc is a probe, not a walk: the
        // cache does not grow.
        assert_eq!(i.fingerprint(&t), first);
        assert_eq!(i.len_fp(), cached);
        // A structurally equal fresh term re-walks (new addresses) but
        // lands on the same fingerprint.
        assert_eq!(i.fingerprint(&node(5, leaf(), leaf())), first);
        assert!(i.len_fp() > cached);
    }

    #[test]
    fn fingerprints_truncate_to_a_preorder_prefix() {
        let mut i = Interner::new(1 << 16);
        // Two chains that differ only past the token cap: same prefix,
        // same fingerprint — consumers must treat equality as evidence.
        let chain = |tail: Value| {
            let mut v = tail;
            for _ in 0..2 * super::FP_TOKEN_CAP {
                v = Value::ctor(CtorId::new(2), vec![v]);
            }
            v
        };
        let a = chain(Value::nat(7));
        let b = chain(Value::nat(8));
        assert_eq!(i.fingerprint(&a), i.fingerprint(&b));
        // A difference inside the prefix still separates them.
        let c = Value::ctor(CtorId::new(3), vec![a.clone()]);
        let d = Value::ctor(CtorId::new(4), vec![a.clone()]);
        assert_ne!(i.fingerprint(&c), i.fingerprint(&d));
    }

    #[test]
    fn deep_terms_fingerprint_iteratively() {
        let mut i = Interner::new(1 << 20);
        let mut v = leaf();
        for _ in 0..200_000 {
            v = Value::ctor(CtorId::new(2), vec![v]);
        }
        let h = i.fingerprint(&v);
        assert_eq!(i.fingerprint(&v), h);
        // `v` keeps every chain node alive while the cache's pins drop,
        // so clearing cannot cascade; then dismantle the chain itself.
        i.clear();
        drop(i);
        dismantle(v);
    }

    /// Iterative teardown of a unary chain; a plain drop would recurse.
    fn dismantle(mut v: Value) {
        while let Value::Ctor(_, args) = v {
            match Arc::try_unwrap(args) {
                Ok(mut vec) => match vec.pop() {
                    Some(child) => v = child,
                    None => break,
                },
                Err(_) => break,
            }
        }
    }

    #[test]
    fn deep_terms_intern_iteratively() {
        let mut i = Interner::new(1 << 20);
        let mut v = leaf();
        for _ in 0..200_000 {
            v = Value::ctor(CtorId::new(2), vec![v]);
        }
        let canon = i.intern(&v);
        let again = i.intern(&v); // `seen` fast path, O(1)
        assert!(Arc::ptr_eq(args_of(&canon), args_of(&again)));
        // Teardown must not recurse either. Holding `canon` while the
        // interner clears keeps every chain node alive (each is pinned
        // by its parent), so no drop cascades; then the two remaining
        // singly-owned chains are dismantled iteratively.
        drop(again);
        i.clear();
        drop(i);
        dismantle(canon);
        dismantle(v);
    }
}
