//! Runtime values.

use crate::ids::CtorId;
use std::sync::Arc;

/// A first-order runtime value: a machine natural, a boolean, or a fully
/// applied constructor.
///
/// Constructor arguments are reference-counted so that values can be
/// shared cheaply; cloning a [`Value`] is O(1) in the size of subterms.
///
/// # Example
///
/// ```
/// use indrel_term::{Value, CtorId};
/// let nil = Value::ctor(CtorId::new(0), vec![]);
/// let one = Value::ctor(CtorId::new(1), vec![Value::nat(1), nil.clone()]);
/// assert_eq!(one.size(), 3); // cons + one successor + nil
/// assert!(one > nil || one < nil);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// A machine natural number.
    Nat(u64),
    /// A boolean.
    Bool(bool),
    /// A fully applied constructor.
    Ctor(CtorId, Arc<Vec<Value>>),
}

impl Value {
    /// Builds a natural number value.
    pub fn nat(n: u64) -> Value {
        Value::Nat(n)
    }

    /// Builds a boolean value.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// Builds a fully applied constructor value.
    pub fn ctor(ctor: CtorId, args: Vec<Value>) -> Value {
        Value::Ctor(ctor, Arc::new(args))
    }

    /// Returns the constructor id if the value is a constructor.
    pub fn as_ctor(&self) -> Option<(CtorId, &[Value])> {
        match self {
            Value::Ctor(c, args) => Some((*c, args)),
            _ => None,
        }
    }

    /// Returns the natural if the value is a [`Value::Nat`].
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean if the value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The *size* of a value: number of constructor nodes, counting a
    /// natural `n` as `n` successor nodes. This is the measure used by
    /// bounded-exhaustive enumeration and by the validation harness.
    ///
    /// Iterative (explicit worklist): fuzz-generated terms can nest
    /// arbitrarily deep, and the recursion stack must not be the limit.
    pub fn size(&self) -> u64 {
        let mut total = 0u64;
        let mut work = vec![self];
        while let Some(v) = work.pop() {
            match v {
                Value::Nat(n) => total += n,
                Value::Bool(_) => {}
                Value::Ctor(_, args) => {
                    total += 1;
                    work.extend(args.iter());
                }
            }
        }
        total
    }

    /// Structural equality that never consults pointer identity.
    ///
    /// [`PartialEq`] for [`Value`] is also structural, but Rust's derived
    /// implementation short-circuits on `Arc` pointer equality for shared
    /// subterms. The proof-checking case study (§6.3 of the paper) needs
    /// the honest O(n) comparison a proof kernel would perform, so this
    /// method deliberately walks both terms — iteratively, so the honest
    /// walk survives terms deeper than the call stack.
    pub fn structurally_equal(&self, other: &Value) -> bool {
        let mut work = vec![(self, other)];
        while let Some((a, b)) = work.pop() {
            match (a, b) {
                (Value::Nat(x), Value::Nat(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Value::Bool(x), Value::Bool(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Value::Ctor(c1, a1), Value::Ctor(c2, a2)) => {
                    if c1 != c2 || a1.len() != a2.len() {
                        return false;
                    }
                    work.extend(a1.iter().zip(a2.iter()));
                }
                _ => return false,
            }
        }
        true
    }

    /// Depth of the value tree (a `Nat` has depth 0).
    pub fn depth(&self) -> u64 {
        let mut deepest = 0u64;
        let mut work = vec![(self, 0u64)];
        while let Some((v, above)) = work.pop() {
            match v {
                Value::Nat(_) | Value::Bool(_) => deepest = deepest.max(above),
                Value::Ctor(_, args) => {
                    let here = above + 1;
                    deepest = deepest.max(here);
                    work.extend(args.iter().map(|a| (a, here)));
                }
            }
        }
        deepest
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Nat(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Value {
        Value::ctor(CtorId::new(0), vec![])
    }

    fn node(n: u64, l: Value, r: Value) -> Value {
        Value::ctor(CtorId::new(1), vec![Value::nat(n), l, r])
    }

    #[test]
    fn size_counts_ctor_nodes_and_nat_magnitude() {
        assert_eq!(Value::nat(5).size(), 5);
        assert_eq!(Value::bool(true).size(), 0);
        assert_eq!(leaf().size(), 1);
        assert_eq!(node(2, leaf(), leaf()).size(), 5);
    }

    #[test]
    fn depth_is_tree_height() {
        assert_eq!(leaf().depth(), 1);
        assert_eq!(node(0, leaf(), node(0, leaf(), leaf())).depth(), 3);
    }

    #[test]
    fn structural_equality_matches_derived_eq() {
        let a = node(1, leaf(), leaf());
        let b = node(1, leaf(), leaf());
        let c = node(2, leaf(), leaf());
        assert!(a.structurally_equal(&b));
        assert_eq!(a, b);
        assert!(!a.structurally_equal(&c));
        assert_ne!(a, c);
    }

    #[test]
    fn clone_is_shallow() {
        let big = node(1, node(2, leaf(), leaf()), leaf());
        let copy = big.clone();
        if let (Value::Ctor(_, a), Value::Ctor(_, b)) = (&big, &copy) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected constructors");
        }
    }

    /// A unary chain `depth` constructors tall. Dropping such a chain
    /// recursively would itself overflow the stack, so the helper below
    /// dismantles it iteratively.
    fn deep_chain(depth: usize) -> Value {
        let mut v = leaf();
        for _ in 0..depth {
            v = Value::ctor(CtorId::new(2), vec![v]);
        }
        v
    }

    fn dismantle(mut v: Value) {
        while let Value::Ctor(_, args) = v {
            match Arc::try_unwrap(args) {
                Ok(mut vec) => match vec.pop() {
                    Some(child) => v = child,
                    None => break,
                },
                // Shared — the other owner dismantles it.
                Err(_) => break,
            }
        }
    }

    #[test]
    fn deep_terms_do_not_overflow_the_stack() {
        const DEPTH: usize = 300_000;
        let a = deep_chain(DEPTH);
        let b = a.clone(); // shallow: shares the whole chain
        assert_eq!(a.size(), DEPTH as u64 + 1);
        assert_eq!(a.depth(), DEPTH as u64 + 1);
        assert!(a.structurally_equal(&b));
        let c = deep_chain(DEPTH); // physically distinct copy
        assert!(a.structurally_equal(&c));
        drop(b); // refcounts stay > 1 along `a`'s chain: non-recursive
        dismantle(a);
        dismantle(c);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u64), Value::nat(3));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::nat(3).as_nat(), Some(3));
        assert_eq!(Value::bool(false).as_bool(), Some(false));
        assert!(leaf().as_ctor().is_some());
        assert!(Value::nat(0).as_ctor().is_none());
    }
}
