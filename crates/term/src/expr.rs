//! Constructor terms with variables and function calls — the grammar of
//! rule conclusions and premise arguments.

use crate::env::Env;
use crate::ids::{CtorId, FunId, VarId};
use crate::pattern::Pattern;
use crate::universe::Universe;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term expression.
///
/// This is the `e` of the paper's grammar: variables, literals, fully
/// applied constructors, successor, and calls to registered total
/// functions. Expressions evaluate under an [`Env`] once all their
/// variables are bound.
///
/// # Example
///
/// ```
/// use indrel_term::{TermExpr, Env, Universe, Value, VarId};
/// let mut u = Universe::new();
/// u.std_funs();
/// let plus = u.fun_id("plus").unwrap();
/// // plus n n
/// let e = TermExpr::Fun(plus, vec![TermExpr::var(0), TermExpr::var(0)]);
/// let mut env = Env::with_slots(1);
/// env.bind(VarId::new(0), Value::nat(21));
/// assert_eq!(e.eval(&env, &u), Some(Value::nat(42)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TermExpr {
    /// A rule variable.
    Var(VarId),
    /// A natural literal.
    NatLit(u64),
    /// A boolean literal.
    BoolLit(bool),
    /// Successor of a natural-valued expression (Coq's `S`).
    Succ(Box<TermExpr>),
    /// A fully applied constructor.
    Ctor(CtorId, Vec<TermExpr>),
    /// A call to a registered total function.
    Fun(FunId, Vec<TermExpr>),
}

impl TermExpr {
    /// Convenience constructor for [`TermExpr::Var`].
    pub fn var(index: usize) -> TermExpr {
        TermExpr::Var(VarId::new(index))
    }

    /// Convenience constructor for [`TermExpr::Ctor`].
    pub fn ctor(ctor: CtorId, args: Vec<TermExpr>) -> TermExpr {
        TermExpr::Ctor(ctor, args)
    }

    /// The successor expression `S e`.
    pub fn succ(e: TermExpr) -> TermExpr {
        TermExpr::Succ(Box::new(e))
    }

    /// Evaluates the expression; `None` if any variable is unbound.
    pub fn eval(&self, env: &Env, universe: &Universe) -> Option<Value> {
        match self {
            TermExpr::Var(x) => env.get(*x).cloned(),
            TermExpr::NatLit(n) => Some(Value::nat(*n)),
            TermExpr::BoolLit(b) => Some(Value::bool(*b)),
            TermExpr::Succ(e) => {
                let v = e.eval(env, universe)?;
                Some(Value::nat(v.as_nat()?.saturating_add(1)))
            }
            TermExpr::Ctor(c, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env, universe)?);
                }
                Some(Value::ctor(*c, vals))
            }
            TermExpr::Fun(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env, universe)?);
                }
                Some(universe.fun(*f).apply(&vals))
            }
        }
    }

    /// The set of variables occurring in the expression.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            TermExpr::Var(x) => {
                out.insert(*x);
            }
            TermExpr::NatLit(_) | TermExpr::BoolLit(_) => {}
            TermExpr::Succ(e) => e.collect_vars(out),
            TermExpr::Ctor(_, args) | TermExpr::Fun(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Variable occurrences in left-to-right order, with duplicates.
    pub fn occurrences(&self) -> Vec<VarId> {
        fn go(e: &TermExpr, out: &mut Vec<VarId>) {
            match e {
                TermExpr::Var(x) => out.push(*x),
                TermExpr::NatLit(_) | TermExpr::BoolLit(_) => {}
                TermExpr::Succ(e) => go(e, out),
                TermExpr::Ctor(_, args) | TermExpr::Fun(_, args) => {
                    for a in args {
                        go(a, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Returns `true` when the expression contains no function calls —
    /// i.e. it is a *constructor term* in the sense of §3.
    pub fn is_constructor_term(&self) -> bool {
        match self {
            TermExpr::Var(_) | TermExpr::NatLit(_) | TermExpr::BoolLit(_) => true,
            TermExpr::Succ(e) => e.is_constructor_term(),
            TermExpr::Ctor(_, args) => args.iter().all(TermExpr::is_constructor_term),
            TermExpr::Fun(_, _) => false,
        }
    }

    /// Converts a constructor term to the corresponding pattern.
    ///
    /// Returns `None` if the expression contains a function call. The
    /// resulting pattern may be non-linear if the expression repeats a
    /// variable; the preprocessing phase linearizes conclusions before
    /// this conversion is used by the derivation algorithm.
    pub fn to_pattern(&self) -> Option<Pattern> {
        match self {
            TermExpr::Var(x) => Some(Pattern::Var(*x)),
            TermExpr::NatLit(n) => Some(Pattern::NatLit(*n)),
            TermExpr::BoolLit(b) => Some(Pattern::BoolLit(*b)),
            TermExpr::Succ(e) => Some(Pattern::Succ(Box::new(e.to_pattern()?))),
            TermExpr::Ctor(c, args) => {
                let mut pats = Vec::with_capacity(args.len());
                for a in args {
                    pats.push(a.to_pattern()?);
                }
                Some(Pattern::Ctor(*c, pats))
            }
            TermExpr::Fun(_, _) => None,
        }
    }

    /// Substitutes a variable by another expression.
    pub fn subst_var(&self, var: VarId, replacement: &TermExpr) -> TermExpr {
        match self {
            TermExpr::Var(x) if *x == var => replacement.clone(),
            TermExpr::Var(_) | TermExpr::NatLit(_) | TermExpr::BoolLit(_) => self.clone(),
            TermExpr::Succ(e) => TermExpr::succ(e.subst_var(var, replacement)),
            TermExpr::Ctor(c, args) => TermExpr::Ctor(
                *c,
                args.iter().map(|a| a.subst_var(var, replacement)).collect(),
            ),
            TermExpr::Fun(f, args) => TermExpr::Fun(
                *f,
                args.iter().map(|a| a.subst_var(var, replacement)).collect(),
            ),
        }
    }

    /// Renders the expression with names from the universe and variable
    /// name table.
    pub fn display<'a>(
        &'a self,
        universe: &'a Universe,
        var_names: &'a [String],
    ) -> DisplayExpr<'a> {
        DisplayExpr {
            expr: self,
            universe,
            var_names,
        }
    }
}

/// Helper returned by [`TermExpr::display`].
#[derive(Debug)]
pub struct DisplayExpr<'a> {
    expr: &'a TermExpr,
    universe: &'a Universe,
    var_names: &'a [String],
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.expr, self.universe, self.var_names, f, false)
    }
}

fn fmt_expr(
    e: &TermExpr,
    universe: &Universe,
    var_names: &[String],
    f: &mut fmt::Formatter<'_>,
    nested: bool,
) -> fmt::Result {
    let head_args: (String, &[TermExpr]) = match e {
        TermExpr::Var(x) => {
            return match var_names.get(x.index()) {
                Some(name) => write!(f, "{name}"),
                None => write!(f, "{x}"),
            };
        }
        TermExpr::NatLit(n) => return write!(f, "{n}"),
        TermExpr::BoolLit(b) => return write!(f, "{b}"),
        TermExpr::Succ(inner) => ("S".to_string(), std::slice::from_ref(inner)),
        TermExpr::Ctor(c, args) => (universe.ctor(*c).name().to_string(), args),
        TermExpr::Fun(fun, args) => (universe.fun(*fun).name().to_string(), args),
    };
    let (head, args) = head_args;
    if args.is_empty() {
        return write!(f, "{head}");
    }
    if nested {
        write!(f, "(")?;
    }
    write!(f, "{head}")?;
    for a in args {
        write!(f, " ")?;
        fmt_expr(a, universe, var_names, f, true)?;
    }
    if nested {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_requires_bindings() {
        let u = Universe::new();
        let e = TermExpr::succ(TermExpr::var(0));
        let env = Env::with_slots(1);
        assert_eq!(e.eval(&env, &u), None);
        let mut env = env;
        env.bind(VarId::new(0), Value::nat(4));
        assert_eq!(e.eval(&env, &u), Some(Value::nat(5)));
    }

    #[test]
    fn eval_function_calls() {
        let mut u = Universe::new();
        u.std_funs();
        let mult = u.fun_id("mult").unwrap();
        let e = TermExpr::Fun(mult, vec![TermExpr::NatLit(6), TermExpr::NatLit(7)]);
        assert_eq!(e.eval(&Env::with_slots(0), &u), Some(Value::nat(42)));
    }

    #[test]
    fn constructor_terms_and_patterns() {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let cons = u.ctor_id("cons").unwrap();
        let plus = u.fun_id("plus").unwrap();
        let ct = TermExpr::ctor(cons, vec![TermExpr::var(0), TermExpr::var(1)]);
        assert!(ct.is_constructor_term());
        assert!(ct.to_pattern().is_some());
        let ft = TermExpr::ctor(cons, vec![TermExpr::Fun(plus, vec![]), TermExpr::var(0)]);
        assert!(!ft.is_constructor_term());
        assert!(ft.to_pattern().is_none());
    }

    #[test]
    fn variables_and_occurrences() {
        let e = TermExpr::succ(TermExpr::Ctor(
            CtorId::new(0),
            vec![TermExpr::var(1), TermExpr::var(0), TermExpr::var(1)],
        ));
        assert_eq!(
            e.variables().into_iter().collect::<Vec<_>>(),
            vec![VarId::new(0), VarId::new(1)]
        );
        assert_eq!(
            e.occurrences(),
            vec![VarId::new(1), VarId::new(0), VarId::new(1)]
        );
    }

    #[test]
    fn subst_var_replaces_all() {
        let e = TermExpr::Ctor(CtorId::new(0), vec![TermExpr::var(0), TermExpr::var(0)]);
        let s = e.subst_var(VarId::new(0), &TermExpr::NatLit(3));
        assert_eq!(
            s,
            TermExpr::Ctor(
                CtorId::new(0),
                vec![TermExpr::NatLit(3), TermExpr::NatLit(3)]
            )
        );
    }

    #[test]
    fn display_expr() {
        let mut u = Universe::new();
        u.std_funs();
        let plus = u.fun_id("plus").unwrap();
        let names = vec!["n".to_string()];
        let e = TermExpr::Fun(
            plus,
            vec![TermExpr::var(0), TermExpr::succ(TermExpr::var(0))],
        );
        assert_eq!(e.display(&u, &names).to_string(), "plus n (S n)");
    }
}
