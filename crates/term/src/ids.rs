//! Typed indices into the [`Universe`](crate::Universe) and into rule
//! variable tables.
//!
//! Each id is a thin newtype over `u32` (or `usize` for [`VarId`]) so that
//! the different index spaces cannot be confused ([C-NEWTYPE]).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            pub fn new(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index overflow"))
            }

            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a datatype declaration in a [`Universe`](crate::Universe).
    DtId,
    "dt"
);
id_type!(
    /// Identifies a constructor declaration in a [`Universe`](crate::Universe).
    CtorId,
    "ctor"
);
id_type!(
    /// Identifies a registered total function in a [`Universe`](crate::Universe).
    FunId,
    "fun"
);
id_type!(
    /// Identifies an inductive relation. The id space is owned by the
    /// relation environment of the `indrel-rel` crate.
    RelId,
    "rel"
);

/// Identifies a universally quantified variable of a rule.
///
/// Variables are slots in a per-rule table; the derivation engine compiles
/// them to dense environment indices.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable id from a raw slot index.
    pub fn new(index: usize) -> Self {
        VarId(index)
    }

    /// Returns the raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<VarId> for usize {
    fn from(id: VarId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let dt = DtId::new(7);
        assert_eq!(dt.index(), 7);
        assert_eq!(dt.to_string(), "dt7");
        let v = VarId::new(3);
        assert_eq!(v.index(), 3);
        assert_eq!(v.to_string(), "x3");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; we just exercise equality.
        assert_eq!(CtorId::new(1), CtorId::new(1));
        assert_ne!(FunId::new(1), FunId::new(2));
        assert_eq!(usize::from(RelId::new(9)), 9);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(DtId::new(1) < DtId::new(2));
        assert!(VarId::new(0) < VarId::new(10));
    }
}
