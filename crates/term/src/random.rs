//! Random generation of raw values of a type — the unconstrained
//! generator fallback.

use crate::types::TypeExpr;
use crate::universe::Universe;
use crate::value::Value;
use rand::Rng;

/// Generates a random value of `ty` with size roughly bounded by `size`.
///
/// Constructor choice follows the QuickChick convention: at size 0 only
/// base (non-recursive) constructors are eligible; otherwise recursive
/// constructors are weighted by the remaining size. Recursive arguments
/// share the remaining budget.
///
/// # Panics
///
/// Panics if `ty` is not ground, or if a datatype has no base
/// constructor (such a type has no finite inhabitants).
pub fn random_value(
    universe: &Universe,
    ty: &TypeExpr,
    size: u64,
    rng: &mut dyn rand::RngCore,
) -> Value {
    match ty {
        TypeExpr::Nat => Value::nat(rng.gen_range(0..=size)),
        TypeExpr::Bool => Value::bool(rng.gen_range(0..2) == 1),
        TypeExpr::Param(_) => panic!("cannot generate a non-ground type"),
        TypeExpr::App(dt, ty_args) => {
            let decl = universe.datatype(*dt);
            let base: Vec<_> = decl
                .ctors()
                .iter()
                .copied()
                .filter(|&c| universe.ctor(c).is_base())
                .collect();
            let recursive: Vec<_> = decl
                .ctors()
                .iter()
                .copied()
                .filter(|&c| !universe.ctor(c).is_base())
                .collect();
            assert!(
                !base.is_empty(),
                "datatype `{}` has no base constructor",
                decl.name()
            );
            let ctor = if size == 0 || recursive.is_empty() {
                base[rng.gen_range(0..base.len())]
            } else {
                // Weight: each base constructor 1, each recursive
                // constructor `size`.
                let total = base.len() as u64 + recursive.len() as u64 * size;
                let mut pick = rng.gen_range(0..total);
                if pick < base.len() as u64 {
                    base[pick as usize]
                } else {
                    pick -= base.len() as u64;
                    recursive[(pick / size) as usize]
                }
            };
            let arg_tys = universe.ctor_arg_types(ctor, ty_args);
            let nrec = arg_tys
                .iter()
                .filter(|t| mentions_dt(t, *dt))
                .count()
                .max(1) as u64;
            let child_budget = size.saturating_sub(1) / nrec;
            let args = arg_tys
                .iter()
                .map(|t| {
                    let budget = if mentions_dt(t, *dt) {
                        child_budget
                    } else {
                        size.saturating_sub(1)
                    };
                    random_value(universe, t, budget, rng)
                })
                .collect();
            Value::ctor(ctor, args)
        }
    }
}

fn mentions_dt(ty: &TypeExpr, dt: crate::ids::DtId) -> bool {
    match ty {
        TypeExpr::Nat | TypeExpr::Bool | TypeExpr::Param(_) => false,
        TypeExpr::App(d, args) => *d == dt || args.iter().any(|t| mentions_dt(t, dt)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_nats_in_range() {
        let u = Universe::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = random_value(&u, &TypeExpr::Nat, 10, &mut rng);
            assert!(v.as_nat().unwrap() <= 10);
        }
    }

    #[test]
    fn size_zero_trees_are_leaves() {
        let mut u = Universe::new();
        let dt = u
            .declare_datatype(
                "tree",
                0,
                &[
                    ("Leaf", vec![]),
                    (
                        "Node",
                        vec![
                            TypeExpr::Nat,
                            TypeExpr::named("tree"),
                            TypeExpr::named("tree"),
                        ],
                    ),
                ],
            )
            .unwrap();
        let leaf = u.ctor_id("Leaf").unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let ty = TypeExpr::datatype(dt);
        for _ in 0..20 {
            let v = random_value(&u, &ty, 0, &mut rng);
            assert_eq!(v, Value::ctor(leaf, vec![]));
        }
        // At larger sizes we should see some nodes.
        let node = u.ctor_id("Node").unwrap();
        let mut saw_node = false;
        for _ in 0..50 {
            let v = random_value(&u, &ty, 8, &mut rng);
            if v.as_ctor().map(|(c, _)| c) == Some(node) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    #[test]
    fn random_lists_terminate() {
        let mut u = Universe::new();
        let list = u.std_list();
        let ty = TypeExpr::App(list, vec![TypeExpr::Nat]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = random_value(&u, &ty, 12, &mut rng);
            assert!(u.list_elems(&v).is_some());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let u = Universe::new();
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va = random_value(&u, &TypeExpr::Nat, 100, &mut a);
        let vb = random_value(&u, &TypeExpr::Nat, 100, &mut b);
        assert_eq!(va, vb);
    }
}
