//! Type expressions.
//!
//! Types are first order: machine naturals, booleans, type parameters
//! (inside datatype declarations only), and fully applied datatypes.
//! Relations and rule variables are always *monomorphic* — parameterized
//! datatypes such as `list A` must be fully applied at use sites, exactly
//! as the fully-applied `Inductive P (A … : Type)` headers of the paper.

use crate::ids::DtId;
use crate::universe::Universe;
use std::fmt;

/// A first-order type expression.
///
/// # Example
///
/// ```
/// use indrel_term::TypeExpr;
/// let t = TypeExpr::Nat;
/// assert!(t.is_ground());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum TypeExpr {
    /// Machine natural numbers (`nat`). Patterns may still deconstruct
    /// them through zero/successor, see [`Pattern`](crate::Pattern).
    Nat,
    /// Booleans (`bool`).
    Bool,
    /// A type parameter of the enclosing datatype declaration
    /// (de Bruijn-style index into the declaration's parameter list).
    Param(u32),
    /// A datatype applied to type arguments, e.g. `list nat`.
    App(DtId, Vec<TypeExpr>),
}

impl TypeExpr {
    /// A nullary datatype reference by id.
    pub fn datatype(dt: DtId) -> TypeExpr {
        TypeExpr::App(dt, Vec::new())
    }

    /// Placeholder used by doc examples and tests: refers to a datatype by
    /// name. Encoded as an
    /// unresolved application with an invalid id; prefer
    /// [`Universe::type_named`] in real code.
    ///
    /// # Panics
    ///
    /// Never panics; the returned type must be resolved through a
    /// [`Universe`] before use.
    pub fn named(_name: &str) -> TypeExpr {
        // Names are resolved during datatype declaration; see
        // `Universe::declare_datatype`, which patches self-references.
        TypeExpr::App(DtId::new(u32::MAX as usize - 1), Vec::new())
    }

    /// Returns `true` when the type contains no [`TypeExpr::Param`].
    pub fn is_ground(&self) -> bool {
        match self {
            TypeExpr::Nat | TypeExpr::Bool => true,
            TypeExpr::Param(_) => false,
            TypeExpr::App(_, args) => args.iter().all(TypeExpr::is_ground),
        }
    }

    /// Substitutes type parameters by the given instantiation.
    ///
    /// Used to compute the concrete argument types of a constructor of a
    /// parameterized datatype at a ground instance (e.g. the `cons`
    /// arguments at `list nat`).
    pub fn instantiate(&self, args: &[TypeExpr]) -> TypeExpr {
        match self {
            TypeExpr::Nat => TypeExpr::Nat,
            TypeExpr::Bool => TypeExpr::Bool,
            TypeExpr::Param(i) => args
                .get(*i as usize)
                .cloned()
                .unwrap_or(TypeExpr::Param(*i)),
            TypeExpr::App(dt, inner) => {
                TypeExpr::App(*dt, inner.iter().map(|t| t.instantiate(args)).collect())
            }
        }
    }

    /// Renders the type using datatype names from the universe.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> DisplayType<'a> {
        DisplayType { ty: self, universe }
    }
}

/// Helper returned by [`TypeExpr::display`].
#[derive(Debug)]
pub struct DisplayType<'a> {
    ty: &'a TypeExpr,
    universe: &'a Universe,
}

impl fmt::Display for DisplayType<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self.ty, self.universe, f, false)
    }
}

fn fmt_type(
    ty: &TypeExpr,
    universe: &Universe,
    f: &mut fmt::Formatter<'_>,
    nested: bool,
) -> fmt::Result {
    match ty {
        TypeExpr::Nat => write!(f, "nat"),
        TypeExpr::Bool => write!(f, "bool"),
        TypeExpr::Param(i) => write!(f, "'{}", (b'a' + (*i as u8 % 26)) as char),
        TypeExpr::App(dt, args) => {
            let name = universe.datatype(*dt).name();
            if args.is_empty() {
                write!(f, "{name}")
            } else {
                if nested {
                    write!(f, "(")?;
                }
                write!(f, "{name}")?;
                for a in args {
                    write!(f, " ")?;
                    fmt_type(a, universe, f, true)?;
                }
                if nested {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn instantiate_substitutes_params() {
        let mut u = Universe::new();
        let list = u.std_list();
        let t = TypeExpr::App(list, vec![TypeExpr::Param(0)]);
        let inst = t.instantiate(&[TypeExpr::Nat]);
        assert_eq!(inst, TypeExpr::App(list, vec![TypeExpr::Nat]));
        assert!(inst.is_ground());
        assert!(!t.is_ground());
    }

    #[test]
    fn display_types() {
        let mut u = Universe::new();
        let list = u.std_list();
        let t = TypeExpr::App(list, vec![TypeExpr::Nat]);
        assert_eq!(t.display(&u).to_string(), "list nat");
        let nested = TypeExpr::App(list, vec![t.clone()]);
        assert_eq!(nested.display(&u).to_string(), "list (list nat)");
    }
}
