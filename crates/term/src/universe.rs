//! The universe: a registry of datatypes and total first-order functions.

use crate::ids::{CtorId, DtId, FunId};
use crate::types::TypeExpr;
use crate::value::Value;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// The sentinel produced by [`TypeExpr::named`]: resolved to the datatype
/// currently being declared.
const SELF_SENTINEL: usize = u32::MAX as usize - 1;

/// A constructor declaration.
#[derive(Clone, Debug)]
pub struct CtorDecl {
    name: String,
    datatype: DtId,
    arg_types: Vec<TypeExpr>,
}

impl CtorDecl {
    /// Constructor name as written in the surface syntax.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The datatype this constructor belongs to.
    pub fn datatype(&self) -> DtId {
        self.datatype
    }

    /// Declared argument types (may mention the owning datatype's
    /// parameters through [`TypeExpr::Param`]).
    pub fn arg_types(&self) -> &[TypeExpr] {
        &self.arg_types
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }

    /// Returns `true` when no argument mentions the owning datatype —
    /// i.e. the constructor is a *base* (non-recursive) constructor.
    pub fn is_base(&self) -> bool {
        fn mentions(ty: &TypeExpr, dt: DtId) -> bool {
            match ty {
                TypeExpr::Nat | TypeExpr::Bool | TypeExpr::Param(_) => false,
                TypeExpr::App(d, args) => *d == dt || args.iter().any(|t| mentions(t, dt)),
            }
        }
        !self.arg_types.iter().any(|t| mentions(t, self.datatype))
    }
}

/// A datatype declaration.
#[derive(Clone, Debug)]
pub struct DatatypeDecl {
    name: String,
    nparams: usize,
    ctors: Vec<CtorId>,
}

impl DatatypeDecl {
    /// Datatype name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of type parameters.
    pub fn nparams(&self) -> usize {
        self.nparams
    }

    /// Constructors in declaration order.
    pub fn ctors(&self) -> &[CtorId] {
        &self.ctors
    }
}

/// A registered total first-order function, such as `plus` or list
/// append. Function calls may appear in premises and (after the
/// preprocessing of §3.1) give rise to equality constraints when they
/// appear in rule conclusions.
#[derive(Clone)]
pub struct FunDecl {
    name: String,
    arg_types: Vec<TypeExpr>,
    ret_type: TypeExpr,
    imp: FunImpl,
}

/// The implementation of a registered function: total over well-typed
/// argument tuples. `Send + Sync` so a built [`Universe`] can be shared
/// across worker threads by the parallel test runner.
pub type FunImpl = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

impl FunDecl {
    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Argument types.
    pub fn arg_types(&self) -> &[TypeExpr] {
        &self.arg_types
    }

    /// Result type.
    pub fn ret_type(&self) -> &TypeExpr {
        &self.ret_type
    }

    /// Applies the function.
    ///
    /// # Panics
    ///
    /// Implementations may panic when applied to ill-typed arguments.
    pub fn apply(&self, args: &[Value]) -> Value {
        (self.imp)(args)
    }
}

impl fmt::Debug for FunDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunDecl")
            .field("name", &self.name)
            .field("arity", &self.arg_types.len())
            .finish()
    }
}

/// Error raised by universe declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeclareError {
    /// A datatype with this name already exists.
    DuplicateDatatype(String),
    /// A constructor with this name already exists.
    DuplicateCtor(String),
    /// A function with this name already exists.
    DuplicateFun(String),
}

impl fmt::Display for DeclareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclareError::DuplicateDatatype(n) => write!(f, "duplicate datatype `{n}`"),
            DeclareError::DuplicateCtor(n) => write!(f, "duplicate constructor `{n}`"),
            DeclareError::DuplicateFun(n) => write!(f, "duplicate function `{n}`"),
        }
    }
}

impl Error for DeclareError {}

/// A registry of datatypes, constructors, and functions.
///
/// All ids handed out by a universe are only meaningful relative to that
/// universe. See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Universe {
    datatypes: Vec<DatatypeDecl>,
    ctors: Vec<CtorDecl>,
    funs: Vec<FunDecl>,
    dt_by_name: HashMap<String, DtId>,
    ctor_by_name: HashMap<String, CtorId>,
    fun_by_name: HashMap<String, FunId>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Universe {
        Universe::default()
    }

    /// Reserves a datatype id without defining constructors yet; needed
    /// for mutually recursive datatypes.
    ///
    /// # Errors
    ///
    /// Returns [`DeclareError::DuplicateDatatype`] if the name is taken.
    pub fn reserve_datatype(&mut self, name: &str, nparams: usize) -> Result<DtId, DeclareError> {
        if self.dt_by_name.contains_key(name) {
            return Err(DeclareError::DuplicateDatatype(name.to_string()));
        }
        let id = DtId::new(self.datatypes.len());
        self.datatypes.push(DatatypeDecl {
            name: name.to_string(),
            nparams,
            ctors: Vec::new(),
        });
        self.dt_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a constructor to a reserved datatype. Occurrences of the
    /// [`TypeExpr::named`] sentinel in `arg_types` are resolved to `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`DeclareError::DuplicateCtor`] if the constructor name is
    /// taken.
    pub fn define_ctor(
        &mut self,
        dt: DtId,
        name: &str,
        arg_types: Vec<TypeExpr>,
    ) -> Result<CtorId, DeclareError> {
        if self.ctor_by_name.contains_key(name) {
            return Err(DeclareError::DuplicateCtor(name.to_string()));
        }
        let arg_types = arg_types.into_iter().map(|t| resolve_self(t, dt)).collect();
        let id = CtorId::new(self.ctors.len());
        self.ctors.push(CtorDecl {
            name: name.to_string(),
            datatype: dt,
            arg_types,
        });
        self.datatypes[dt.index()].ctors.push(id);
        self.ctor_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declares a datatype and all of its constructors in one step.
    /// Occurrences of [`TypeExpr::named`] in argument types refer to the
    /// datatype being declared (self-recursion); use
    /// [`Universe::reserve_datatype`] + [`Universe::define_ctor`] for
    /// mutual recursion.
    ///
    /// # Errors
    ///
    /// Propagates duplicate-name errors.
    pub fn declare_datatype(
        &mut self,
        name: &str,
        nparams: usize,
        ctors: &[(&str, Vec<TypeExpr>)],
    ) -> Result<DtId, DeclareError> {
        let dt = self.reserve_datatype(name, nparams)?;
        for (cname, args) in ctors {
            self.define_ctor(dt, cname, args.clone())?;
        }
        Ok(dt)
    }

    /// Registers a total function.
    ///
    /// # Errors
    ///
    /// Returns [`DeclareError::DuplicateFun`] if the name is taken.
    pub fn declare_fun(
        &mut self,
        name: &str,
        arg_types: Vec<TypeExpr>,
        ret_type: TypeExpr,
        imp: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Result<FunId, DeclareError> {
        if self.fun_by_name.contains_key(name) {
            return Err(DeclareError::DuplicateFun(name.to_string()));
        }
        let id = FunId::new(self.funs.len());
        self.funs.push(FunDecl {
            name: name.to_string(),
            arg_types,
            ret_type,
            imp: Arc::new(imp),
        });
        self.fun_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a datatype declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe.
    pub fn datatype(&self, dt: DtId) -> &DatatypeDecl {
        &self.datatypes[dt.index()]
    }

    /// Looks up a constructor declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe.
    pub fn ctor(&self, ctor: CtorId) -> &CtorDecl {
        &self.ctors[ctor.index()]
    }

    /// Looks up a function declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe.
    pub fn fun(&self, fun: FunId) -> &FunDecl {
        &self.funs[fun.index()]
    }

    /// Resolves a datatype by name.
    pub fn dt_id(&self, name: &str) -> Option<DtId> {
        self.dt_by_name.get(name).copied()
    }

    /// Resolves a constructor by name.
    pub fn ctor_id(&self, name: &str) -> Option<CtorId> {
        self.ctor_by_name.get(name).copied()
    }

    /// Resolves a function by name.
    pub fn fun_id(&self, name: &str) -> Option<FunId> {
        self.fun_by_name.get(name).copied()
    }

    /// A nullary type by datatype name.
    pub fn type_named(&self, name: &str) -> Option<TypeExpr> {
        self.dt_id(name).map(TypeExpr::datatype)
    }

    /// Concrete argument types of `ctor` at the ground datatype instance
    /// `ty_args` (the applied type arguments of the owning datatype).
    pub fn ctor_arg_types(&self, ctor: CtorId, ty_args: &[TypeExpr]) -> Vec<TypeExpr> {
        self.ctor(ctor)
            .arg_types()
            .iter()
            .map(|t| t.instantiate(ty_args))
            .collect()
    }

    /// Number of datatypes.
    pub fn num_datatypes(&self) -> usize {
        self.datatypes.len()
    }

    /// Pretty-prints a value using constructor names.
    pub fn display_value<'a>(&'a self, value: &'a Value) -> DisplayValue<'a> {
        DisplayValue {
            universe: self,
            value,
        }
    }

    // ----- standard library -----

    /// The `list` datatype (`nil | cons 'a (list 'a)`), declared on first
    /// use.
    pub fn std_list(&mut self) -> DtId {
        if let Some(dt) = self.dt_id("list") {
            return dt;
        }
        let dt = self.reserve_datatype("list", 1).expect("fresh name");
        self.define_ctor(dt, "nil", vec![]).expect("fresh ctor");
        self.define_ctor(
            dt,
            "cons",
            vec![
                TypeExpr::Param(0),
                TypeExpr::App(dt, vec![TypeExpr::Param(0)]),
            ],
        )
        .expect("fresh ctor");
        dt
    }

    /// The `pair` datatype (`Pair 'a 'b`), declared on first use.
    pub fn std_pair(&mut self) -> DtId {
        if let Some(dt) = self.dt_id("pair") {
            return dt;
        }
        let dt = self.reserve_datatype("pair", 2).expect("fresh name");
        self.define_ctor(dt, "Pair", vec![TypeExpr::Param(0), TypeExpr::Param(1)])
            .expect("fresh ctor");
        dt
    }

    /// The `option` datatype (`None' | Some' 'a`), declared on first use.
    pub fn std_option(&mut self) -> DtId {
        if let Some(dt) = self.dt_id("option") {
            return dt;
        }
        let dt = self.reserve_datatype("option", 1).expect("fresh name");
        self.define_ctor(dt, "None'", vec![]).expect("fresh ctor");
        self.define_ctor(dt, "Some'", vec![TypeExpr::Param(0)])
            .expect("fresh ctor");
        dt
    }

    /// Builds a list value from the given elements.
    ///
    /// # Panics
    ///
    /// Panics if the `list` datatype has not been declared (call
    /// [`Universe::std_list`] first).
    pub fn list_value(&self, elems: impl IntoIterator<Item = Value>) -> Value {
        let nil = self.ctor_id("nil").expect("std_list declared");
        let cons = self.ctor_id("cons").expect("std_list declared");
        let elems: Vec<Value> = elems.into_iter().collect();
        let mut acc = Value::ctor(nil, vec![]);
        for v in elems.into_iter().rev() {
            acc = Value::ctor(cons, vec![v, acc]);
        }
        acc
    }

    /// Converts a list value back to a vector of elements; `None` when the
    /// value is not a list.
    pub fn list_elems(&self, mut v: &Value) -> Option<Vec<Value>> {
        let nil = self.ctor_id("nil")?;
        let cons = self.ctor_id("cons")?;
        let mut out = Vec::new();
        loop {
            let (c, args) = v.as_ctor()?;
            if c == nil {
                return Some(out);
            }
            if c != cons {
                return None;
            }
            out.push(args[0].clone());
            v = &args[1];
        }
    }

    /// Registers the standard arithmetic and list functions (`plus`,
    /// `mult`, `minus`, `max'`, `min'`, `succ`, `app`, `len`, `rev`) and
    /// returns nothing; ids can be recovered by name. Idempotent.
    pub fn std_funs(&mut self) {
        let list = self.std_list();
        let list_p = TypeExpr::App(list, vec![TypeExpr::Param(0)]);
        let nat = TypeExpr::Nat;
        let reg = |u: &mut Universe, name: &str, args: Vec<TypeExpr>, ret: TypeExpr, f: FunImpl| {
            if u.fun_id(name).is_none() {
                let id = FunId::new(u.funs.len());
                u.funs.push(FunDecl {
                    name: name.to_string(),
                    arg_types: args,
                    ret_type: ret,
                    imp: f,
                });
                u.fun_by_name.insert(name.to_string(), id);
            }
        };
        fn nat2(f: impl Fn(u64, u64) -> u64 + Send + Sync + 'static) -> FunImpl {
            Arc::new(move |args: &[Value]| {
                let a = args[0].as_nat().expect("nat argument");
                let b = args[1].as_nat().expect("nat argument");
                Value::nat(f(a, b))
            })
        }
        reg(
            self,
            "plus",
            vec![nat.clone(), nat.clone()],
            nat.clone(),
            nat2(|a, b| a.saturating_add(b)),
        );
        reg(
            self,
            "mult",
            vec![nat.clone(), nat.clone()],
            nat.clone(),
            nat2(|a, b| a.saturating_mul(b)),
        );
        reg(
            self,
            "minus",
            vec![nat.clone(), nat.clone()],
            nat.clone(),
            nat2(|a, b| a.saturating_sub(b)),
        );
        reg(
            self,
            "max'",
            vec![nat.clone(), nat.clone()],
            nat.clone(),
            nat2(u64::max),
        );
        reg(
            self,
            "min'",
            vec![nat.clone(), nat.clone()],
            nat.clone(),
            nat2(u64::min),
        );
        reg(
            self,
            "succ",
            vec![nat.clone()],
            nat.clone(),
            Arc::new(|args: &[Value]| {
                Value::nat(args[0].as_nat().expect("nat argument").saturating_add(1))
            }),
        );

        let nil = self.ctor_id("nil").expect("std_list");
        let cons = self.ctor_id("cons").expect("std_list");
        let app_imp: FunImpl = Arc::new(move |args: &[Value]| {
            fn go(cons: CtorId, a: &Value, b: &Value) -> Value {
                match a.as_ctor() {
                    Some((c, elems)) if c == cons => {
                        let rest = go(cons, &elems[1], b);
                        Value::ctor(cons, vec![elems[0].clone(), rest])
                    }
                    _ => b.clone(),
                }
            }
            go(cons, &args[0], &args[1])
        });
        reg(
            self,
            "app",
            vec![list_p.clone(), list_p.clone()],
            list_p.clone(),
            app_imp,
        );

        let len_imp: FunImpl = Arc::new(move |args: &[Value]| {
            let mut n = 0u64;
            let mut v = &args[0];
            while let Some((c, elems)) = v.as_ctor() {
                if c != cons {
                    break;
                }
                n += 1;
                v = &elems[1];
            }
            Value::nat(n)
        });
        reg(self, "len", vec![list_p.clone()], nat, len_imp);

        let rev_imp: FunImpl = Arc::new(move |args: &[Value]| {
            let mut acc = Value::ctor(nil, vec![]);
            let mut v = &args[0];
            while let Some((c, elems)) = v.as_ctor() {
                if c != cons {
                    break;
                }
                acc = Value::ctor(cons, vec![elems[0].clone(), acc]);
                v = &elems[1];
            }
            acc
        });
        reg(self, "rev", vec![list_p.clone()], list_p, rev_imp);
    }
}

fn resolve_self(ty: TypeExpr, dt: DtId) -> TypeExpr {
    match ty {
        TypeExpr::App(d, args) => {
            let d = if d.index() == SELF_SENTINEL { dt } else { d };
            TypeExpr::App(d, args.into_iter().map(|t| resolve_self(t, dt)).collect())
        }
        other => other,
    }
}

/// Helper returned by [`Universe::display_value`].
#[derive(Debug)]
pub struct DisplayValue<'a> {
    universe: &'a Universe,
    value: &'a Value,
}

impl fmt::Display for DisplayValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_value(self.value, self.universe, f, false)
    }
}

fn fmt_value(
    v: &Value,
    universe: &Universe,
    f: &mut fmt::Formatter<'_>,
    nested: bool,
) -> fmt::Result {
    match v {
        Value::Nat(n) => write!(f, "{n}"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Ctor(c, args) => {
            let name = universe.ctor(*c).name();
            if args.is_empty() {
                write!(f, "{name}")
            } else {
                if nested {
                    write!(f, "(")?;
                }
                write!(f, "{name}")?;
                for a in args.iter() {
                    write!(f, " ")?;
                    fmt_value(a, universe, f, true)?;
                }
                if nested {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut u = Universe::new();
        let t = u
            .declare_datatype(
                "color",
                0,
                &[("Red", vec![]), ("Green", vec![]), ("Blue", vec![])],
            )
            .unwrap();
        assert_eq!(u.datatype(t).name(), "color");
        assert_eq!(u.datatype(t).ctors().len(), 3);
        assert_eq!(u.dt_id("color"), Some(t));
        assert!(u.ctor(u.ctor_id("Red").unwrap()).is_base());
        assert!(u.declare_datatype("color", 0, &[]).is_err());
    }

    #[test]
    fn self_reference_resolves() {
        let mut u = Universe::new();
        let t = u
            .declare_datatype(
                "tree",
                0,
                &[
                    ("Leaf", vec![]),
                    (
                        "Node",
                        vec![
                            TypeExpr::Nat,
                            TypeExpr::named("tree"),
                            TypeExpr::named("tree"),
                        ],
                    ),
                ],
            )
            .unwrap();
        let node = u.ctor_id("Node").unwrap();
        assert_eq!(u.ctor(node).arg_types()[1], TypeExpr::datatype(t));
        assert!(!u.ctor(node).is_base());
    }

    #[test]
    fn list_round_trip() {
        let mut u = Universe::new();
        u.std_list();
        let l = u.list_value([Value::nat(1), Value::nat(2), Value::nat(3)]);
        assert_eq!(
            u.list_elems(&l),
            Some(vec![Value::nat(1), Value::nat(2), Value::nat(3)])
        );
        assert_eq!(
            u.display_value(&l).to_string(),
            "cons 1 (cons 2 (cons 3 nil))"
        );
    }

    #[test]
    fn std_funs_compute() {
        let mut u = Universe::new();
        u.std_funs();
        let plus = u.fun_id("plus").unwrap();
        assert_eq!(
            u.fun(plus).apply(&[Value::nat(2), Value::nat(3)]),
            Value::nat(5)
        );
        let app = u.fun_id("app").unwrap();
        let l1 = u.list_value([Value::nat(1)]);
        let l2 = u.list_value([Value::nat(2)]);
        let both = u.fun(app).apply(&[l1, l2]);
        assert_eq!(u.list_elems(&both).unwrap().len(), 2);
        let rev = u.fun_id("rev").unwrap();
        let l = u.list_value([Value::nat(1), Value::nat(2)]);
        let r = u.fun(rev).apply(&[l]);
        assert_eq!(u.list_elems(&r), Some(vec![Value::nat(2), Value::nat(1)]));
        let len = u.fun_id("len").unwrap();
        let l = u.list_value([Value::nat(5), Value::nat(6), Value::nat(7)]);
        assert_eq!(u.fun(len).apply(&[l]), Value::nat(3));
        // idempotent
        u.std_funs();
        assert_eq!(u.fun_id("plus"), Some(plus));
    }

    #[test]
    fn ctor_arg_types_instantiate() {
        let mut u = Universe::new();
        let list = u.std_list();
        let cons = u.ctor_id("cons").unwrap();
        let tys = u.ctor_arg_types(cons, &[TypeExpr::Nat]);
        assert_eq!(
            tys,
            vec![TypeExpr::Nat, TypeExpr::App(list, vec![TypeExpr::Nat])]
        );
    }

    #[test]
    fn mutual_recursion_via_reserve() {
        let mut u = Universe::new();
        let a = u.reserve_datatype("even_t", 0).unwrap();
        let b = u.reserve_datatype("odd_t", 0).unwrap();
        u.define_ctor(a, "EZ", vec![]).unwrap();
        u.define_ctor(a, "ES", vec![TypeExpr::datatype(b)]).unwrap();
        u.define_ctor(b, "OS", vec![TypeExpr::datatype(a)]).unwrap();
        assert!(u.ctor(u.ctor_id("ES").unwrap()).is_base()); // base w.r.t. its own datatype
        assert_eq!(
            u.ctor(u.ctor_id("OS").unwrap()).arg_types()[0],
            TypeExpr::datatype(a)
        );
    }
}
