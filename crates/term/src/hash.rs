//! A tiny multiply–rotate hasher for integer- and pointer-keyed maps.
//!
//! The std `HashMap` defaults to SipHash, whose per-probe cost dwarfs
//! the work the hot lookup paths ([`crate::intern`]'s fingerprint
//! cache, the core memo table's buckets) do around it. Their keys are
//! single machine words — addresses and already-mixed fingerprints —
//! with no exposure to attacker-chosen collisions, so an fxhash-style
//! word mixer is the right tool: one `rotate`/`xor`/`mul` per word and
//! a finishing shift that pushes the multiply's high-bit entropy back
//! into the low bits the table indexes by.

use std::hash::{BuildHasher, Hasher};

const K: u64 = 0x517C_C1B7_2722_0A95;

/// One-word-at-a-time multiply–rotate hasher. See the module docs.
#[derive(Clone, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Low bits index the table; fold the high bits down.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, w: usize) {
        self.write_u64(w as u64);
    }
}

/// Maps an already-mixed 64-bit fingerprint to one of `shards` shards
/// (`shards` must be a power of two).
///
/// The concurrent memo table shards by structural query fingerprint;
/// within a shard, the same fingerprint's *low* bits index the bucket
/// map. Selecting the shard from the low bits too would leave each
/// shard's map using only every `shards`-th bucket, so one more
/// multiply–rotate round re-mixes the word and the *high* bits pick
/// the shard.
#[inline]
pub fn shard_of(fp: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two(), "shard count must be 2^k");
    let mixed = (fp.rotate_left(5) ^ fp).wrapping_mul(K);
    ((mixed >> 32) as usize) & (shards - 1)
}

/// `BuildHasher` for [`FastHasher`] (deterministic, zero seed state).
#[derive(Clone, Default)]
pub struct FastHashBuilder;

impl BuildHasher for FastHashBuilder {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FastHasher)) -> u64 {
        let mut h = FastHashBuilder.build_hasher();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_word_sensitive() {
        assert_eq!(hash_of(|h| h.write_u64(7)), hash_of(|h| h.write_u64(7)));
        assert_ne!(hash_of(|h| h.write_u64(7)), hash_of(|h| h.write_u64(8)));
        assert_ne!(
            hash_of(|h| h.write_u64(7)),
            hash_of(|h| {
                h.write_u64(7);
                h.write_u64(7);
            })
        );
    }

    #[test]
    fn aligned_pointers_spread_across_low_bits() {
        // Addresses differ only in a few middle bits; the table indexes
        // by low bits, so those must vary.
        let mut low = std::collections::HashSet::new();
        for i in 0..64usize {
            low.insert(hash_of(|h| h.write_usize(0x7F00_0000_0000 + i * 64)) & 0x3F);
        }
        assert!(
            low.len() > 32,
            "only {} distinct low-bit patterns",
            low.len()
        );
    }

    #[test]
    fn shards_spread_and_stay_deterministic() {
        assert_eq!(shard_of(42, 64), shard_of(42, 64));
        let mut seen = std::collections::HashSet::new();
        for fp in 0..256u64 {
            let s = shard_of(fp, 64);
            assert!(s < 64);
            seen.insert(s);
        }
        assert!(seen.len() > 32, "only {} shards used", seen.len());
        // Fingerprints that collide in their low bucket-index bits must
        // still spread across shards.
        let mut low_collide = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_collide.insert(shard_of(i << 32, 64));
        }
        assert!(low_collide.len() > 16, "{}", low_collide.len());
    }

    #[test]
    fn byte_writes_match_word_writes() {
        assert_eq!(
            hash_of(|h| h.write(&42u64.to_le_bytes())),
            hash_of(|h| h.write_u64(42))
        );
    }
}
