//! Property-based tests (proptest) for the reference semantics: the
//! searcher, the prover, and the kernel must agree with each other and
//! with native definitions.

use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_semantics::{ProofSystem, Tv};
use indrel_term::{Universe, Value};
use proptest::prelude::*;
use std::cell::OnceCell;

thread_local! {
    static SYS: OnceCell<(ProofSystem, indrel_term::RelId, indrel_term::RelId)> =
        const { OnceCell::new() };
}

fn with_sys<R>(f: impl FnOnce(&ProofSystem, indrel_term::RelId, indrel_term::RelId) -> R) -> R {
    SYS.with(|cell| {
        let (sys, le, add3) = cell.get_or_init(|| {
            let mut u = Universe::new();
            u.std_list();
            u.std_funs();
            let mut env = RelEnv::new();
            parse_program(
                &mut u,
                &mut env,
                r"
                rel le : nat nat :=
                | le_n : forall n, le n n
                | le_S : forall n m, le n m -> le n (S m)
                .
                rel add3 : nat nat nat :=
                | add_0 : forall m, add3 0 m m
                | add_S : forall n m p, add3 n m p -> add3 (S n) m (S p)
                .
                ",
            )
            .unwrap();
            let le = env.rel_id("le").unwrap();
            let add3 = env.rel_id("add3").unwrap();
            (ProofSystem::new(u, env).unwrap(), le, add3)
        });
        f(sys, *le, *add3)
    })
}

proptest! {
    // The searcher decides le correctly given enough depth.
    #[test]
    fn holds_matches_native_le(n in 0u64..25, m in 0u64..25) {
        with_sys(|sys, le, _| {
            let depth = n.max(m) + 2;
            let tv = sys.holds(le, &[Value::nat(n), Value::nat(m)], depth);
            prop_assert_eq!(tv, Tv::from(n <= m));
            Ok(())
        })?;
    }

    // prove() finds a tree exactly when holds() says True, and the
    // kernel accepts every tree prove() builds.
    #[test]
    fn prove_agrees_with_holds_and_kernel(n in 0u64..12, m in 0u64..12, p in 0u64..20) {
        with_sys(|sys, _, add3| {
            let args = [Value::nat(n), Value::nat(m), Value::nat(p)];
            let depth = n + 3;
            let tv = sys.holds(add3, &args, depth);
            let proof = sys.prove(add3, &args, depth);
            match tv {
                Tv::True => {
                    let proof = proof.expect("holds=True must have a tree");
                    prop_assert!(sys.check_proof(&proof).is_ok());
                    prop_assert_eq!(sys.conclusion_args(&proof), args.to_vec());
                    prop_assert_eq!(n + m == p, true);
                }
                Tv::False => {
                    prop_assert!(proof.is_none());
                    prop_assert_eq!(n + m == p, false);
                }
                Tv::Unknown => {} // depth-limited; nothing to compare
            }
            Ok(())
        })?;
    }

    // Depth monotonicity: a definite Tv never flips with more depth.
    #[test]
    fn holds_is_depth_monotonic(n in 0u64..10, m in 0u64..10, d1 in 1u64..8, extra in 0u64..8) {
        with_sys(|sys, le, _| {
            let args = [Value::nat(n), Value::nat(m)];
            let first = sys.holds(le, &args, d1);
            if first != Tv::Unknown {
                prop_assert_eq!(sys.holds(le, &args, d1 + extra), first);
            }
            Ok(())
        })?;
    }

    // Proof sizes are linear in the witness for add3 (structural sanity
    // of the tree builder).
    #[test]
    fn proof_size_tracks_derivation_length(n in 0u64..10, m in 0u64..10) {
        with_sys(|sys, _, add3| {
            let args = [Value::nat(n), Value::nat(m), Value::nat(n + m)];
            let proof = sys.prove(add3, &args, n + 2).expect("derivable");
            prop_assert_eq!(proof.size(), n + 1);
            prop_assert_eq!(proof.height(), n + 1);
            Ok(())
        })?;
    }
}
