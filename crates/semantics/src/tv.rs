//! The three-valued truth domain of bounded search.

/// Bounded-search truth value.
///
/// `False` is conclusive relative to the search bounds: every branch was
/// exhausted without a derivation and without hitting a bound. When any
/// branch was cut off, the search answers [`Tv::Unknown`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tv {
    /// A derivation exists within the bounds.
    True,
    /// No derivation exists (conclusively, within value bounds).
    False,
    /// The search was cut off before reaching a conclusion.
    Unknown,
}

impl Tv {
    /// Three-valued conjunction (for premises).
    pub fn and(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::False, _) | (_, Tv::False) => Tv::False,
            (Tv::Unknown, _) | (_, Tv::Unknown) => Tv::Unknown,
            (Tv::True, Tv::True) => Tv::True,
        }
    }

    /// Three-valued disjunction (for alternative rules/witnesses).
    pub fn or(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::True, _) | (_, Tv::True) => Tv::True,
            (Tv::Unknown, _) | (_, Tv::Unknown) => Tv::Unknown,
            (Tv::False, Tv::False) => Tv::False,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)] // deliberate Kleene negation, not std::ops::Not
    pub fn not(self) -> Tv {
        match self {
            Tv::True => Tv::False,
            Tv::False => Tv::True,
            Tv::Unknown => Tv::Unknown,
        }
    }

    /// Conversion from a checker result (`Option<bool>`).
    pub fn from_check(r: Option<bool>) -> Tv {
        match r {
            Some(true) => Tv::True,
            Some(false) => Tv::False,
            None => Tv::Unknown,
        }
    }

    /// Conversion to a checker result.
    pub fn to_check(self) -> Option<bool> {
        match self {
            Tv::True => Some(true),
            Tv::False => Some(false),
            Tv::Unknown => None,
        }
    }

    /// `true` for [`Tv::True`].
    pub fn is_true(self) -> bool {
        self == Tv::True
    }
}

impl From<bool> for Tv {
    fn from(b: bool) -> Tv {
        if b {
            Tv::True
        } else {
            Tv::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        assert_eq!(Tv::True.and(Tv::True), Tv::True);
        assert_eq!(Tv::True.and(Tv::Unknown), Tv::Unknown);
        assert_eq!(Tv::Unknown.and(Tv::False), Tv::False);
        assert_eq!(Tv::False.and(Tv::True), Tv::False);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Tv::False.or(Tv::False), Tv::False);
        assert_eq!(Tv::False.or(Tv::Unknown), Tv::Unknown);
        assert_eq!(Tv::Unknown.or(Tv::True), Tv::True);
    }

    #[test]
    fn not_involutive_on_definite() {
        assert_eq!(Tv::True.not().not(), Tv::True);
        assert_eq!(Tv::False.not().not(), Tv::False);
        assert_eq!(Tv::Unknown.not(), Tv::Unknown);
    }

    #[test]
    fn check_round_trip() {
        for tv in [Tv::True, Tv::False, Tv::Unknown] {
            assert_eq!(Tv::from_check(tv.to_check()), tv);
        }
        assert_eq!(Tv::from(true), Tv::True);
        assert!(Tv::True.is_true());
        assert!(!Tv::Unknown.is_true());
    }
}
