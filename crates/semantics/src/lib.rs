//! Reference semantics for inductive relations.
//!
//! An inductive relation *holds* on ground arguments exactly when a
//! finite derivation tree exists. This crate implements that meaning
//! directly — a bounded proof search that is deliberately independent of
//! the derivation algorithm under test — and serves two purposes:
//!
//! * it is the **ground truth** against which `indrel-validate` checks
//!   the soundness and completeness of derived checkers and producers
//!   (the role played by the inductive relation itself in the paper's
//!   Ltac2 translation-validation proofs, §5), and
//! * it constructs explicit **derivation trees** ([`Proof`]) with a
//!   structural [`ProofSystem::check_proof`] "kernel", the substrate of
//!   the proof-by-reflection case study (§6.3).
//!
//! Search is bounded in two directions: `depth` bounds derivation-tree
//! height, and a `value_bound` bounds the size of candidate witnesses
//! for existentially quantified variables. Within those bounds the
//! search is exhaustive, so `Tv::False` is conclusive *relative to the
//! bounds* only when no branch was cut off — otherwise [`Tv::Unknown`]
//! is returned, mirroring the three-valued discipline of derived
//! checkers.
//!
//! # Example
//!
//! ```
//! use indrel_semantics::{ProofSystem, Tv};
//! use indrel_rel::{parse::parse_program, RelEnv};
//! use indrel_term::{Universe, Value};
//!
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, r"
//!     rel even' : nat :=
//!     | even_0  : even' 0
//!     | even_SS : forall n, even' n -> even' (S (S n))
//!     .
//! ").unwrap();
//! let even = env.rel_id("even'").unwrap();
//! let sys = ProofSystem::new(u, env).unwrap();
//! assert_eq!(sys.holds(even, &[Value::nat(6)], 10), Tv::True);
//! assert_eq!(sys.holds(even, &[Value::nat(5)], 10), Tv::False);
//! let proof = sys.prove(even, &[Value::nat(6)], 10).unwrap();
//! assert!(sys.check_proof(&proof).is_ok());
//! ```

#![warn(missing_docs)]

pub mod proof;
pub mod search;
pub mod tv;

pub use proof::{Proof, ProofError};
pub use search::ProofSystem;
pub use tv::Tv;
