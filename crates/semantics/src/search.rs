//! Bounded proof search over preprocessed relations.

use crate::proof::Proof;
use crate::tv::Tv;
use indrel_rel::preprocess::preprocess_relation;
use indrel_rel::{Premise, RelEnv, Relation};
use indrel_term::enumerate::values_up_to;
use indrel_term::{Env, RelId, TermExpr, TypeExpr, Universe, Value, VarId};

/// The reference proof-search engine.
///
/// Construction preprocesses every relation (non-linear conclusions and
/// conclusion function calls become equality premises) so that matching
/// a ground argument tuple against a rule conclusion is plain pattern
/// matching. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct ProofSystem {
    universe: Universe,
    env: RelEnv,
    prepared: Vec<Relation>,
    value_bound: u64,
}

impl ProofSystem {
    /// Builds a proof system over the given universe and relations.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing/type-inference errors (as strings, to
    /// keep this crate independent of the deriver's error type).
    pub fn new(universe: Universe, env: RelEnv) -> Result<ProofSystem, String> {
        let mut prepared = Vec::with_capacity(env.len());
        for (_, relation) in env.iter() {
            let (p, _) =
                preprocess_relation(&universe, &env, relation).map_err(|e| e.to_string())?;
            prepared.push(p);
        }
        Ok(ProofSystem {
            universe,
            env,
            prepared,
            value_bound: 6,
        })
    }

    /// Sets the size bound for existential-witness enumeration
    /// (default 6).
    pub fn set_value_bound(&mut self, bound: u64) {
        self.value_bound = bound;
    }

    /// The universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The relation environment.
    pub fn env(&self) -> &RelEnv {
        &self.env
    }

    /// The preprocessed form of `rel` used by search and proof checking.
    pub fn prepared(&self, rel: RelId) -> &Relation {
        &self.prepared[rel.index()]
    }

    /// Does `rel args` hold, searching derivations of height at most
    /// `depth`?
    pub fn holds(&self, rel: RelId, args: &[Value], depth: u64) -> Tv {
        if depth == 0 {
            return Tv::Unknown;
        }
        let relation = &self.prepared[rel.index()];
        let mut acc = Tv::False;
        for rule in relation.rules() {
            let mut env = Env::with_slots(rule.num_vars());
            if !match_conclusion(rule.conclusion(), args, &mut env) {
                continue;
            }
            let r = self.premises_hold(rule, 0, &mut env, depth);
            acc = acc.or(r);
            if acc == Tv::True {
                return Tv::True;
            }
        }
        acc
    }

    fn premises_hold(&self, rule: &indrel_rel::Rule, idx: usize, env: &mut Env, depth: u64) -> Tv {
        let Some(premise) = rule.premises().get(idx) else {
            return Tv::True;
        };
        // Fast path: a positive equality with one side evaluable and the
        // other a single unbound variable binds directly.
        if let Premise::Eq {
            lhs,
            rhs,
            negated: false,
        } = premise
        {
            if let Some((var, val)) = solve_binding(lhs, rhs, env, &self.universe) {
                env.bind(var, val);
                let r = self.premises_hold(rule, idx + 1, env, depth);
                env.unbind(var);
                return r;
            }
        }
        // Enumerate any remaining unbound variables of this premise.
        let unbound: Vec<VarId> = premise
            .variables()
            .into_iter()
            .filter(|v| env.get(*v).is_none())
            .collect();
        if let Some(&var) = unbound.first() {
            let Some(ty) = rule.var_types()[var.index()].clone() else {
                // Untypeable witness: cannot search conclusively.
                return Tv::Unknown;
            };
            let mut acc = Tv::False;
            for candidate in self.candidates(&ty) {
                env.bind(var, candidate);
                let r = self.premises_hold(rule, idx, env, depth);
                acc = acc.or(r);
                if acc == Tv::True {
                    env.unbind(var);
                    return Tv::True;
                }
            }
            env.unbind(var);
            // The witness space was truncated at `value_bound`, so a
            // negative result is only conclusive up to that bound; we
            // treat the bound as part of the ground-truth domain.
            return acc;
        }
        let head = match premise {
            Premise::Rel { rel, args, negated } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(env, &self.universe).expect("premise vars bound"))
                    .collect();
                let r = self.holds(*rel, &vals, depth - 1);
                if *negated {
                    r.not()
                } else {
                    r
                }
            }
            Premise::Eq { lhs, rhs, negated } => {
                let l = lhs.eval(env, &self.universe).expect("premise vars bound");
                let r = rhs.eval(env, &self.universe).expect("premise vars bound");
                Tv::from((l == r) != *negated)
            }
        };
        match head {
            Tv::False => Tv::False,
            Tv::Unknown => {
                // Continue to detect a conclusive False later on.
                let rest = self.premises_hold(rule, idx + 1, env, depth);
                Tv::Unknown.and(rest)
            }
            Tv::True => self.premises_hold(rule, idx + 1, env, depth),
        }
    }

    /// Constructs a derivation tree for `rel args` of height at most
    /// `depth`, if one exists within the bounds. This is the analogue
    /// of building a proof term by repeated `eapply` (§6.3).
    pub fn prove(&self, rel: RelId, args: &[Value], depth: u64) -> Option<Proof> {
        if depth == 0 {
            return None;
        }
        let relation = &self.prepared[rel.index()];
        for (rule_index, rule) in relation.rules().iter().enumerate() {
            let mut env = Env::with_slots(rule.num_vars());
            if !match_conclusion(rule.conclusion(), args, &mut env) {
                continue;
            }
            if let Some(subproofs) = self.prove_premises(rule, 0, &mut env, depth) {
                let bindings = (0..rule.num_vars())
                    .map(|i| env.get(VarId::new(i)).cloned())
                    .collect();
                return Some(Proof {
                    rel,
                    rule_index,
                    bindings,
                    subproofs,
                });
            }
        }
        None
    }

    fn prove_premises(
        &self,
        rule: &indrel_rel::Rule,
        idx: usize,
        env: &mut Env,
        depth: u64,
    ) -> Option<Vec<Proof>> {
        let Some(premise) = rule.premises().get(idx) else {
            return Some(Vec::new());
        };
        if let Premise::Eq {
            lhs,
            rhs,
            negated: false,
        } = premise
        {
            if let Some((var, val)) = solve_binding(lhs, rhs, env, &self.universe) {
                env.bind(var, val);
                match self.prove_premises(rule, idx + 1, env, depth) {
                    Some(rest) => return Some(rest),
                    None => {
                        env.unbind(var);
                        return None;
                    }
                }
            }
        }
        let unbound: Vec<VarId> = premise
            .variables()
            .into_iter()
            .filter(|v| env.get(*v).is_none())
            .collect();
        if let Some(&var) = unbound.first() {
            let ty = rule.var_types()[var.index()].clone()?;
            for candidate in self.candidates(&ty) {
                env.bind(var, candidate);
                if let Some(proofs) = self.prove_premises(rule, idx, env, depth) {
                    return Some(proofs);
                }
            }
            env.unbind(var);
            return None;
        }
        match premise {
            Premise::Rel {
                rel: q,
                args,
                negated,
            } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(env, &self.universe).expect("premise vars bound"))
                    .collect();
                if *negated {
                    // Proof objects carry no refutation evidence; a
                    // negated premise is search-checked but contributes
                    // no subtree.
                    if self.holds(*q, &vals, depth - 1) != Tv::False {
                        return None;
                    }
                    self.prove_premises(rule, idx + 1, env, depth)
                } else {
                    let sub = self.prove(*q, &vals, depth - 1)?;
                    let mut rest = self.prove_premises(rule, idx + 1, env, depth)?;
                    rest.insert(0, sub);
                    Some(rest)
                }
            }
            Premise::Eq { lhs, rhs, negated } => {
                let l = lhs.eval(env, &self.universe).expect("premise vars bound");
                let r = rhs.eval(env, &self.universe).expect("premise vars bound");
                if (l == r) == *negated {
                    return None;
                }
                self.prove_premises(rule, idx + 1, env, depth)
            }
        }
    }

    fn candidates(&self, ty: &TypeExpr) -> Vec<Value> {
        values_up_to(&self.universe, ty, self.value_bound)
    }
}

/// Matches ground values against linear constructor-term conclusions.
fn match_conclusion(conclusion: &[TermExpr], args: &[Value], env: &mut Env) -> bool {
    debug_assert_eq!(conclusion.len(), args.len());
    for (e, v) in conclusion.iter().zip(args) {
        let Some(pat) = e.to_pattern() else {
            return false;
        };
        if !pat.matches(v, env) {
            return false;
        }
    }
    true
}

/// If the equality binds a single unbound variable from an evaluable
/// side, returns the binding.
fn solve_binding(
    lhs: &TermExpr,
    rhs: &TermExpr,
    env: &Env,
    universe: &Universe,
) -> Option<(VarId, Value)> {
    let try_dir = |var_side: &TermExpr, val_side: &TermExpr| -> Option<(VarId, Value)> {
        if let TermExpr::Var(x) = var_side {
            if env.get(*x).is_none() {
                if let Some(v) = val_side.eval(env, universe) {
                    return Some((*x, v));
                }
            }
        }
        None
    };
    try_dir(lhs, rhs).or_else(|| try_dir(rhs, lhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_rel::parse::parse_program;

    fn system(src: &str) -> (ProofSystem, Vec<RelId>) {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let mut env = RelEnv::new();
        let out = parse_program(&mut u, &mut env, src).unwrap();
        let ids = out
            .relations
            .iter()
            .map(|n| env.rel_id(n).unwrap())
            .collect();
        (ProofSystem::new(u, env).unwrap(), ids)
    }

    #[test]
    fn le_search() {
        let (sys, ids) = system(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
        );
        let le = ids[0];
        assert_eq!(sys.holds(le, &[Value::nat(2), Value::nat(5)], 10), Tv::True);
        assert_eq!(
            sys.holds(le, &[Value::nat(5), Value::nat(2)], 10),
            Tv::False
        );
        assert_eq!(
            sys.holds(le, &[Value::nat(0), Value::nat(9)], 3),
            Tv::Unknown
        );
    }

    #[test]
    fn square_of_search_handles_function_calls() {
        let (sys, ids) = system(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
        );
        let sq = ids[0];
        assert_eq!(sys.holds(sq, &[Value::nat(3), Value::nat(9)], 3), Tv::True);
        assert_eq!(sys.holds(sq, &[Value::nat(3), Value::nat(8)], 3), Tv::False);
    }

    #[test]
    fn existential_witnesses_are_searched() {
        let (sys, ids) = system(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .
              rel between : nat nat :=
              | b : forall n m p, le n m -> le (S m) p -> between n p
              .",
        );
        let between = ids[1];
        assert_eq!(
            sys.holds(between, &[Value::nat(1), Value::nat(3)], 10),
            Tv::True
        );
        assert_eq!(
            sys.holds(between, &[Value::nat(3), Value::nat(1)], 10),
            Tv::False
        );
    }

    #[test]
    fn negated_premises_search() {
        let (sys, ids) = system(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .
              rel odd' : nat :=
              | odd : forall n, ~ (even' n) -> odd' n
              .",
        );
        let odd = ids[1];
        assert_eq!(sys.holds(odd, &[Value::nat(3)], 10), Tv::True);
        assert_eq!(sys.holds(odd, &[Value::nat(4)], 10), Tv::False);
    }

    #[test]
    fn zero_relation_is_unknown_for_positives() {
        let (sys, ids) = system(
            r"rel zero : nat :=
              | Zero : zero 0
              | NonZero : forall n, zero (S n) -> zero n
              .",
        );
        let zero = ids[0];
        assert_eq!(sys.holds(zero, &[Value::nat(0)], 5), Tv::True);
        assert_eq!(sys.holds(zero, &[Value::nat(2)], 5), Tv::Unknown);
    }

    #[test]
    fn prove_builds_checkable_trees() {
        let (sys, ids) = system(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
        );
        let le = ids[0];
        let proof = sys.prove(le, &[Value::nat(1), Value::nat(4)], 10).unwrap();
        assert!(sys.check_proof(&proof).is_ok());
        // height: le_S applied 3 times over le_n
        assert_eq!(proof.height(), 4);
        assert!(sys.prove(le, &[Value::nat(4), Value::nat(1)], 10).is_none());
    }
}
