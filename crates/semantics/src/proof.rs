//! Explicit derivation trees and the structural proof "kernel".
//!
//! A [`Proof`] is the analogue of a Coq proof term for an inductive
//! predicate: a tree of rule applications, each node carrying the
//! witness bindings for the rule's universally quantified variables.
//! [`ProofSystem::check_proof`] plays the role of the kernel's type
//! checker: it re-matches every node against its rule and structurally
//! compares premise instantiations with sub-proof conclusions — the
//! honest O(size) comparisons that make large proof terms expensive to
//! check (§6.3).

use crate::search::ProofSystem;
use crate::tv::Tv;
use indrel_rel::Premise;
use indrel_term::{Env, RelId, Value, VarId};
use std::error::Error;
use std::fmt;

/// A derivation tree for `rel args`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// The relation concluded.
    pub rel: RelId,
    /// Index of the applied rule in the *preprocessed* relation.
    pub rule_index: usize,
    /// Witness values for the rule's variables (slot-indexed; `None`
    /// for variables the derivation never needed).
    pub bindings: Vec<Option<Value>>,
    /// Sub-proofs for the positive relational premises, in premise
    /// order.
    pub subproofs: Vec<Proof>,
}

impl Proof {
    /// Number of nodes in the tree.
    pub fn size(&self) -> u64 {
        1 + self.subproofs.iter().map(Proof::size).sum::<u64>()
    }

    /// Height of the tree.
    pub fn height(&self) -> u64 {
        1 + self.subproofs.iter().map(Proof::height).max().unwrap_or(0)
    }
}

/// Why a proof failed to check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A node refers to a rule index that does not exist.
    NoSuchRule {
        /// Relation name.
        rel: String,
        /// The bad index.
        rule_index: usize,
    },
    /// A rule variable needed by the rule has no binding.
    MissingBinding {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Variable name.
        var: String,
    },
    /// A premise's instantiation does not match the sub-proof's
    /// conclusion (or a sub-proof proves the wrong relation).
    PremiseMismatch {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Premise index.
        premise: usize,
    },
    /// An equality premise is violated by the bindings.
    EqualityViolated {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Premise index.
        premise: usize,
    },
    /// A negated premise could not be refuted by bounded search.
    NegationUnverified {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Premise index.
        premise: usize,
    },
    /// The node has the wrong number of sub-proofs.
    SubproofCount {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NoSuchRule { rel, rule_index } => {
                write!(f, "`{rel}` has no rule #{rule_index}")
            }
            ProofError::MissingBinding { rel, rule, var } => {
                write!(f, "`{rel}.{rule}`: variable `{var}` has no witness")
            }
            ProofError::PremiseMismatch { rel, rule, premise } => {
                write!(
                    f,
                    "`{rel}.{rule}`: premise #{premise} does not match its sub-proof"
                )
            }
            ProofError::EqualityViolated { rel, rule, premise } => {
                write!(f, "`{rel}.{rule}`: equality premise #{premise} violated")
            }
            ProofError::NegationUnverified { rel, rule, premise } => {
                write!(f, "`{rel}.{rule}`: negated premise #{premise} not refuted")
            }
            ProofError::SubproofCount {
                rel,
                rule,
                expected,
                found,
            } => write!(
                f,
                "`{rel}.{rule}`: expected {expected} sub-proofs, found {found}"
            ),
        }
    }
}

impl Error for ProofError {}

impl ProofSystem {
    /// The conclusion arguments a proof node establishes, computed from
    /// its bindings.
    ///
    /// # Panics
    ///
    /// Panics on malformed proofs (check first).
    pub fn conclusion_args(&self, proof: &Proof) -> Vec<Value> {
        let rule = &self.prepared(proof.rel).rules()[proof.rule_index];
        let env = bindings_env(proof);
        rule.conclusion()
            .iter()
            .map(|e| {
                e.eval(&env, self.universe())
                    .expect("proof bindings cover the conclusion")
            })
            .collect()
    }

    /// Structurally checks a derivation tree, the way a proof kernel
    /// re-typechecks a proof term.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProofError`] found.
    pub fn check_proof(&self, proof: &Proof) -> Result<(), ProofError> {
        let relation = self.prepared(proof.rel);
        let rel_name = relation.name().to_string();
        let Some(rule) = relation.rules().get(proof.rule_index) else {
            return Err(ProofError::NoSuchRule {
                rel: rel_name,
                rule_index: proof.rule_index,
            });
        };
        let env = bindings_env(proof);
        // Every variable occurring in the conclusion or premises must
        // have a witness.
        let mut needed: Vec<VarId> = Vec::new();
        for e in rule.conclusion() {
            needed.extend(e.variables());
        }
        for p in rule.premises() {
            needed.extend(p.variables());
        }
        for v in needed {
            if env.get(v).is_none() {
                return Err(ProofError::MissingBinding {
                    rel: rel_name,
                    rule: rule.name().to_string(),
                    var: rule.var_names()[v.index()].clone(),
                });
            }
        }
        let positive: Vec<usize> = rule
            .premises()
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Premise::Rel { negated: false, .. }))
            .map(|(i, _)| i)
            .collect();
        if positive.len() != proof.subproofs.len() {
            return Err(ProofError::SubproofCount {
                rel: rel_name,
                rule: rule.name().to_string(),
                expected: positive.len(),
                found: proof.subproofs.len(),
            });
        }
        let mut sub = proof.subproofs.iter();
        for (i, premise) in rule.premises().iter().enumerate() {
            match premise {
                Premise::Rel {
                    rel: q,
                    args,
                    negated: false,
                } => {
                    let subproof = sub.next().expect("counted above");
                    if subproof.rel != *q {
                        return Err(ProofError::PremiseMismatch {
                            rel: rel_name,
                            rule: rule.name().to_string(),
                            premise: i,
                        });
                    }
                    let expected: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(&env, self.universe()).expect("bindings checked"))
                        .collect();
                    let actual = self.conclusion_args(subproof);
                    // Honest structural comparison, as a kernel would
                    // perform (no pointer-equality shortcuts).
                    let eq = expected.len() == actual.len()
                        && expected
                            .iter()
                            .zip(&actual)
                            .all(|(a, b)| a.structurally_equal(b));
                    if !eq {
                        return Err(ProofError::PremiseMismatch {
                            rel: rel_name,
                            rule: rule.name().to_string(),
                            premise: i,
                        });
                    }
                    self.check_proof(subproof)?;
                }
                Premise::Rel {
                    rel: q,
                    args,
                    negated: true,
                } => {
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(&env, self.universe()).expect("bindings checked"))
                        .collect();
                    if self.holds(*q, &vals, 16) != Tv::False {
                        return Err(ProofError::NegationUnverified {
                            rel: rel_name,
                            rule: rule.name().to_string(),
                            premise: i,
                        });
                    }
                }
                Premise::Eq { lhs, rhs, negated } => {
                    let l = lhs.eval(&env, self.universe()).expect("bindings checked");
                    let r = rhs.eval(&env, self.universe()).expect("bindings checked");
                    if l.structurally_equal(&r) == *negated {
                        return Err(ProofError::EqualityViolated {
                            rel: rel_name,
                            rule: rule.name().to_string(),
                            premise: i,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

fn bindings_env(proof: &Proof) -> Env {
    let mut env = Env::with_slots(proof.bindings.len());
    for (i, b) in proof.bindings.iter().enumerate() {
        if let Some(v) = b {
            env.bind(VarId::new(i), v.clone());
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::Universe;

    fn system(src: &str) -> (ProofSystem, Vec<RelId>) {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let mut env = RelEnv::new();
        let out = parse_program(&mut u, &mut env, src).unwrap();
        let ids = out
            .relations
            .iter()
            .map(|n| env.rel_id(n).unwrap())
            .collect();
        (ProofSystem::new(u, env).unwrap(), ids)
    }

    #[test]
    fn checks_even_proofs() {
        let (sys, ids) = system(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let even = ids[0];
        let proof = sys.prove(even, &[Value::nat(8)], 10).unwrap();
        assert_eq!(proof.size(), 5);
        assert_eq!(proof.height(), 5);
        assert!(sys.check_proof(&proof).is_ok());
        assert_eq!(sys.conclusion_args(&proof), vec![Value::nat(8)]);
    }

    #[test]
    fn rejects_tampered_proofs() {
        let (sys, ids) = system(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let even = ids[0];
        let mut proof = sys.prove(even, &[Value::nat(4)], 10).unwrap();
        // Tamper: claim the sub-derivation concludes even' 3.
        proof.subproofs[0].bindings = vec![Some(Value::nat(1))];
        assert!(matches!(
            sys.check_proof(&proof),
            Err(ProofError::PremiseMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_subproof_count() {
        let (sys, ids) = system(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let even = ids[0];
        let mut proof = sys.prove(even, &[Value::nat(2)], 10).unwrap();
        proof.subproofs.clear();
        assert!(matches!(
            sys.check_proof(&proof),
            Err(ProofError::SubproofCount { .. })
        ));
    }

    #[test]
    fn rejects_missing_bindings() {
        let (sys, ids) = system(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let even = ids[0];
        let mut proof = sys.prove(even, &[Value::nat(2)], 10).unwrap();
        proof.bindings = vec![None];
        assert!(matches!(
            sys.check_proof(&proof),
            Err(ProofError::MissingBinding { .. })
        ));
    }

    #[test]
    fn equality_premises_are_checked() {
        let (sys, ids) = system(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
        );
        let sq = ids[0];
        let proof = sys.prove(sq, &[Value::nat(4), Value::nat(16)], 3).unwrap();
        assert!(sys.check_proof(&proof).is_ok());
        let mut bad = proof.clone();
        // Tamper with the hoisted `m` witness.
        for b in bad.bindings.iter_mut() {
            if *b == Some(Value::nat(16)) {
                *b = Some(Value::nat(17));
            }
        }
        assert!(sys.check_proof(&bad).is_err());
    }
}
