//! The information-flow-control case study (§6.2, after "Testing
//! Noninterference, Quickly").
//!
//! A small abstract stack machine with labeled data: every value
//! carries a security label (`L`ow or `H`igh); instructions propagate
//! labels by joining the labels of their operands. The property under
//! test is a form of *end-to-end noninterference*: running the same
//! program on two machines whose states agree on all `L`-labeled data
//! (they are **indistinguishable**) must end in indistinguishable
//! states.
//!
//! The inductive specification is the indistinguishability relation
//! (`indist`, built from `indist_atom` over `indist_list`), from which
//! the framework derives:
//!
//! * the **checker** compared against a handwritten one in Figure 3,
//! * a **variation generator** (`indist` with the second machine as
//!   output): given a machine, produce an indistinguishable one — the
//!   "generation by variation" of the original IFC testing papers.
//!
//! The suite's mutation is a label-propagation bug: `Add` takes the
//! label of its first operand instead of the join, leaking `H` data
//! into `L` results.
//!
//! # Example
//!
//! ```
//! use indrel_ifc::{Ifc, Lab, Instr, Mutation};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let ifc = Ifc::new();
//! let mut rng = SmallRng::seed_from_u64(1);
//! let (prog, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
//! assert!(ifc.handwritten_indist(&m1, &m2));
//! // End-to-end noninterference: never `Some(false)` for the correct
//! // machine (`None` discards runs that got stuck).
//! assert_ne!(ifc.noninterference_holds(&prog, &m1, &m2, Mutation::None), Some(false));
//! ```

use indrel_core::{Library, LibraryBuilder, Mode};
use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_term::{CtorId, RelId, Universe, Value};
use rand::Rng as _;

/// A security label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lab {
    /// Public.
    L,
    /// Secret.
    H,
}

impl Lab {
    /// Label join (least upper bound).
    pub fn join(self, other: Lab) -> Lab {
        if self == Lab::H || other == Lab::H {
            Lab::H
        } else {
            Lab::L
        }
    }
}

/// A labeled value.
pub type Atom = (u64, Lab);

/// Machine instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// Push a labeled constant.
    Push(u64, Lab),
    /// Discard the stack top.
    Pop,
    /// Pop two atoms, push their sum with the joined label.
    Add,
    /// Pop an address, push the memory cell it names (label joined with
    /// the address label).
    Load,
    /// Pop an address and a value, store the value (label joined with
    /// the address label).
    Store,
    /// Do nothing.
    Noop,
    /// Stop.
    Halt,
}

/// A machine state: program counter, stack, memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Machine {
    /// Program counter.
    pub pc: u64,
    /// The stack (top first).
    pub stack: Vec<Atom>,
    /// The memory.
    pub mem: Vec<Atom>,
}

/// The result of one machine step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// The instruction executed; the machine continues.
    Running,
    /// The machine halted cleanly (`Halt` or past the program's end).
    Halted,
    /// The machine got stuck (stack underflow, empty memory, or a
    /// forbidden sensitive upgrade).
    Stuck,
}

/// Which label-propagation mutation the simulator applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mutation {
    /// Correct propagation.
    #[default]
    None,
    /// `Add` takes the first operand's label instead of the join.
    AddNoJoin,
    /// `Load` ignores the address label.
    LoadNoJoin,
}

/// The specification, in the surface syntax.
pub const IFC_SOURCE: &str = r"
data lab := L | H .
data atom := Atom nat lab .
data mach := M nat (list atom) (list atom) .
rel lab_le : lab lab :=
| LL : lab_le L L
| LH : lab_le L H
| HH : lab_le H H
.
rel indist_atom : atom atom :=
| ia_high : forall n m, indist_atom (Atom n H) (Atom m H)
| ia_low  : forall n, indist_atom (Atom n L) (Atom n L)
.
rel indist_list : (list atom) (list atom) :=
| il_nil  : indist_list nil nil
| il_cons : forall a1 a2 l1 l2,
    indist_atom a1 a2 -> indist_list l1 l2 ->
    indist_list (cons a1 l1) (cons a2 l2)
.
rel indist : mach mach :=
| im : forall pc s1 s2 m1 m2,
    indist_list s1 s2 -> indist_list m1 m2 ->
    indist (M pc s1 m1) (M pc s2 m2)
.
";

/// The IFC case study.
#[derive(Clone)]
pub struct Ifc {
    lib: Library,
    indist: RelId,
    c_l: CtorId,
    c_h: CtorId,
    c_atom: CtorId,
    c_m: CtorId,
}

impl std::fmt::Debug for Ifc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ifc").finish_non_exhaustive()
    }
}

impl Default for Ifc {
    fn default() -> Ifc {
        Ifc::new()
    }
}

impl Ifc {
    /// Parses the specification and derives the indistinguishability
    /// checker and the variation generator.
    ///
    /// # Panics
    ///
    /// Panics only if the embedded specification fails to parse or
    /// derive, which the test suite rules out.
    pub fn new() -> Ifc {
        let mut u = Universe::new();
        u.std_list();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, IFC_SOURCE).expect("embedded source parses");
        let indist = env.rel_id("indist").expect("declared");
        let ids = (
            u.ctor_id("L").expect("declared"),
            u.ctor_id("H").expect("declared"),
            u.ctor_id("Atom").expect("declared"),
            u.ctor_id("M").expect("declared"),
        );
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(indist).expect("indist checker derives");
        b.derive_producer(indist, Mode::producer(2, &[1]))
            .expect("variation generator derives");
        Ifc {
            lib: b.build(),
            indist,
            c_l: ids.0,
            c_h: ids.1,
            c_atom: ids.2,
            c_m: ids.3,
        }
    }

    /// The underlying instance library.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The `indist` relation.
    pub fn indist_relation(&self) -> RelId {
        self.indist
    }

    /// The variation mode `indist m1 ?m2`.
    pub fn variation_mode(&self) -> Mode {
        Mode::producer(2, &[1])
    }

    // ------------------------------------------------------------------
    // Value encoding
    // ------------------------------------------------------------------

    fn lab_value(&self, l: Lab) -> Value {
        match l {
            Lab::L => Value::ctor(self.c_l, vec![]),
            Lab::H => Value::ctor(self.c_h, vec![]),
        }
    }

    fn atom_value(&self, a: Atom) -> Value {
        Value::ctor(self.c_atom, vec![Value::nat(a.0), self.lab_value(a.1)])
    }

    /// Encodes a machine state as a term for the checkers.
    pub fn machine_value(&self, m: &Machine) -> Value {
        let enc = |atoms: &[Atom]| {
            self.lib
                .universe()
                .list_value(atoms.iter().map(|a| self.atom_value(*a)))
        };
        Value::ctor(self.c_m, vec![Value::nat(m.pc), enc(&m.stack), enc(&m.mem)])
    }

    /// Decodes a machine state from a term (inverse of
    /// [`Ifc::machine_value`]); `None` on malformed terms.
    pub fn machine_of_value(&self, v: &Value) -> Option<Machine> {
        let (c, args) = v.as_ctor()?;
        if c != self.c_m {
            return None;
        }
        let dec = |v: &Value| -> Option<Vec<Atom>> {
            self.lib
                .universe()
                .list_elems(v)?
                .into_iter()
                .map(|a| {
                    let (c, args) = a.as_ctor()?;
                    if c != self.c_atom {
                        return None;
                    }
                    let n = args[0].as_nat()?;
                    let (lc, _) = args[1].as_ctor()?;
                    Some((n, if lc == self.c_h { Lab::H } else { Lab::L }))
                })
                .collect()
        };
        Some(Machine {
            pc: args[0].as_nat()?,
            stack: dec(&args[1])?,
            mem: dec(&args[2])?,
        })
    }

    // ------------------------------------------------------------------
    // Handwritten baselines
    // ------------------------------------------------------------------

    /// The handwritten indistinguishability checker.
    pub fn handwritten_indist(&self, m1: &Machine, m2: &Machine) -> bool {
        fn lists(a: &[Atom], b: &[Atom]) -> bool {
            a.len() == b.len()
                && a.iter().zip(b).all(|((n1, l1), (n2, l2))| match (l1, l2) {
                    (Lab::H, Lab::H) => true,
                    (Lab::L, Lab::L) => n1 == n2,
                    _ => false,
                })
        }
        m1.pc == m2.pc && lists(&m1.stack, &m2.stack) && lists(&m1.mem, &m2.mem)
    }

    /// The handwritten checker over the *term encoding* (same
    /// representation the derived checker sees — the Figure 3
    /// baseline).
    pub fn handwritten_indist_value(&self, v1: &Value, v2: &Value) -> bool {
        let (c1, a1) = v1.as_ctor().expect("machine value");
        let (c2, a2) = v2.as_ctor().expect("machine value");
        debug_assert!(c1 == self.c_m && c2 == self.c_m);
        if a1[0] != a2[0] {
            return false;
        }
        self.indist_list_value(&a1[1], &a2[1]) && self.indist_list_value(&a1[2], &a2[2])
    }

    fn indist_list_value(&self, mut l1: &Value, mut l2: &Value) -> bool {
        loop {
            match (l1.as_ctor(), l2.as_ctor()) {
                (Some((c1, a1)), Some((c2, a2))) if c1 == c2 => {
                    if a1.is_empty() {
                        return true; // both nil
                    }
                    let (_, x1) = a1[0].as_ctor().expect("atom");
                    let (_, x2) = a2[0].as_ctor().expect("atom");
                    let (lc1, _) = x1[1].as_ctor().expect("label");
                    let (lc2, _) = x2[1].as_ctor().expect("label");
                    let ok = if lc1 == self.c_h && lc2 == self.c_h {
                        true
                    } else if lc1 == self.c_l && lc2 == self.c_l {
                        x1[0] == x2[0]
                    } else {
                        false
                    };
                    if !ok {
                        return false;
                    }
                    l1 = &a1[1];
                    l2 = &a2[1];
                }
                _ => return false,
            }
        }
    }

    /// The derived indistinguishability checker.
    pub fn derived_indist(&self, v1: &Value, v2: &Value, fuel: u64) -> Option<bool> {
        self.lib
            .check(self.indist, fuel, fuel, &[v1.clone(), v2.clone()])
    }

    /// The derived variation generator: an indistinguishable machine,
    /// given one machine.
    pub fn derived_vary(
        &self,
        m: &Machine,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Option<Machine> {
        let v = self.machine_value(m);
        let out = self
            .lib
            .generate(self.indist, &self.variation_mode(), size, size, &[v], rng)?;
        self.machine_of_value(&out[0])
    }

    /// The handwritten variation: copy `L` atoms, refresh `H` payloads.
    pub fn handwritten_vary(&self, m: &Machine, rng: &mut dyn rand::RngCore) -> Machine {
        let vary = |atoms: &[Atom], rng: &mut dyn rand::RngCore| {
            atoms
                .iter()
                .map(|&(n, l)| match l {
                    Lab::L => (n, l),
                    Lab::H => (rng.gen_range(0..16), Lab::H),
                })
                .collect()
        };
        Machine {
            pc: m.pc,
            stack: vary(&m.stack, rng),
            mem: vary(&m.mem, rng),
        }
    }

    // ------------------------------------------------------------------
    // The machine
    // ------------------------------------------------------------------

    /// Executes one instruction.
    ///
    /// `Store` enforces the *no-sensitive-upgrade* rule of the IFC
    /// literature: writing through a `H`-labeled address to an
    /// `L`-labeled cell is forbidden (the machine gets stuck), since
    /// the write set itself would leak the secret address.
    pub fn step(&self, prog: &[Instr], m: &mut Machine, mutation: Mutation) -> Status {
        let Some(instr) = prog.get(m.pc as usize) else {
            return Status::Halted;
        };
        match *instr {
            Instr::Halt => return Status::Halted,
            Instr::Noop => {}
            Instr::Push(n, l) => m.stack.push((n, l)),
            Instr::Pop => {
                if m.stack.pop().is_none() {
                    return Status::Stuck;
                }
            }
            Instr::Add => {
                let (Some(a), Some(b)) = (m.stack.pop(), m.stack.pop()) else {
                    return Status::Stuck;
                };
                let label = match mutation {
                    // BUG: forgets to join the second operand's label.
                    Mutation::AddNoJoin => a.1,
                    _ => a.1.join(b.1),
                };
                m.stack.push((a.0.wrapping_add(b.0), label));
            }
            Instr::Load => {
                let Some((addr, la)) = m.stack.pop() else {
                    return Status::Stuck;
                };
                if m.mem.is_empty() {
                    return Status::Stuck;
                }
                let (v, lv) = m.mem[addr as usize % m.mem.len()];
                let label = match mutation {
                    // BUG: ignores the address label.
                    Mutation::LoadNoJoin => lv,
                    _ => lv.join(la),
                };
                m.stack.push((v, label));
            }
            Instr::Store => {
                let (Some((addr, la)), Some((v, lv))) = (m.stack.pop(), m.stack.pop()) else {
                    return Status::Stuck;
                };
                if m.mem.is_empty() {
                    return Status::Stuck;
                }
                let len = m.mem.len();
                let idx = addr as usize % len;
                // No sensitive upgrade: a high address may only name
                // cells that are already high.
                if la == Lab::H && m.mem[idx].1 == Lab::L {
                    return Status::Stuck;
                }
                m.mem[idx] = (v, lv.join(la));
            }
        }
        m.pc += 1;
        Status::Running
    }

    /// Runs up to `max_steps` instructions; the boolean is `true` when
    /// the machine halted cleanly (rather than getting stuck or running
    /// out of steps).
    pub fn run(
        &self,
        prog: &[Instr],
        mut m: Machine,
        max_steps: usize,
        mutation: Mutation,
    ) -> (Machine, bool) {
        for _ in 0..max_steps {
            match self.step(prog, &mut m, mutation) {
                Status::Running => {}
                Status::Halted => return (m, true),
                Status::Stuck => return (m, false),
            }
        }
        (m, false)
    }

    /// Generates a random program and a pair of indistinguishable
    /// starting machines (generation by variation).
    pub fn gen_indist_pair(
        &self,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> (Vec<Instr>, Machine, Machine) {
        let prog_len = rng.gen_range(1..=size.max(1) as usize + 2);
        let prog: Vec<Instr> = (0..prog_len)
            .map(|_| match rng.gen_range(0..8) {
                0 | 1 => Instr::Push(
                    rng.gen_range(0..8),
                    if rng.gen_range(0..2) == 0 {
                        Lab::L
                    } else {
                        Lab::H
                    },
                ),
                2 => Instr::Pop,
                3 | 4 => Instr::Add,
                5 => Instr::Load,
                6 => Instr::Store,
                _ => Instr::Noop,
            })
            .collect();
        let rand_atoms = |k: usize, rng: &mut dyn rand::RngCore| -> Vec<Atom> {
            (0..k)
                .map(|_| {
                    (
                        rng.gen_range(0..8),
                        if rng.gen_range(0..2) == 0 {
                            Lab::L
                        } else {
                            Lab::H
                        },
                    )
                })
                .collect()
        };
        let m1 = Machine {
            pc: 0,
            stack: rand_atoms(rng.gen_range(2..6), rng),
            mem: rand_atoms(rng.gen_range(2..5), rng),
        };
        let m2 = self.handwritten_vary(&m1, rng);
        (prog, m1, m2)
    }

    /// End-to-end noninterference for one generated pair: run both
    /// machines; when both halt cleanly, compare final states with the
    /// handwritten checker. `None` discards the test (some run got
    /// stuck — the EENI side condition).
    pub fn noninterference_holds(
        &self,
        prog: &[Instr],
        m1: &Machine,
        m2: &Machine,
        mutation: Mutation,
    ) -> Option<bool> {
        let (f1, ok1) = self.run(prog, m1.clone(), 64, mutation);
        let (f2, ok2) = self.run(prog, m2.clone(), 64, mutation);
        (ok1 && ok2).then(|| self.handwritten_indist(&f1, &f2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn label_join() {
        assert_eq!(Lab::L.join(Lab::L), Lab::L);
        assert_eq!(Lab::L.join(Lab::H), Lab::H);
        assert_eq!(Lab::H.join(Lab::L), Lab::H);
        assert_eq!(Lab::H.join(Lab::H), Lab::H);
    }

    #[test]
    fn handwritten_and_derived_indist_agree() {
        let ifc = Ifc::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let (_, m1, m2) = ifc.gen_indist_pair(5, &mut rng);
            let v1 = ifc.machine_value(&m1);
            let v2 = ifc.machine_value(&m2);
            let hand = ifc.handwritten_indist_value(&v1, &v2);
            assert_eq!(hand, ifc.handwritten_indist(&m1, &m2));
            assert_eq!(ifc.derived_indist(&v1, &v2, 64), Some(hand));
        }
    }

    #[test]
    fn derived_indist_rejects_low_differences() {
        let ifc = Ifc::new();
        let m1 = Machine {
            pc: 0,
            stack: vec![(1, Lab::L)],
            mem: vec![(2, Lab::H)],
        };
        let mut m2 = m1.clone();
        m2.stack[0] = (9, Lab::L);
        let v1 = ifc.machine_value(&m1);
        let v2 = ifc.machine_value(&m2);
        assert_eq!(ifc.derived_indist(&v1, &v2, 64), Some(false));
        // High differences are fine.
        let mut m3 = m1.clone();
        m3.mem[0] = (7, Lab::H);
        let v3 = ifc.machine_value(&m3);
        assert_eq!(ifc.derived_indist(&v1, &v3, 64), Some(true));
        // Different pc is distinguishable.
        let mut m4 = m1.clone();
        m4.pc = 1;
        let v4 = ifc.machine_value(&m4);
        assert_eq!(ifc.derived_indist(&v1, &v4, 64), Some(false));
    }

    #[test]
    fn machine_value_round_trips() {
        let ifc = Ifc::new();
        let m = Machine {
            pc: 3,
            stack: vec![(1, Lab::L), (2, Lab::H)],
            mem: vec![(5, Lab::H)],
        };
        let v = ifc.machine_value(&m);
        assert_eq!(ifc.machine_of_value(&v), Some(m));
    }

    #[test]
    fn derived_variation_is_sound() {
        let ifc = Ifc::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut produced = 0;
        for _ in 0..50 {
            let (_, m1, _) = ifc.gen_indist_pair(4, &mut rng);
            if let Some(m2) = ifc.derived_vary(&m1, 12, &mut rng) {
                produced += 1;
                assert!(
                    ifc.handwritten_indist(&m1, &m2),
                    "derived variation produced a distinguishable machine"
                );
            }
        }
        assert!(produced > 25, "variation should mostly succeed: {produced}");
    }

    #[test]
    fn noninterference_holds_for_correct_machine() {
        let ifc = Ifc::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut decided = 0;
        for _ in 0..500 {
            let (prog, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
            // None = discarded: a run got stuck.
            if let Some(ok) = ifc.noninterference_holds(&prog, &m1, &m2, Mutation::None) {
                decided += 1;
                assert!(
                    ok,
                    "NI violated by the correct machine on {prog:?} {m1:?} {m2:?}"
                );
            }
        }
        assert!(decided > 100, "most runs should halt cleanly: {decided}");
    }

    #[test]
    fn mutations_violate_noninterference() {
        let ifc = Ifc::new();
        for mutation in [Mutation::AddNoJoin, Mutation::LoadNoJoin] {
            let mut rng = SmallRng::seed_from_u64(4);
            let mut broken = false;
            for _ in 0..2000 {
                let (prog, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
                if ifc.noninterference_holds(&prog, &m1, &m2, mutation) == Some(false) {
                    broken = true;
                    break;
                }
            }
            assert!(broken, "{mutation:?} should violate noninterference");
        }
    }

    #[test]
    fn machine_executes_programs() {
        let ifc = Ifc::new();
        let prog = vec![
            Instr::Push(2, Lab::L),
            Instr::Push(3, Lab::H),
            Instr::Add,
            Instr::Halt,
        ];
        let (m, halted) = ifc.run(
            &prog,
            Machine {
                pc: 0,
                stack: vec![],
                mem: vec![(0, Lab::L)],
            },
            10,
            Mutation::None,
        );
        assert!(halted);
        assert_eq!(m.stack, vec![(5, Lab::H)]);
        // The mutated Add forgets the low operand's... high label:
        let (m2, _) = ifc.run(
            &prog,
            Machine {
                pc: 0,
                stack: vec![],
                mem: vec![(0, Lab::L)],
            },
            10,
            Mutation::AddNoJoin,
        );
        assert_eq!(m2.stack, vec![(5, Lab::H)]);
        // Put the high atom first so the buggy Add mislabels.
        let prog2 = vec![
            Instr::Push(3, Lab::H),
            Instr::Push(2, Lab::L),
            Instr::Add,
            Instr::Halt,
        ];
        let (m3, _) = ifc.run(
            &prog2,
            Machine {
                pc: 0,
                stack: vec![],
                mem: vec![(0, Lab::L)],
            },
            10,
            Mutation::AddNoJoin,
        );
        assert_eq!(m3.stack, vec![(5, Lab::L)], "label leak");
    }
}
