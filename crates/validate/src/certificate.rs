//! Validation certificates.

use std::fmt;

/// Which artifact a certificate covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArtifactKind {
    /// A semi-decision procedure.
    Checker,
    /// A bounded enumerator.
    Enumerator,
    /// A random generator.
    Generator,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::Checker => write!(f, "checker"),
            ArtifactKind::Enumerator => write!(f, "enumerator"),
            ArtifactKind::Generator => write!(f, "generator"),
        }
    }
}

/// Bounds used during validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidationParams {
    /// Size bound for the swept argument tuples.
    pub arg_size: u64,
    /// Maximum checker fuel / producer size tried.
    pub max_fuel: u64,
    /// Depth bound for the reference search.
    pub ref_depth: u64,
    /// Witness-size bound for the reference search.
    pub value_bound: u64,
    /// Samples per input for generator validation.
    pub gen_samples: usize,
    /// RNG seed for generator validation.
    pub seed: u64,
}

impl Default for ValidationParams {
    fn default() -> ValidationParams {
        ValidationParams {
            arg_size: 4,
            max_fuel: 12,
            ref_depth: 12,
            value_bound: 5,
            gen_samples: 50,
            seed: 0xC0FFEE,
        }
    }
}

/// A concrete counterexample found during validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The checker answered `Some true` but the relation does not hold.
    CheckerUnsound {
        /// Rendered argument tuple.
        args: String,
    },
    /// The checker answered `Some false` but the relation holds.
    CheckerUnsoundNegative {
        /// Rendered argument tuple.
        args: String,
    },
    /// The relation holds but no tried fuel produced `Some true`.
    CheckerIncomplete {
        /// Rendered argument tuple.
        args: String,
    },
    /// A definite verdict changed when fuel increased.
    NotMonotonic {
        /// Rendered argument tuple (or input tuple for producers).
        args: String,
        /// The smaller fuel.
        fuel_lo: u64,
        /// The larger fuel.
        fuel_hi: u64,
    },
    /// A produced output does not satisfy the relation.
    ProducerUnsound {
        /// Rendered inputs.
        inputs: String,
        /// Rendered outputs.
        outputs: String,
    },
    /// A satisfying output was never produced.
    ProducerIncomplete {
        /// Rendered inputs.
        inputs: String,
        /// Rendered outputs.
        outputs: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CheckerUnsound { args } => {
                write!(f, "unsound: Some(true) on ({args}) which does not hold")
            }
            Violation::CheckerUnsoundNegative { args } => {
                write!(f, "negatively unsound: Some(false) on ({args}) which holds")
            }
            Violation::CheckerIncomplete { args } => {
                write!(f, "incomplete: ({args}) holds but no fuel answers Some(true)")
            }
            Violation::NotMonotonic {
                args,
                fuel_lo,
                fuel_hi,
            } => write!(
                f,
                "non-monotonic on ({args}): verdict changed between fuel {fuel_lo} and {fuel_hi}"
            ),
            Violation::ProducerUnsound { inputs, outputs } => {
                write!(f, "unsound: produced ({outputs}) for inputs ({inputs})")
            }
            Violation::ProducerIncomplete { inputs, outputs } => write!(
                f,
                "incomplete: ({outputs}) satisfies the relation for inputs ({inputs}) but was never produced"
            ),
        }
    }
}

/// The judgement of a single swept case — one argument (or input)
/// tuple run through one oracle. The per-case counterpart of a
/// [`Certificate`], returned by the `Validator`'s `*_case` methods so
/// external drivers (e.g. the fuzz pipeline) can consume oracles
/// incrementally.
#[derive(Clone, Debug, Default)]
pub struct CaseReport {
    /// Violations found on this case.
    pub violations: Vec<Violation>,
    /// Comparisons skipped because the reference was inconclusive.
    pub inconclusive: usize,
}

impl CaseReport {
    /// `true` when no violations were found on this case.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The result of validating one derived artifact.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Relation name.
    pub rel: String,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Mode rendering (empty for checkers).
    pub mode: String,
    /// Number of argument/input tuples swept.
    pub cases: usize,
    /// Violations found (empty for a valid artifact).
    pub violations: Vec<Violation>,
    /// Cases where the reference search was itself inconclusive and the
    /// comparison was skipped.
    pub inconclusive: usize,
    /// The bounds used.
    pub params: ValidationParams,
}

impl Certificate {
    /// `true` when no violations were found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}{}: {} over {} cases ({} inconclusive)",
            self.kind,
            self.rel,
            self.mode,
            if self.is_valid() { "VALID" } else { "INVALID" },
            self.cases,
            self.inconclusive
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_display() {
        let cert = Certificate {
            rel: "le".into(),
            kind: ArtifactKind::Checker,
            mode: String::new(),
            cases: 25,
            violations: vec![],
            inconclusive: 0,
            params: ValidationParams::default(),
        };
        assert!(cert.is_valid());
        assert!(cert.to_string().contains("VALID"));
        let mut bad = cert;
        bad.violations.push(Violation::CheckerUnsound {
            args: "1, 2".into(),
        });
        assert!(!bad.is_valid());
        assert!(bad.to_string().contains("unsound"));
    }

    #[test]
    fn default_params_are_modest() {
        let p = ValidationParams::default();
        assert!(p.arg_size <= 6);
        assert!(p.max_fuel >= p.ref_depth);
    }
}
