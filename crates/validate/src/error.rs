//! Typed errors for validator construction.

use std::error::Error;
use std::fmt;

/// Why a [`Validator`](crate::Validator) could not be built.
///
/// Machine-matchable (unlike the previous `Result<_, String>`), so
/// drivers that validate *generated* programs — the fuzz pipeline in
/// particular — can classify construction failures instead of string-
/// matching them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// The reference semantics could not preprocess the relations
    /// (e.g. a rule shape the proof search does not support).
    Preprocess {
        /// Human-readable reason from `indrel-semantics`.
        message: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Preprocess { message } => {
                write!(f, "reference semantics preprocessing failed: {message}")
            }
        }
    }
}

impl Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = ValidateError::Preprocess {
            message: "bad rule".into(),
        };
        assert!(e.to_string().contains("bad rule"));
        assert_eq!(e.clone(), e);
    }
}
