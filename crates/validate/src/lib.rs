//! Translation validation for derived computations.
//!
//! The paper proves, per derived artifact and inside Coq, that the
//! artifact is **sound**, **complete**, and **size-monotonic** with
//! respect to its source relation (§5). Rust has no practical analogue
//! of those foundational proofs, so this crate keeps the *shape* of
//! translation validation — a post-hoc, per-artifact check producing a
//! reusable certificate — while replacing "proof" with exhaustive
//! verification over bounded domains against the independent reference
//! semantics of [`indrel_semantics`]:
//!
//! * **checker soundness** — `check s args = Some true` implies the
//!   relation holds (reference search agrees),
//! * **negative soundness** — `Some false` implies it does not hold
//!   (derivable from monotonicity + completeness in the paper),
//! * **checker completeness** — whenever the relation holds, some fuel
//!   makes the checker answer `Some true`,
//! * **monotonicity** — once definite, larger fuel never changes the
//!   verdict,
//! * **producer soundness/completeness** — the set of outcomes equals
//!   the set of satisfying outputs (exactly, for enumerators, over the
//!   bounded domain; statistically for generators),
//! * **producer monotonicity** — outcome sets grow with size.
//!
//! The paper's negative result is preserved: completeness of *negation*
//! is not validated (it fails for relations like `zero`, §5.1), and a
//! checker answering `None` forever on a non-inhabitant is not a
//! certificate failure.
//!
//! # Example
//!
//! ```
//! use indrel_core::{LibraryBuilder, Mode};
//! use indrel_rel::{parse::parse_program, RelEnv};
//! use indrel_term::Universe;
//! use indrel_validate::Validator;
//!
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, r"
//!     rel le : nat nat :=
//!     | le_n : forall n, le n n
//!     | le_S : forall n m, le n m -> le n (S m)
//!     .
//! ").unwrap();
//! let le = env.rel_id("le").unwrap();
//! let mut b = LibraryBuilder::new(u, env);
//! b.derive_checker(le).unwrap();
//! b.derive_producer(le, Mode::producer(2, &[0])).unwrap();
//! let lib = b.build();
//!
//! let validator = Validator::new(lib).unwrap();
//! let cert = validator.validate_checker(le);
//! assert!(cert.is_valid(), "{cert}");
//! let cert = validator.validate_enumerator(le, &Mode::producer(2, &[0]));
//! assert!(cert.is_valid(), "{cert}");
//! ```

mod certificate;
mod error;
mod validator;

pub use certificate::{ArtifactKind, CaseReport, Certificate, ValidationParams, Violation};
pub use error::ValidateError;
pub use validator::Validator;
