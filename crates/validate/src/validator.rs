//! The validation engine.

use crate::certificate::{ArtifactKind, CaseReport, Certificate, ValidationParams, Violation};
use crate::error::ValidateError;
use indrel_core::{Library, Mode};
use indrel_producers::Outcome;
use indrel_semantics::{ProofSystem, Tv};
use indrel_term::enumerate::tuples_up_to;
use indrel_term::{RelId, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Validates derived artifacts of a [`Library`] against the reference
/// semantics. See the [crate docs](crate) for an example.
///
/// Each `validate_*` method sweeps a bounded domain and wraps the
/// result into a [`Certificate`]; the per-case methods
/// ([`Validator::checker_case`], [`Validator::enumerator_case`],
/// [`Validator::generator_case`]) expose the same oracles one argument
/// tuple at a time, for drivers — the fuzz pipeline, notably — that
/// need to interleave, shrink, or budget individual comparisons.
#[derive(Debug)]
pub struct Validator {
    lib: Library,
    sys: ProofSystem,
    params: ValidationParams,
}

impl Validator {
    /// Builds a validator for the library, constructing the reference
    /// proof system over the same universe and relations.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing errors from the reference semantics as
    /// [`ValidateError::Preprocess`].
    pub fn new(lib: Library) -> Result<Validator, ValidateError> {
        Validator::with_params(lib, ValidationParams::default())
    }

    /// Builds a validator with explicit bounds.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing errors from the reference semantics as
    /// [`ValidateError::Preprocess`].
    pub fn with_params(lib: Library, params: ValidationParams) -> Result<Validator, ValidateError> {
        let mut sys = ProofSystem::new(lib.universe().clone(), lib.env().clone())
            .map_err(|message| ValidateError::Preprocess { message })?;
        sys.set_value_bound(params.value_bound);
        Ok(Validator { lib, sys, params })
    }

    /// The bounds in use.
    pub fn params(&self) -> &ValidationParams {
        &self.params
    }

    /// The underlying library.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    fn render(&self, vals: &[Value]) -> String {
        vals.iter()
            .map(|v| self.lib.universe().display_value(v).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Runs the reference search for `rel` at the configured depth —
    /// the "ground truth" side of every differential comparison.
    pub fn reference_holds(&self, rel: RelId, args: &[Value]) -> Tv {
        self.sys.holds(rel, args, self.params.ref_depth)
    }

    /// Re-runs the reference search with a witness bound matching the
    /// checker's maximum fuel, for double-checking would-be soundness
    /// violations (the default bound can truncate large witnesses).
    pub fn generous_holds(&self, rel: RelId, args: &[Value]) -> Tv {
        let mut sys = ProofSystem::new(self.lib.universe().clone(), self.lib.env().clone())
            .expect("relations already preprocessed once");
        sys.set_value_bound(self.params.value_bound.max(self.params.max_fuel));
        sys.holds(rel, args, self.params.ref_depth.max(self.params.max_fuel))
    }

    /// The bounded argument domain swept for `rel`: every argument
    /// tuple whose values have size at most the configured `arg_size`.
    pub fn sweep_args(&self, rel: RelId) -> Vec<Vec<Value>> {
        let tys = self.lib.env().relation(rel).arg_types().to_vec();
        tuples_up_to(self.lib.universe(), &tys, self.params.arg_size)
    }

    /// The bounded domain of *input* tuples for `(rel, mode)`.
    pub fn sweep_inputs(&self, rel: RelId, mode: &Mode) -> Vec<Vec<Value>> {
        let in_tys: Vec<_> = mode
            .in_positions()
            .into_iter()
            .map(|i| self.lib.env().relation(rel).arg_types()[i].clone())
            .collect();
        tuples_up_to(self.lib.universe(), &in_tys, self.params.arg_size)
    }

    /// Judges the checker on one argument tuple: runs the fuel ladder
    /// for monotonicity, then compares the final verdict against the
    /// reference search.
    pub fn checker_case(&self, rel: RelId, args: &[Value]) -> CaseReport {
        let mut report = CaseReport::default();
        let reference = self.reference_holds(rel, args);
        // Monotonicity: once definite, the verdict never changes.
        let mut definite: Option<(bool, u64)> = None;
        let mut final_result = None;
        for fuel in 0..=self.params.max_fuel {
            let r = self.lib.check(rel, fuel, fuel, args);
            if let Some(b) = r {
                match definite {
                    None => definite = Some((b, fuel)),
                    Some((b0, f0)) => {
                        if b0 != b {
                            report.violations.push(Violation::NotMonotonic {
                                args: self.render(args),
                                fuel_lo: f0,
                                fuel_hi: fuel,
                            });
                            // The verdict is unstable; comparing it
                            // against the reference would double-report
                            // the same defect.
                            return report;
                        }
                    }
                }
            }
            final_result = r;
        }
        match (final_result, reference) {
            (Some(true), Tv::False) => {
                // The checker may have used a witness larger than the
                // reference search's value bound; re-verify with a
                // bound matching the checker's fuel before flagging.
                if self.generous_holds(rel, args) == Tv::False {
                    report.violations.push(Violation::CheckerUnsound {
                        args: self.render(args),
                    });
                } else {
                    report.inconclusive += 1;
                }
            }
            (Some(false), Tv::True) => {
                report.violations.push(Violation::CheckerUnsoundNegative {
                    args: self.render(args),
                });
            }
            (None, Tv::True) => {
                // `None` on a positive is an incompleteness.
                report.violations.push(Violation::CheckerIncomplete {
                    args: self.render(args),
                });
            }
            (Some(true), Tv::Unknown) => {
                // A positive checker verdict with an inconclusive
                // reference can't be judged.
                report.inconclusive += 1;
            }
            _ => {
                if reference == Tv::Unknown {
                    report.inconclusive += 1;
                }
            }
        }
        report
    }

    /// Validates the checker instance for `rel`: soundness, negative
    /// soundness, completeness, and monotonicity over the bounded
    /// argument domain.
    pub fn validate_checker(&self, rel: RelId) -> Certificate {
        let mut violations = Vec::new();
        let mut inconclusive = 0usize;
        let tuples = self.sweep_args(rel);
        for args in &tuples {
            let case = self.checker_case(rel, args);
            violations.extend(case.violations);
            inconclusive += case.inconclusive;
        }
        Certificate {
            rel: self.lib.env().relation(rel).name().to_string(),
            kind: ArtifactKind::Checker,
            mode: String::new(),
            cases: tuples.len(),
            violations,
            inconclusive,
            params: self.params,
        }
    }

    /// The set of satisfying output tuples for `(rel, mode)` at the
    /// given inputs, according to the reference semantics, restricted to
    /// outputs within the sweep bound.
    pub fn reference_outputs(&self, rel: RelId, mode: &Mode, inputs: &[Value]) -> Vec<Vec<Value>> {
        let tys: Vec<_> = mode
            .out_positions()
            .into_iter()
            .map(|i| self.lib.env().relation(rel).arg_types()[i].clone())
            .collect();
        let mut sat = Vec::new();
        for outs in tuples_up_to(self.lib.universe(), &tys, self.params.arg_size) {
            let args = assemble(mode, inputs, &outs);
            if self.sys.holds(rel, &args, self.params.ref_depth) == Tv::True {
                sat.push(outs);
            }
        }
        sat
    }

    /// Judges the enumerator on one input tuple: outcome-set
    /// monotonicity across sizes, soundness of every enumerated output,
    /// and completeness against [`Validator::reference_outputs`].
    pub fn enumerator_case(&self, rel: RelId, mode: &Mode, inputs: &[Value]) -> CaseReport {
        let mut report = CaseReport::default();
        let mut prev: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut seen_at_max: BTreeSet<Vec<Value>> = BTreeSet::new();
        for size in 0..=self.params.max_fuel {
            let outcomes = self.lib.enumerate(rel, mode, size, size, inputs).outcomes();
            let mut cur: BTreeSet<Vec<Value>> = BTreeSet::new();
            for o in outcomes {
                if let Outcome::Val(v) = o {
                    cur.insert(v);
                }
            }
            // Monotonicity of outcome sets.
            if !prev.is_subset(&cur) {
                report.violations.push(Violation::NotMonotonic {
                    args: self.render(inputs),
                    fuel_lo: size.saturating_sub(1),
                    fuel_hi: size,
                });
            }
            prev = cur.clone();
            if size == self.params.max_fuel {
                seen_at_max = cur;
            }
        }
        // Soundness: everything produced satisfies the relation.
        for outs in &seen_at_max {
            let args = assemble(mode, inputs, outs);
            match self.sys.holds(rel, &args, self.params.ref_depth) {
                Tv::False => report.violations.push(Violation::ProducerUnsound {
                    inputs: self.render(inputs),
                    outputs: self.render(outs),
                }),
                Tv::Unknown => report.inconclusive += 1,
                Tv::True => {}
            }
        }
        // Completeness: every satisfying output (within bounds) is
        // eventually produced.
        for outs in self.reference_outputs(rel, mode, inputs) {
            if !seen_at_max.contains(&outs) {
                report.violations.push(Violation::ProducerIncomplete {
                    inputs: self.render(inputs),
                    outputs: self.render(&outs),
                });
            }
        }
        report
    }

    /// Validates the enumerator instance for `(rel, mode)`: soundness
    /// of every outcome, completeness against the reference output set,
    /// and monotonicity of outcome sets. (Duplicates are allowed: a
    /// witness with several derivations is enumerated once per
    /// derivation, as in QuickChick.)
    pub fn validate_enumerator(&self, rel: RelId, mode: &Mode) -> Certificate {
        let mut violations = Vec::new();
        let mut inconclusive = 0usize;
        let input_tuples = self.sweep_inputs(rel, mode);
        for inputs in &input_tuples {
            let case = self.enumerator_case(rel, mode, inputs);
            violations.extend(case.violations);
            inconclusive += case.inconclusive;
        }
        Certificate {
            rel: self.lib.env().relation(rel).name().to_string(),
            kind: ArtifactKind::Enumerator,
            mode: mode.to_string(),
            cases: input_tuples.len(),
            violations,
            inconclusive,
            params: self.params,
        }
    }

    /// Judges the generator on one input tuple: draws the configured
    /// number of samples from `rng` and checks each against the
    /// reference (soundness only — coverage is statistical).
    pub fn generator_case(
        &self,
        rel: RelId,
        mode: &Mode,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
    ) -> CaseReport {
        let mut report = CaseReport::default();
        for _ in 0..self.params.gen_samples {
            let Some(outs) = self.lib.generate(
                rel,
                mode,
                self.params.max_fuel,
                self.params.max_fuel,
                inputs,
                rng,
            ) else {
                continue;
            };
            let args = assemble(mode, inputs, &outs);
            match self.sys.holds(rel, &args, self.params.ref_depth) {
                Tv::False => report.violations.push(Violation::ProducerUnsound {
                    inputs: self.render(inputs),
                    outputs: self.render(&outs),
                }),
                Tv::Unknown => report.inconclusive += 1,
                Tv::True => {}
            }
        }
        report
    }

    /// Validates the generator instance for `(rel, mode)`: every sample
    /// satisfies the relation (soundness); coverage of the reference
    /// output set is reported through the certificate's `inconclusive`
    /// count (samples can miss rare outputs without invalidating).
    pub fn validate_generator(&self, rel: RelId, mode: &Mode) -> Certificate {
        let mut violations = Vec::new();
        let mut inconclusive = 0usize;
        let input_tuples = self.sweep_inputs(rel, mode);
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        for inputs in &input_tuples {
            let case = self.generator_case(rel, mode, inputs, &mut rng);
            violations.extend(case.violations);
            inconclusive += case.inconclusive;
        }
        Certificate {
            rel: self.lib.env().relation(rel).name().to_string(),
            kind: ArtifactKind::Generator,
            mode: mode.to_string(),
            cases: input_tuples.len(),
            violations,
            inconclusive,
            params: self.params,
        }
    }
}

/// Reassembles a full argument tuple from mode-split inputs and outputs.
fn assemble(mode: &Mode, inputs: &[Value], outputs: &[Value]) -> Vec<Value> {
    let mut args = Vec::with_capacity(mode.arity());
    let mut it_in = inputs.iter();
    let mut it_out = outputs.iter();
    for i in 0..mode.arity() {
        if mode.is_out(i) {
            args.push(it_out.next().expect("output arity").clone());
        } else {
            args.push(it_in.next().expect("input arity").clone());
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_core::LibraryBuilder;
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::Universe;
    use std::sync::Arc;

    fn validated_lib(src: &str, rel: &str, modes: &[Vec<usize>]) -> (Validator, RelId) {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, src).unwrap();
        let id = env.rel_id(rel).unwrap();
        let arity = env.relation(id).arity();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(id).unwrap();
        for outs in modes {
            b.derive_producer(id, Mode::producer(arity, outs)).unwrap();
        }
        (Validator::new(b.build()).unwrap(), id)
    }

    const LE: &str = r"rel le : nat nat :=
        | le_n : forall n, le n n
        | le_S : forall n m, le n m -> le n (S m)
        .";

    #[test]
    fn le_checker_certificate_is_valid() {
        let (v, le) = validated_lib(LE, "le", &[]);
        let cert = v.validate_checker(le);
        assert!(cert.is_valid(), "{cert}");
        assert!(cert.cases > 0);
    }

    #[test]
    fn le_enumerator_certificates_are_valid() {
        let (v, le) = validated_lib(LE, "le", &[vec![0], vec![1], vec![0, 1]]);
        for outs in [vec![0usize], vec![1], vec![0, 1]] {
            let cert = v.validate_enumerator(le, &Mode::producer(2, &outs));
            assert!(cert.is_valid(), "{cert}");
        }
    }

    #[test]
    fn le_generator_certificate_is_valid() {
        let (v, le) = validated_lib(LE, "le", &[vec![1]]);
        let cert = v.validate_generator(le, &Mode::producer(2, &[1]));
        assert!(cert.is_valid(), "{cert}");
    }

    #[test]
    fn broken_handwritten_checker_is_caught() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, LE).unwrap();
        let le = env.rel_id("le").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        // An unsound checker: claims le m n for everything.
        b.register_checker(le, Arc::new(|_, _, _| Some(true)));
        let v = Validator::new(b.build()).unwrap();
        let cert = v.validate_checker(le);
        assert!(!cert.is_valid());
        assert!(cert
            .violations
            .iter()
            .any(|x| matches!(x, Violation::CheckerUnsound { .. })));
    }

    #[test]
    fn incomplete_handwritten_checker_is_caught() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, LE).unwrap();
        let le = env.rel_id("le").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        // Sound but incomplete-and-claiming-false: rejects everything.
        b.register_checker(le, Arc::new(|_, _, _| Some(false)));
        let v = Validator::new(b.build()).unwrap();
        let cert = v.validate_checker(le);
        assert!(cert
            .violations
            .iter()
            .any(|x| matches!(x, Violation::CheckerUnsoundNegative { .. })));
    }

    #[test]
    fn nonmonotonic_checker_is_caught() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, LE).unwrap();
        let le = env.rel_id("le").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        // Flips its verdict with fuel parity.
        b.register_checker(le, Arc::new(|s, _, _| Some(s % 2 == 0)));
        let v = Validator::new(b.build()).unwrap();
        let cert = v.validate_checker(le);
        assert!(cert
            .violations
            .iter()
            .any(|x| matches!(x, Violation::NotMonotonic { .. })));
    }

    #[test]
    fn zero_relation_checker_still_validates() {
        // §5.1: the zero relation's checker answers None forever on
        // nonzero inputs; that is *not* a violation (completeness of
        // negation is not required), it shows up as inconclusive cases.
        let (v, zero) = validated_lib(
            r"rel zero : nat :=
              | Zero : zero 0
              | NonZero : forall n, zero (S n) -> zero n
              .",
            "zero",
            &[],
        );
        let cert = v.validate_checker(zero);
        assert!(cert.is_valid(), "{cert}");
        assert!(cert.inconclusive > 0);
    }

    #[test]
    fn square_of_certificates() {
        let (v, sq) = validated_lib(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
            "square_of",
            &[vec![1]],
        );
        let cert = v.validate_checker(sq);
        assert!(cert.is_valid(), "{cert}");
        let cert = v.validate_enumerator(sq, &Mode::producer(2, &[1]));
        assert!(cert.is_valid(), "{cert}");
    }
}
