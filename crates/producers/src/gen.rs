//! Random generators — the `G` producer.
//!
//! A generator for `A` is a wrapper around `nat → Rand → A` (§4). Here
//! [`Gen`] is a first-class sized generator; the `backtrack` combinator
//! mirrors QuickChick's: it repeatedly picks among weighted options,
//! discarding options that fail, until one produces a value or all are
//! exhausted.

use rand::Rng as _;
use std::rc::Rc;

/// A first-class sized random generator (`G A`).
///
/// # Example
///
/// ```
/// use indrel_producers::Gen;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let pairs = Gen::new(|size, rng| {
///     (rand::Rng::gen_range(rng, 0..=size), rand::Rng::gen_range(rng, 0..=size))
/// });
/// let doubled = pairs.map(|(a, b)| a + b);
/// let mut rng = SmallRng::seed_from_u64(0);
/// let v = doubled.generate(10, &mut rng);
/// assert!(v <= 20);
/// ```
#[derive(Clone)]
pub struct Gen<A> {
    run: GenFn<A>,
}

/// The sampling function inside a [`Gen`]: `(size, rng) -> A`.
pub type GenFn<A> = Rc<dyn Fn(u64, &mut dyn rand::RngCore) -> A>;

/// One weighted alternative for [`backtrack`]: a weight and a thunk
/// that may fail.
pub type WeightedOption<'a, A> = (u64, Box<dyn Fn(&mut dyn rand::RngCore) -> Option<A> + 'a>);

impl<A> std::fmt::Debug for Gen<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gen").finish_non_exhaustive()
    }
}

impl<A: 'static> Gen<A> {
    /// Wraps a sized, seeded sampling function.
    pub fn new(run: impl Fn(u64, &mut dyn rand::RngCore) -> A + 'static) -> Gen<A> {
        Gen { run: Rc::new(run) }
    }

    /// The constant generator (`retG`).
    pub fn ret(value: A) -> Gen<A>
    where
        A: Clone,
    {
        Gen::new(move |_, _| value.clone())
    }

    /// Samples a value.
    pub fn generate(&self, size: u64, rng: &mut dyn rand::RngCore) -> A {
        (self.run)(size, rng)
    }

    /// Maps over generated values.
    pub fn map<B: 'static>(&self, f: impl Fn(A) -> B + 'static) -> Gen<B> {
        let run = self.run.clone();
        Gen::new(move |size, rng| f(run(size, rng)))
    }

    /// Monadic bind (`bindG`).
    pub fn bind<B: 'static>(&self, k: impl Fn(A) -> Gen<B> + 'static) -> Gen<B> {
        let run = self.run.clone();
        Gen::new(move |size, rng| k(run(size, rng)).generate(size, rng))
    }

    /// Reinterprets the generator at a fixed size.
    pub fn resize(&self, size: u64) -> Gen<A> {
        let run = self.run.clone();
        Gen::new(move |_, rng| run(size, rng))
    }
}

/// Picks uniformly among the given values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn one_of<A: Clone + 'static>(values: Vec<A>) -> Gen<A> {
    assert!(!values.is_empty(), "one_of requires at least one value");
    Gen::new(move |_, rng| values[rng.gen_range(0..values.len())].clone())
}

/// Picks among weighted generators (`frequency`).
///
/// # Panics
///
/// Panics if all weights are zero or the list is empty.
pub fn frequency<A: 'static>(choices: Vec<(u64, Gen<A>)>) -> Gen<A> {
    let total: u64 = choices.iter().map(|(w, _)| *w).sum();
    assert!(total > 0, "frequency requires a positive total weight");
    Gen::new(move |size, rng| {
        let mut pick = rng.gen_range(0..total);
        for (w, g) in &choices {
            if pick < *w {
                return g.generate(size, rng);
            }
            pick -= *w;
        }
        unreachable!("weights cover the range")
    })
}

/// QuickChick's `backtrack` combinator over *partial* options.
///
/// Each option is a weight plus a thunk that may fail (`None`). The
/// combinator repeatedly picks an option at random, proportionally to
/// weight; a failing option is discarded and the rest are retried, so
/// the overall result is `None` only when every option has failed.
///
/// # Example
///
/// ```
/// use indrel_producers::backtrack;
/// use rand::{rngs::SmallRng, SeedableRng};
/// let mut rng = SmallRng::seed_from_u64(1);
/// let r = backtrack(
///     vec![
///         (1, Box::new(|_: &mut dyn rand::RngCore| None) as Box<dyn Fn(&mut dyn rand::RngCore) -> Option<i32>>),
///         (3, Box::new(|_: &mut dyn rand::RngCore| Some(7))),
///     ],
///     &mut rng,
/// );
/// assert_eq!(r, Some(7));
/// ```
pub fn backtrack<A>(
    mut options: Vec<WeightedOption<'_, A>>,
    rng: &mut dyn rand::RngCore,
) -> Option<A> {
    options.retain(|(w, _)| *w > 0);
    while !options.is_empty() {
        let total: u64 = options.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        let mut index = 0;
        for (i, (w, _)) in options.iter().enumerate() {
            if pick < *w {
                index = i;
                break;
            }
            pick -= *w;
        }
        if let Some(v) = (options[index].1)(rng) {
            return Some(v);
        }
        let _discarded = options.swap_remove(index);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ret_and_map() {
        let g = Gen::ret(5).map(|n| n * 2);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(g.generate(0, &mut rng), 10);
    }

    #[test]
    fn bind_threads_size_and_seed() {
        let g =
            Gen::new(|size, rng| rng.gen_range(0..=size)).bind(|n| Gen::new(move |_, _| n + 100));
        let mut rng = SmallRng::seed_from_u64(0);
        let v = g.generate(5, &mut rng);
        assert!((100..=105).contains(&v));
    }

    #[test]
    fn resize_fixes_size() {
        let g = Gen::new(|size, _| size).resize(3);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(g.generate(1000, &mut rng), 3);
    }

    #[test]
    fn one_of_hits_all_values() {
        let g = one_of(vec![1, 2, 3]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[g.generate(0, &mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn frequency_respects_zero_weight() {
        let g = frequency(vec![(0, Gen::ret(1)), (5, Gen::ret(2))]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(g.generate(0, &mut rng), 2);
        }
    }

    #[test]
    fn backtrack_exhausts_failures() {
        let mut rng = SmallRng::seed_from_u64(0);
        let r: Option<i32> = backtrack(
            vec![
                (1, Box::new(|_: &mut dyn rand::RngCore| None) as _),
                (1, Box::new(|_: &mut dyn rand::RngCore| None) as _),
            ],
            &mut rng,
        );
        assert_eq!(r, None);
    }

    #[test]
    fn backtrack_finds_the_single_success() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let r = backtrack(
                vec![
                    (5, Box::new(|_: &mut dyn rand::RngCore| None) as _),
                    (1, Box::new(|_: &mut dyn rand::RngCore| Some(42)) as _),
                    (5, Box::new(|_: &mut dyn rand::RngCore| None) as _),
                ],
                &mut rng,
            );
            assert_eq!(r, Some(42));
        }
    }

    #[test]
    #[should_panic(expected = "one_of requires")]
    fn one_of_empty_panics() {
        let _ = one_of(Vec::<i32>::new());
    }
}
