//! Cross-cutting execution budgets for producers and checkers.
//!
//! Fuel (the `size` / `top_size` parameters threaded through every
//! producer) is a *semantic* bound: it is part of the paper's
//! definitions and determines **which** answer a checker or enumerator
//! computes. A [`Budget`] is an *operational* bound: it limits how much
//! work the execution layer may spend computing that answer — steps
//! taken, alternatives backtracked over, wall-clock time, and the size
//! of terms passed in — without changing the meaning of any answer that
//! is produced within the budget.
//!
//! Budgets are enforced through a [`Meter`]: a cheap, clonable handle
//! holding interior-mutable counters. Executors call
//! [`Meter::charge_step`] / [`Meter::charge_backtrack`] at their
//! work sites; the first failed charge *poisons* the meter, after which
//! every further charge fails immediately and executors unwind by
//! returning their ordinary "no answer" value (`None` for checkers,
//! stream end for enumerators). The entry point that armed the meter
//! then inspects [`Meter::exhaustion`] to distinguish a genuine answer
//! from a budget cut-off.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A budgeted resource (everything except wall-clock time, which is
/// reported separately as a deadline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Interpreter / lowered-closure steps.
    Steps,
    /// Abandoned alternatives in backtracking search.
    Backtracks,
    /// Constructor nodes in an argument term.
    TermSize,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::Steps => "steps",
            Resource::Backtracks => "backtracks",
            Resource::TermSize => "term size",
        })
    }
}

impl Resource {
    /// A JSON string literal (quoted, machine-readable identifier —
    /// `"steps"`, `"backtracks"`, `"term_size"`).
    pub fn to_json(&self) -> String {
        match self {
            Resource::Steps => r#""steps""#,
            Resource::Backtracks => r#""backtracks""#,
            Resource::TermSize => r#""term_size""#,
        }
        .to_string()
    }
}

/// Why a meter stopped admitting work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// A countable resource ran out.
    Budget(Resource),
    /// The wall-clock deadline passed.
    Deadline,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Budget(r) => write!(f, "{r} budget exhausted"),
            Exhaustion::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

impl Exhaustion {
    /// A JSON object tagging the cause:
    /// `{"kind":"budget","resource":"steps"}` or `{"kind":"deadline"}`.
    pub fn to_json(&self) -> String {
        match self {
            Exhaustion::Budget(r) => {
                format!(r#"{{"kind":"budget","resource":{}}}"#, r.to_json())
            }
            Exhaustion::Deadline => r#"{"kind":"deadline"}"#.to_string(),
        }
    }
}

/// Resource limits for one execution. `None` in any field means that
/// resource is unlimited; [`Budget::unlimited`] (also [`Default`])
/// limits nothing.
///
/// # Example
///
/// ```
/// use indrel_producers::budget::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_steps(10_000)
///     .with_deadline(Duration::from_millis(50));
/// assert!(!b.is_unlimited());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of executor steps.
    pub steps: Option<u64>,
    /// Maximum number of abandoned backtracking alternatives.
    pub backtracks: Option<u64>,
    /// Wall-clock limit, measured from when the meter is created.
    pub deadline: Option<Duration>,
    /// Maximum size ([`constructor nodes`](Resource::TermSize)) of any
    /// single argument term.
    pub max_term_size: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps executor steps.
    pub fn with_steps(mut self, steps: u64) -> Budget {
        self.steps = Some(steps);
        self
    }

    /// Caps abandoned backtracking alternatives.
    pub fn with_backtracks(mut self, backtracks: u64) -> Budget {
        self.backtracks = Some(backtracks);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the size of each argument term.
    pub fn with_max_term_size(mut self, size: u64) -> Budget {
        self.max_term_size = Some(size);
        self
    }

    /// True when no field imposes a limit.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// A JSON object with one key per field; unlimited fields are
    /// `null`, the deadline is in milliseconds.
    pub fn to_json(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "null".to_string(), |v| v.to_string())
        }
        format!(
            r#"{{"steps":{},"backtracks":{},"deadline_ms":{},"max_term_size":{}}}"#,
            opt(self.steps),
            opt(self.backtracks),
            self.deadline
                .map_or_else(|| "null".to_string(), |d| d.as_millis().to_string()),
            opt(self.max_term_size)
        )
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unlimited() {
            return f.write_str("unlimited");
        }
        let mut parts = Vec::new();
        if let Some(s) = self.steps {
            parts.push(format!("steps≤{s}"));
        }
        if let Some(b) = self.backtracks {
            parts.push(format!("backtracks≤{b}"));
        }
        if let Some(d) = self.deadline {
            parts.push(format!("deadline {d:?}"));
        }
        if let Some(t) = self.max_term_size {
            parts.push(format!("term size≤{t}"));
        }
        f.write_str(&parts.join(", "))
    }
}

/// How often [`Meter::charge_step`] polls the wall clock: checking
/// `Instant::now()` on every charge would dominate the cost of the
/// cheap charges, so the deadline is polled once per this many charges.
pub const DEADLINE_POLL_PERIOD: u32 = 16;

#[derive(Debug)]
struct MeterState {
    steps_left: Cell<u64>,
    backtracks_left: Cell<u64>,
    max_term_size: u64,
    deadline: Option<Instant>,
    charges: Cell<u32>,
    steps_used: Cell<u64>,
    backtracks_used: Cell<u64>,
    exhaustion: Cell<Option<Exhaustion>>,
}

/// A running account of a [`Budget`]. Clones share state (`Rc`), so one
/// meter can be threaded through nested executors and inspected at the
/// entry point afterwards.
///
/// A meter is *poisoned* by its first failed charge: every later charge
/// fails too, and [`Meter::exhaustion`] reports what ran out first.
#[derive(Clone, Debug)]
pub struct Meter {
    state: Rc<MeterState>,
}

impl Meter {
    /// Starts metering `budget`; the deadline clock starts now.
    pub fn new(budget: Budget) -> Meter {
        Meter {
            state: Rc::new(MeterState {
                steps_left: Cell::new(budget.steps.unwrap_or(u64::MAX)),
                backtracks_left: Cell::new(budget.backtracks.unwrap_or(u64::MAX)),
                max_term_size: budget.max_term_size.unwrap_or(u64::MAX),
                deadline: budget.deadline.map(|d| Instant::now() + d),
                charges: Cell::new(0),
                steps_used: Cell::new(0),
                backtracks_used: Cell::new(0),
                exhaustion: Cell::new(None),
            }),
        }
    }

    /// A meter that admits everything (still counts usage).
    pub fn unlimited() -> Meter {
        Meter::new(Budget::unlimited())
    }

    fn poison(&self, why: Exhaustion) -> bool {
        if self.state.exhaustion.get().is_none() {
            self.state.exhaustion.set(Some(why));
        }
        false
    }

    /// Polls the wall clock if a deadline is set; returns `false` (and
    /// poisons the meter) when the deadline has passed.
    pub fn check_deadline(&self) -> bool {
        if self.state.exhaustion.get().is_some() {
            return false;
        }
        match self.state.deadline {
            Some(deadline) if Instant::now() >= deadline => self.poison(Exhaustion::Deadline),
            _ => true,
        }
    }

    /// Charges one executor step. Returns `false` once the step budget
    /// or the deadline is exhausted (the deadline is polled every
    /// [`DEADLINE_POLL_PERIOD`] charges).
    #[inline]
    pub fn charge_step(&self) -> bool {
        let s = &*self.state;
        if s.exhaustion.get().is_some() {
            return false;
        }
        let left = s.steps_left.get();
        if left == 0 {
            return self.poison(Exhaustion::Budget(Resource::Steps));
        }
        s.steps_left.set(left - 1);
        s.steps_used.set(s.steps_used.get() + 1);
        if s.deadline.is_some() {
            let c = s.charges.get().wrapping_add(1);
            s.charges.set(c);
            if c.is_multiple_of(DEADLINE_POLL_PERIOD) {
                return self.check_deadline();
            }
        }
        true
    }

    /// Charges one abandoned backtracking alternative.
    #[inline]
    pub fn charge_backtrack(&self) -> bool {
        let s = &*self.state;
        if s.exhaustion.get().is_some() {
            return false;
        }
        let left = s.backtracks_left.get();
        if left == 0 {
            return self.poison(Exhaustion::Budget(Resource::Backtracks));
        }
        s.backtracks_left.set(left - 1);
        s.backtracks_used.set(s.backtracks_used.get() + 1);
        true
    }

    /// Admits or rejects an argument term of `size` constructor nodes.
    pub fn admit_term_size(&self, size: u64) -> bool {
        if self.state.exhaustion.get().is_some() {
            return false;
        }
        if size > self.state.max_term_size {
            return self.poison(Exhaustion::Budget(Resource::TermSize));
        }
        true
    }

    /// What poisoned the meter, if anything has.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.state.exhaustion.get()
    }

    /// True once any charge has failed.
    pub fn is_exhausted(&self) -> bool {
        self.state.exhaustion.get().is_some()
    }

    /// Steps successfully charged so far.
    pub fn steps_used(&self) -> u64 {
        self.state.steps_used.get()
    }

    /// Backtracks successfully charged so far.
    pub fn backtracks_used(&self) -> u64 {
        self.state.backtracks_used.get()
    }
}

// Exhaustion causes, encoded for the pool's first-wins atomic slot.
const EXH_NONE: u8 = 0;
const EXH_STEPS: u8 = 1;
const EXH_BACKTRACKS: u8 = 2;
const EXH_TERM_SIZE: u8 = 3;
const EXH_DEADLINE: u8 = 4;

fn decode_exhaustion(code: u8) -> Option<Exhaustion> {
    match code {
        EXH_NONE => None,
        EXH_STEPS => Some(Exhaustion::Budget(Resource::Steps)),
        EXH_BACKTRACKS => Some(Exhaustion::Budget(Resource::Backtracks)),
        EXH_TERM_SIZE => Some(Exhaustion::Budget(Resource::TermSize)),
        EXH_DEADLINE => Some(Exhaustion::Deadline),
        // Unreachable (panic audit): the exhaustion cell is private and
        // only ever stored with the four `EXH_*` codes above.
        _ => unreachable!("invalid exhaustion code {code}"),
    }
}

#[derive(Debug)]
struct PoolState {
    // `u64::MAX` means unlimited; drawn down by CAS otherwise.
    steps_left: AtomicU64,
    backtracks_left: AtomicU64,
    steps_used: AtomicU64,
    backtracks_used: AtomicU64,
    max_term_size: u64,
    deadline: Option<Instant>,
    // First-wins: set once by whichever worker hits a limit first.
    exhaustion: AtomicU8,
}

/// A thread-safe account of one shared [`Budget`], drawn from in chunks.
///
/// Where a [`Meter`] is a single-threaded running account (cheap `Cell`
/// counters, `Rc`-shared), a `BudgetPool` is its atomic counterpart for
/// parallel runs: clones share one pool (`Arc`), and each worker draws
/// a *chunk* of steps or backtracks into a thread-local cache with
/// [`BudgetPool::draw_steps`], charging the atomics once per chunk
/// instead of once per unit. Unused units are handed back with
/// [`BudgetPool::return_steps`] when the worker stops, so the
/// [`BudgetPool::steps_used`] totals are exact even though draws are
/// batched. The wall-clock deadline is polled per chunk refill
/// ([`BudgetPool::check_deadline`]), never on the per-unit hot path.
///
/// Like a meter, a pool is *poisoned* by the first failed draw (or
/// missed deadline): later draws return 0 immediately, and
/// [`BudgetPool::exhaustion`] reports what ran out first — first in
/// poisoning order, not wall-clock order of the underlying work.
///
/// # Example
///
/// ```
/// use indrel_producers::budget::{Budget, BudgetPool};
/// let pool = BudgetPool::new(Budget::unlimited().with_steps(100));
/// let got = pool.draw_steps(64); // a worker takes a chunk...
/// assert_eq!(got, 64);
/// pool.return_steps(got - 10); // ...uses 10, returns the rest.
/// assert_eq!(pool.steps_used(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct BudgetPool {
    state: Arc<PoolState>,
}

impl BudgetPool {
    /// Starts pooling `budget`; the deadline clock starts now.
    pub fn new(budget: Budget) -> BudgetPool {
        BudgetPool {
            state: Arc::new(PoolState {
                steps_left: AtomicU64::new(budget.steps.unwrap_or(u64::MAX)),
                backtracks_left: AtomicU64::new(budget.backtracks.unwrap_or(u64::MAX)),
                steps_used: AtomicU64::new(0),
                backtracks_used: AtomicU64::new(0),
                max_term_size: budget.max_term_size.unwrap_or(u64::MAX),
                deadline: budget.deadline.map(|d| Instant::now() + d),
                exhaustion: AtomicU8::new(EXH_NONE),
            }),
        }
    }

    /// A pool that admits everything (still counts usage).
    pub fn unlimited() -> BudgetPool {
        BudgetPool::new(Budget::unlimited())
    }

    fn poison(&self, code: u8) {
        let _ = self.state.exhaustion.compare_exchange(
            EXH_NONE,
            code,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    // Draws up to `want` units from `left`, provisionally counting the
    // grant as used (the worker gives back leftovers via `ret`).
    fn draw(&self, left: &AtomicU64, used: &AtomicU64, want: u64, code: u8) -> u64 {
        if self.is_exhausted() || want == 0 {
            return 0;
        }
        let mut cur = left.load(Ordering::Relaxed);
        loop {
            if cur == u64::MAX {
                // Unlimited: no draw-down, so no CAS contention.
                used.fetch_add(want, Ordering::Relaxed);
                return want;
            }
            let take = want.min(cur);
            if take == 0 {
                self.poison(code);
                return 0;
            }
            match left.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    used.fetch_add(take, Ordering::Relaxed);
                    return take;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn ret(&self, left: &AtomicU64, used: &AtomicU64, unused: u64) {
        if unused == 0 {
            return;
        }
        used.fetch_sub(unused, Ordering::Relaxed);
        if left.load(Ordering::Relaxed) != u64::MAX {
            left.fetch_add(unused, Ordering::Relaxed);
        }
    }

    /// Draws up to `want` steps; returns the number granted. A return
    /// of 0 (with `want > 0`) means the pool is exhausted and poisoned.
    pub fn draw_steps(&self, want: u64) -> u64 {
        let s = &*self.state;
        self.draw(&s.steps_left, &s.steps_used, want, EXH_STEPS)
    }

    /// Draws up to `want` backtracks; returns the number granted.
    pub fn draw_backtracks(&self, want: u64) -> u64 {
        let s = &*self.state;
        self.draw(&s.backtracks_left, &s.backtracks_used, want, EXH_BACKTRACKS)
    }

    /// Hands back steps drawn but not consumed, keeping usage exact.
    pub fn return_steps(&self, unused: u64) {
        let s = &*self.state;
        self.ret(&s.steps_left, &s.steps_used, unused);
    }

    /// Hands back backtracks drawn but not consumed.
    pub fn return_backtracks(&self, unused: u64) {
        let s = &*self.state;
        self.ret(&s.backtracks_left, &s.backtracks_used, unused);
    }

    /// Admits or rejects an argument term of `size` constructor nodes.
    pub fn admit_term_size(&self, size: u64) -> bool {
        if self.is_exhausted() {
            return false;
        }
        if size > self.state.max_term_size {
            self.poison(EXH_TERM_SIZE);
            return false;
        }
        true
    }

    /// Polls the wall clock if a deadline is set; returns `false` (and
    /// poisons the pool) when the deadline has passed. Intended to be
    /// called once per chunk refill, not per unit of work.
    pub fn check_deadline(&self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        match self.state.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.poison(EXH_DEADLINE);
                false
            }
            _ => true,
        }
    }

    /// What poisoned the pool, if anything has.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        decode_exhaustion(self.state.exhaustion.load(Ordering::Relaxed))
    }

    /// True once any draw has failed or the deadline has passed.
    pub fn is_exhausted(&self) -> bool {
        self.state.exhaustion.load(Ordering::Relaxed) != EXH_NONE
    }

    /// Steps drawn and not returned — exact once all workers have
    /// stopped and handed back their leftovers.
    pub fn steps_used(&self) -> u64 {
        self.state.steps_used.load(Ordering::Relaxed)
    }

    /// Backtracks drawn and not returned.
    pub fn backtracks_used(&self) -> u64 {
        self.state.backtracks_used.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let m = Meter::unlimited();
        for _ in 0..10_000 {
            assert!(m.charge_step());
        }
        assert!(m.charge_backtrack());
        assert!(m.admit_term_size(u64::MAX));
        assert_eq!(m.exhaustion(), None);
        assert_eq!(m.steps_used(), 10_000);
        assert_eq!(m.backtracks_used(), 1);
    }

    #[test]
    fn step_budget_poisons_at_limit() {
        let m = Meter::new(Budget::unlimited().with_steps(3));
        assert!(m.charge_step());
        assert!(m.charge_step());
        assert!(m.charge_step());
        assert!(!m.charge_step());
        assert_eq!(m.exhaustion(), Some(Exhaustion::Budget(Resource::Steps)));
        // Poisoned: every resource now refuses, but the cause is stable.
        assert!(!m.charge_backtrack());
        assert!(!m.admit_term_size(0));
        assert_eq!(m.exhaustion(), Some(Exhaustion::Budget(Resource::Steps)));
        assert_eq!(m.steps_used(), 3);
    }

    #[test]
    fn backtrack_budget_is_independent_of_steps() {
        let m = Meter::new(Budget::unlimited().with_backtracks(1));
        assert!(m.charge_step());
        assert!(m.charge_backtrack());
        assert!(!m.charge_backtrack());
        assert_eq!(
            m.exhaustion(),
            Some(Exhaustion::Budget(Resource::Backtracks))
        );
    }

    #[test]
    fn term_size_gate() {
        let m = Meter::new(Budget::unlimited().with_max_term_size(5));
        assert!(m.admit_term_size(5));
        assert!(!m.admit_term_size(6));
        assert_eq!(m.exhaustion(), Some(Exhaustion::Budget(Resource::TermSize)));
    }

    #[test]
    fn deadline_poisons_via_polling() {
        let m = Meter::new(Budget::unlimited().with_deadline(Duration::ZERO));
        // Deadline already passed; within DEADLINE_POLL_PERIOD charges
        // the poll must notice.
        let mut admitted = 0;
        while m.charge_step() {
            admitted += 1;
            assert!(admitted <= DEADLINE_POLL_PERIOD);
        }
        assert_eq!(m.exhaustion(), Some(Exhaustion::Deadline));
        assert!(!m.check_deadline());
    }

    #[test]
    fn clones_share_state() {
        let m = Meter::new(Budget::unlimited().with_steps(1));
        let n = m.clone();
        assert!(n.charge_step());
        assert!(!m.charge_step());
        assert_eq!(n.exhaustion(), Some(Exhaustion::Budget(Resource::Steps)));
    }

    #[test]
    fn budget_builder_and_display() {
        let b = Budget::unlimited()
            .with_steps(1)
            .with_backtracks(2)
            .with_deadline(Duration::from_millis(3))
            .with_max_term_size(4);
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
        assert_eq!(
            Exhaustion::Budget(Resource::Steps).to_string(),
            "steps budget exhausted"
        );
        assert_eq!(Exhaustion::Deadline.to_string(), "deadline exceeded");
        assert_eq!(Resource::TermSize.to_string(), "term size");
        assert_eq!(
            b.to_string(),
            "steps≤1, backtracks≤2, deadline 3ms, term size≤4"
        );
        assert_eq!(Budget::unlimited().to_string(), "unlimited");
    }

    #[test]
    fn pool_draws_and_returns_exactly() {
        let pool = BudgetPool::new(Budget::unlimited().with_steps(100));
        assert_eq!(pool.draw_steps(64), 64);
        assert_eq!(pool.draw_steps(64), 36); // partial final chunk
        assert_eq!(pool.draw_steps(1), 0); // dry → poisoned
        assert_eq!(pool.exhaustion(), Some(Exhaustion::Budget(Resource::Steps)));
        pool.return_steps(30);
        assert_eq!(pool.steps_used(), 70);
        // Poisoning is first-wins even after a return frees capacity.
        assert_eq!(pool.draw_steps(1), 0);
    }

    #[test]
    fn pool_unlimited_never_draws_down() {
        let pool = BudgetPool::unlimited();
        assert_eq!(pool.draw_steps(1 << 40), 1 << 40);
        assert_eq!(pool.draw_backtracks(7), 7);
        pool.return_backtracks(3);
        assert_eq!(pool.steps_used(), 1 << 40);
        assert_eq!(pool.backtracks_used(), 4);
        assert!(pool.check_deadline());
        assert!(pool.admit_term_size(u64::MAX));
        assert_eq!(pool.exhaustion(), None);
    }

    #[test]
    fn pool_deadline_and_term_size_poison() {
        let pool = BudgetPool::new(Budget::unlimited().with_deadline(Duration::ZERO));
        assert!(!pool.check_deadline());
        assert_eq!(pool.exhaustion(), Some(Exhaustion::Deadline));
        assert_eq!(pool.draw_steps(1), 0);

        let pool = BudgetPool::new(Budget::unlimited().with_max_term_size(5));
        assert!(pool.admit_term_size(5));
        assert!(!pool.admit_term_size(6));
        assert_eq!(
            pool.exhaustion(),
            Some(Exhaustion::Budget(Resource::TermSize))
        );
    }

    #[test]
    fn pool_accounting_is_exact_across_threads() {
        let pool = BudgetPool::new(Budget::unlimited().with_steps(10_000));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = pool.clone();
                scope.spawn(move || loop {
                    let got = pool.draw_steps(64);
                    if got == 0 {
                        break;
                    }
                    // Pretend to consume half of each chunk.
                    pool.return_steps(got - got.div_ceil(2));
                });
            }
        });
        // Every drawn-and-kept unit is accounted for, none lost or
        // double-counted, regardless of thread interleaving.
        assert_eq!(pool.steps_used(), 10_000);
        assert!(pool.is_exhausted());
    }

    #[test]
    fn budget_json_round_trippable_shapes() {
        let b = Budget::unlimited()
            .with_steps(10)
            .with_deadline(Duration::from_millis(250));
        assert_eq!(
            b.to_json(),
            r#"{"steps":10,"backtracks":null,"deadline_ms":250,"max_term_size":null}"#
        );
        assert_eq!(
            Budget::unlimited().to_json(),
            r#"{"steps":null,"backtracks":null,"deadline_ms":null,"max_term_size":null}"#
        );
        assert_eq!(Resource::TermSize.to_json(), r#""term_size""#);
        assert_eq!(
            Exhaustion::Budget(Resource::Backtracks).to_json(),
            r#"{"kind":"budget","resource":"backtracks"}"#
        );
        assert_eq!(Exhaustion::Deadline.to_json(), r#"{"kind":"deadline"}"#);
    }
}
