//! Checkers and unified producers (enumerators and random generators).
//!
//! §4 of *Computing Correctly with Inductive Relations* introduces
//! **producers**: bounded value-producing monadic actions that unify the
//! enumerator type `E A ≅ nat → list A` and the generator type
//! `G A ≅ nat → Rand → A`, each with `ret`, `bind`, and two failure
//! modes — `fail` (no inhabitant) and `fuel` (out of fuel). Checkers are
//! semi-decision procedures valued in the three-valued type
//! `option bool`:
//!
//! * `Some(true)` — the relation conclusively holds,
//! * `Some(false)` — it conclusively does not,
//! * `None` — more fuel is needed.
//!
//! This crate provides:
//!
//! * [`checker`] — `.&&`-style conjunction, negation, and the
//!   `backtracking` combinator of Figure 1,
//! * [`estream`] — lazy enumerator streams with an explicit out-of-fuel
//!   outcome ([`estream::Outcome::OutOfFuel`]), `enumerating`, and the
//!   mixed bind `bind_ec` that sequences an enumerator with a checker
//!   continuation,
//! * [`gen`] — first-class random generators and QuickChick's
//!   `backtrack` combinator,
//! * the converse mixed binds `bind_ce` / `bind_cg` that run a checker
//!   before continuing to produce,
//! * [`budget`] — cross-cutting execution budgets ([`budget::Budget`])
//!   and their running accounts ([`budget::Meter`]), orthogonal to the
//!   fuel discipline above; see that module's docs for the distinction,
//! * [`probe`] — search telemetry ([`probe::ExecProbe`]): structured
//!   events from the executors' charge sites, aggregated by
//!   [`probe::SearchStats`] or traced by [`probe::TraceProbe`],
//! * [`metrics`] — production telemetry: a lock-free
//!   [`metrics::MetricsRegistry`] of striped counters, gauges, and
//!   atomic log₂ histograms with deterministic JSON
//!   (schema `indrel.metrics/1`) and Prometheus text expositions.

#![warn(missing_docs)]

pub mod budget;
pub mod checker;
pub mod estream;
pub mod gen;
pub mod metrics;
pub mod probe;

pub use budget::{Budget, BudgetPool, Exhaustion, Meter, Resource, DEADLINE_POLL_PERIOD};
pub use checker::{backtracking, backtracking_metered, cand, cnot, cor, CheckResult};
pub use estream::{bind_ec, enumerating, EStream, Outcome};
pub use gen::{backtrack, Gen};
pub use metrics::{
    Counter, Determinism, Gauge, HistogramSnapshot, Log2Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use probe::{
    json_escape, Event, ExecKind, ExecProbe, FailSite, Hist, NameTable, PremiseStats,
    RequestOutcome, RuleStats, SearchStats, TraceProbe,
};

/// Sequences a checker before an enumerator continuation (`bind_ce`).
///
/// `Some(true)` continues; `Some(false)` fails (empty enumeration);
/// `None` is an out-of-fuel outcome.
///
/// # Example
///
/// ```
/// use indrel_producers::{bind_ce, EStream, Outcome};
/// let s = bind_ce(Some(true), || EStream::ret(7));
/// assert_eq!(s.outcomes(), vec![Outcome::Val(7)]);
/// let s = bind_ce(Some(false), || EStream::ret(7));
/// assert!(s.outcomes().is_empty());
/// let s = bind_ce(None, || EStream::ret(7));
/// assert_eq!(s.outcomes(), vec![Outcome::OutOfFuel]);
/// ```
pub fn bind_ce<T: 'static>(check: CheckResult, k: impl FnOnce() -> EStream<T>) -> EStream<T> {
    match check {
        Some(true) => k(),
        Some(false) => EStream::empty(),
        None => EStream::fuel(),
    }
}

/// Sequences a checker before a generator continuation (`bind_cg`).
///
/// Both failure modes collapse to `None` on the generator side, as
/// sampling cannot distinguish them.
pub fn bind_cg<T>(check: CheckResult, k: impl FnOnce() -> Option<T>) -> Option<T> {
    match check {
        Some(true) => k(),
        Some(false) | None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_cg_gates_generation() {
        assert_eq!(bind_cg(Some(true), || Some(1)), Some(1));
        assert_eq!(bind_cg(Some(false), || Some(1)), None);
        assert_eq!(bind_cg::<i32>(None, || Some(1)), None);
    }
}
