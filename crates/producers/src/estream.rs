//! Lazy enumerator streams — the `E` producer.
//!
//! An enumerator for `A` is conceptually `nat → list (option A)` in the
//! paper: a lazy list whose elements are either produced values or an
//! out-of-fuel marker (`fuelE`). Here the size parameter has already
//! been applied, leaving a lazy stream of [`Outcome`]s.

use crate::checker::CheckResult;

/// One element of an enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome<T> {
    /// A produced value.
    Val(T),
    /// The enumerator ran out of fuel on this branch (`fuelE`).
    OutOfFuel,
}

impl<T> Outcome<T> {
    /// Extracts the value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            Outcome::Val(v) => Some(v),
            Outcome::OutOfFuel => None,
        }
    }

    /// Maps over the produced value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Val(v) => Outcome::Val(f(v)),
            Outcome::OutOfFuel => Outcome::OutOfFuel,
        }
    }
}

/// A lazy enumerator stream.
///
/// Streams are consumed at most once; combinators take the stream by
/// value. Laziness matters: [`bind_ec`] short-circuits on the first
/// satisfying value, which is what keeps derived checkers that
/// enumerate existential witnesses (§3.1) efficient.
///
/// # Example
///
/// ```
/// use indrel_producers::{EStream, Outcome};
/// let s = EStream::from_values(0..3).bind(|n| {
///     if n % 2 == 0 { EStream::ret(n * 10) } else { EStream::empty() }
/// });
/// assert_eq!(s.values(), vec![0, 20]);
/// ```
pub struct EStream<T> {
    inner: Box<dyn Iterator<Item = Outcome<T>>>,
}

impl<T> std::fmt::Debug for EStream<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EStream").finish_non_exhaustive()
    }
}

impl<T: 'static> EStream<T> {
    /// The empty enumeration (`failE`).
    pub fn empty() -> EStream<T> {
        EStream {
            inner: Box::new(std::iter::empty()),
        }
    }

    /// A single out-of-fuel outcome (`fuelE`).
    pub fn fuel() -> EStream<T> {
        EStream {
            inner: Box::new(std::iter::once(Outcome::OutOfFuel)),
        }
    }

    /// The singleton enumeration (`retE`).
    pub fn ret(value: T) -> EStream<T> {
        EStream {
            inner: Box::new(std::iter::once(Outcome::Val(value))),
        }
    }

    /// An enumeration of the given values.
    pub fn from_values(values: impl IntoIterator<Item = T> + 'static) -> EStream<T>
    where
        <Vec<T> as IntoIterator>::IntoIter: 'static,
    {
        EStream {
            inner: Box::new(values.into_iter().map(Outcome::Val)),
        }
    }

    /// An enumeration from raw outcomes.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = Outcome<T>> + 'static) -> EStream<T> {
        EStream {
            inner: Box::new(outcomes.into_iter()),
        }
    }

    /// A lazily-forced stream: `thunk` runs only when the first element
    /// is demanded.
    pub fn defer(thunk: impl FnOnce() -> EStream<T> + 'static) -> EStream<T> {
        let mut slot = Some(thunk);
        let mut current: Option<EStream<T>> = None;
        EStream {
            inner: Box::new(std::iter::from_fn(move || {
                if current.is_none() {
                    current = Some(slot.take().expect("defer forced once")());
                }
                current.as_mut().expect("just set").inner.next()
            })),
        }
    }

    /// Monadic bind (`bindE`): enumerates all values of `self`, feeding
    /// each to `k` and concatenating the results; out-of-fuel outcomes
    /// pass through.
    pub fn bind<U: 'static>(self, mut k: impl FnMut(T) -> EStream<U> + 'static) -> EStream<U>
    where
        T: 'static,
    {
        let mut outer = self.inner;
        let mut current: Option<Box<dyn Iterator<Item = Outcome<U>>>> = None;
        EStream {
            inner: Box::new(std::iter::from_fn(move || loop {
                if let Some(cur) = &mut current {
                    if let Some(item) = cur.next() {
                        return Some(item);
                    }
                    current = None;
                }
                match outer.next()? {
                    Outcome::OutOfFuel => return Some(Outcome::OutOfFuel),
                    Outcome::Val(v) => current = Some(k(v).inner),
                }
            })),
        }
    }

    /// Maps over produced values.
    pub fn map<U: 'static>(self, mut f: impl FnMut(T) -> U + 'static) -> EStream<U>
    where
        T: 'static,
    {
        EStream {
            inner: Box::new(self.inner.map(move |o| o.map(&mut f))),
        }
    }

    /// Keeps only values satisfying the predicate.
    pub fn filter(self, mut pred: impl FnMut(&T) -> bool + 'static) -> EStream<T> {
        EStream {
            inner: Box::new(self.inner.filter(move |o| match o {
                Outcome::Val(v) => pred(v),
                Outcome::OutOfFuel => true,
            })),
        }
    }

    /// Collects all outcomes (forces the whole stream).
    pub fn outcomes(self) -> Vec<Outcome<T>> {
        self.inner.collect()
    }

    /// Collects all produced values, discarding fuel markers.
    pub fn values(self) -> Vec<T> {
        self.inner.filter_map(Outcome::value).collect()
    }

    /// Returns the first produced value, if any, without forcing the
    /// rest of the stream.
    pub fn first(mut self) -> Option<T> {
        self.inner.find_map(Outcome::value)
    }

    /// Takes at most `n` outcomes.
    pub fn take(self, n: usize) -> EStream<T> {
        EStream {
            inner: Box::new(self.inner.take(n)),
        }
    }

    /// Calls `f` on each produced value as it passes through, without
    /// consuming or reordering anything — the observation hook used by
    /// probe instrumentation to report produced terms.
    pub fn inspect(self, mut f: impl FnMut(&T) + 'static) -> EStream<T>
    where
        T: 'static,
    {
        EStream {
            inner: Box::new(self.inner.inspect(move |o| {
                if let Outcome::Val(v) = o {
                    f(v);
                }
            })),
        }
    }

    /// Charges one step on `meter` per element demanded. Once the meter
    /// is exhausted the stream ends immediately — deliberately *not* an
    /// [`Outcome::OutOfFuel`], which would read as "retry with more
    /// fuel"; the entry point that armed the meter distinguishes a
    /// genuinely empty enumeration from a budget cut-off by inspecting
    /// [`Meter::exhaustion`](crate::budget::Meter::exhaustion).
    pub fn metered(self, meter: crate::budget::Meter) -> EStream<T> {
        let mut inner = self.inner;
        EStream {
            inner: Box::new(std::iter::from_fn(move || {
                if !meter.charge_step() {
                    return None;
                }
                inner.next()
            })),
        }
    }
}

impl<T> Iterator for EStream<T> {
    type Item = Outcome<T>;

    fn next(&mut self) -> Option<Outcome<T>> {
        self.inner.next()
    }
}

/// The `enumerating` combinator of Figure 2: lazily concatenates the
/// enumerations produced by a list of thunked handlers.
pub fn enumerating<T: 'static, F>(handlers: impl IntoIterator<Item = F> + 'static) -> EStream<T>
where
    F: FnOnce() -> EStream<T>,
{
    let mut iter = handlers.into_iter();
    let mut current: Option<EStream<T>> = None;
    EStream {
        inner: Box::new(std::iter::from_fn(move || loop {
            if let Some(cur) = &mut current {
                if let Some(item) = cur.inner.next() {
                    return Some(item);
                }
                current = None;
            }
            current = Some(iter.next()?());
        })),
    }
}

/// The mixed bind `bind_ec` of §4: sequences an enumerator with a
/// checker continuation, iterating through all enumerated witnesses.
///
/// Returns `Some(true)` if any witness makes the continuation conclude
/// positively; `Some(false)` if every branch conclusively fails; `None`
/// if some branch ran out of fuel without a positive conclusion.
///
/// # Example
///
/// ```
/// use indrel_producers::{bind_ec, EStream};
/// // ∃ n ∈ {0,1,2}, n = 2 ?
/// let r = bind_ec(EStream::from_values(0..3), |n| Some(n == 2));
/// assert_eq!(r, Some(true));
/// ```
pub fn bind_ec<T: 'static>(stream: EStream<T>, mut k: impl FnMut(T) -> CheckResult) -> CheckResult {
    let mut needs_fuel = false;
    for outcome in stream.inner {
        match outcome {
            Outcome::OutOfFuel => needs_fuel = true,
            Outcome::Val(v) => match k(v) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => needs_fuel = true,
            },
        }
    }
    if needs_fuel {
        None
    } else {
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn ret_and_empty() {
        assert_eq!(EStream::ret(1).values(), vec![1]);
        assert!(EStream::<i32>::empty().values().is_empty());
        assert_eq!(EStream::<i32>::fuel().outcomes(), vec![Outcome::OutOfFuel]);
    }

    #[test]
    fn bind_concatenates() {
        let s = EStream::from_values(vec![1, 2]).bind(|n| EStream::from_values(vec![n, n * 10]));
        assert_eq!(s.values(), vec![1, 10, 2, 20]);
    }

    #[test]
    fn bind_passes_fuel_through() {
        let s = EStream::from_outcomes(vec![Outcome::Val(1), Outcome::OutOfFuel, Outcome::Val(2)])
            .bind(|n| EStream::ret(n + 1));
        assert_eq!(
            s.outcomes(),
            vec![Outcome::Val(2), Outcome::OutOfFuel, Outcome::Val(3)]
        );
    }

    #[test]
    fn enumerating_is_lazy() {
        let forced = Rc::new(Cell::new(0));
        let f1 = forced.clone();
        let f2 = forced.clone();
        let s = enumerating::<i32, Box<dyn FnOnce() -> EStream<i32>>>(vec![
            Box::new(move || {
                f1.set(f1.get() + 1);
                EStream::ret(1)
            }) as Box<dyn FnOnce() -> EStream<i32>>,
            Box::new(move || {
                f2.set(f2.get() + 1);
                EStream::ret(2)
            }),
        ]);
        let first = s.first();
        assert_eq!(first, Some(1));
        // Only the first handler was forced.
        assert_eq!(forced.get(), 1);
    }

    #[test]
    fn bind_ec_short_circuits() {
        let count = Rc::new(Cell::new(0));
        let c = count.clone();
        let r = bind_ec(EStream::from_values(0..100), move |n| {
            c.set(c.get() + 1);
            Some(n == 3)
        });
        assert_eq!(r, Some(true));
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn bind_ec_exhaustive_false() {
        let r = bind_ec(EStream::from_values(0..5), |n| Some(n > 100));
        assert_eq!(r, Some(false));
    }

    #[test]
    fn bind_ec_fuel_poisons_false() {
        let r = bind_ec(
            EStream::from_outcomes(vec![Outcome::Val(1), Outcome::OutOfFuel]),
            |_| Some(false),
        );
        assert_eq!(r, None);
        // ... but not a positive conclusion:
        let r = bind_ec(
            EStream::from_outcomes(vec![Outcome::OutOfFuel, Outcome::Val(1)]),
            |_| Some(true),
        );
        assert_eq!(r, Some(true));
    }

    #[test]
    fn defer_runs_once_on_demand() {
        let forced = Rc::new(Cell::new(0));
        let f = forced.clone();
        let s = EStream::defer(move || {
            f.set(f.get() + 1);
            EStream::from_values(vec![1, 2])
        });
        assert_eq!(forced.get(), 0);
        assert_eq!(s.values(), vec![1, 2]);
        assert_eq!(forced.get(), 1);
    }

    #[test]
    fn map_filter_take_first() {
        let s = EStream::from_values(0..10)
            .map(|n| n * 2)
            .filter(|n| n % 3 == 0);
        assert_eq!(s.take(3).values(), vec![0, 6, 12]);
        assert_eq!(EStream::from_values(5..9).first(), Some(5));
        assert_eq!(EStream::<i32>::empty().first(), None);
    }
}
