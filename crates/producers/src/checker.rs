//! Three-valued checker combinators.
//!
//! A checker result is an `Option<bool>`: `Some(true)` (holds),
//! `Some(false)` (does not hold), `None` (out of fuel). These
//! combinators implement the paper's `.&&`, `~`, and `backtracking`.

/// The result of a semi-decision procedure.
pub type CheckResult = Option<bool>;

/// The three-valued conjunction `.&&` of §2, with a thunked right-hand
/// side to avoid unnecessary evaluation:
///
/// ```text
/// Some false .&& _ = Some false
/// None       .&& _ = None
/// Some true  .&& b = b
/// ```
///
/// # Example
///
/// ```
/// use indrel_producers::cand;
/// assert_eq!(cand(Some(true), || Some(false)), Some(false));
/// assert_eq!(cand(Some(false), || panic!("not evaluated")), Some(false));
/// assert_eq!(cand(None, || panic!("not evaluated")), None);
/// ```
pub fn cand(a: CheckResult, b: impl FnOnce() -> CheckResult) -> CheckResult {
    match a {
        Some(false) => Some(false),
        None => None,
        Some(true) => b(),
    }
}

/// Three-valued negation `~`: swaps `Some(true)` and `Some(false)`,
/// leaves `None` unaffected (§5.2.1, "checker matching (negation)").
pub fn cnot(a: CheckResult) -> CheckResult {
    a.map(|b| !b)
}

/// The `backtracking` combinator of Figure 1.
///
/// Runs thunked checker options in order and returns:
/// * `Some(true)` as soon as any option does,
/// * `Some(false)` if **all** options do,
/// * `None` otherwise (some option needs more fuel).
///
/// # Example
///
/// ```
/// use indrel_producers::backtracking;
/// let r = backtracking([
///     || Some(false),
///     || Some(true),
///     || panic!("short-circuits"),
/// ]);
/// assert_eq!(r, Some(true));
/// ```
pub fn backtracking<F>(options: impl IntoIterator<Item = F>) -> CheckResult
where
    F: FnOnce() -> CheckResult,
{
    let mut needs_fuel = false;
    for opt in options {
        match opt() {
            Some(true) => return Some(true),
            Some(false) => {}
            None => needs_fuel = true,
        }
    }
    if needs_fuel {
        None
    } else {
        Some(false)
    }
}

/// [`backtracking`] with a backtrack budget: each option abandoned
/// (conclusively false or out of fuel) charges one backtrack on
/// `meter`. When a charge fails the search stops and returns `None` —
/// the caller that armed the meter tells this apart from a genuine
/// out-of-fuel by inspecting
/// [`Meter::exhaustion`](crate::budget::Meter::exhaustion).
pub fn backtracking_metered<F>(
    meter: &crate::budget::Meter,
    options: impl IntoIterator<Item = F>,
) -> CheckResult
where
    F: FnOnce() -> CheckResult,
{
    let mut needs_fuel = false;
    for opt in options {
        match opt() {
            Some(true) => return Some(true),
            Some(false) => {
                if !meter.charge_backtrack() {
                    return None;
                }
            }
            None => {
                needs_fuel = true;
                if !meter.charge_backtrack() {
                    return None;
                }
            }
        }
    }
    if needs_fuel {
        None
    } else {
        Some(false)
    }
}

/// Three-valued disjunction, used by derived checkers for decidable
/// disjunctive premises. Dual to [`cand`].
pub fn cor(a: CheckResult, b: impl FnOnce() -> CheckResult) -> CheckResult {
    match a {
        Some(true) => Some(true),
        None => None,
        Some(false) => b(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cand_truth_table() {
        assert_eq!(cand(Some(true), || Some(true)), Some(true));
        assert_eq!(cand(Some(true), || Some(false)), Some(false));
        assert_eq!(cand(Some(true), || None), None);
        assert_eq!(cand(Some(false), || Some(true)), Some(false));
        assert_eq!(cand(None, || Some(true)), None);
    }

    #[test]
    fn cor_truth_table() {
        assert_eq!(cor(Some(false), || Some(true)), Some(true));
        assert_eq!(cor(Some(true), || Some(false)), Some(true));
        assert_eq!(cor(Some(false), || None), None);
        assert_eq!(cor(None, || Some(true)), None);
    }

    #[test]
    fn cnot_swaps() {
        assert_eq!(cnot(Some(true)), Some(false));
        assert_eq!(cnot(Some(false)), Some(true));
        assert_eq!(cnot(None), None);
    }

    #[test]
    fn backtracking_all_false_is_false() {
        let r = backtracking([|| Some(false), || Some(false)]);
        assert_eq!(r, Some(false));
    }

    #[test]
    fn backtracking_any_none_without_true_is_none() {
        let r = backtracking([|| Some(false), || None, || Some(false)]);
        assert_eq!(r, None);
    }

    #[test]
    fn backtracking_true_wins_over_none() {
        let r = backtracking([|| None, || Some(true)]);
        assert_eq!(r, Some(true));
    }

    #[test]
    fn backtracking_empty_is_false() {
        let r = backtracking(Vec::<fn() -> CheckResult>::new());
        assert_eq!(r, Some(false));
    }

    #[test]
    fn backtracking_is_lazy_after_true() {
        use std::cell::Cell;
        let ran = Cell::new(false);
        let r = backtracking::<Box<dyn FnOnce() -> CheckResult>>([
            Box::new(|| Some(true)) as Box<dyn FnOnce() -> CheckResult>,
            Box::new(|| {
                ran.set(true);
                Some(false)
            }),
        ]);
        assert_eq!(r, Some(true));
        assert!(!ran.get());
    }
}
