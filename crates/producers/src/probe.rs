//! Search telemetry: structured events from the backtracking search.
//!
//! Derived checkers, enumerators, and generators are backtracking
//! search procedures, and both the paper's evaluation and real PBT use
//! depend on *where* that search spends its time — which rules are
//! attempted, where unification fails, how often generation backtracks,
//! and what the produced terms look like. A [`Meter`] answers "how
//! much" (and cuts the search off); an [`ExecProbe`] answers "where":
//! a sink for [`Event`]s emitted at the same executor sites the budget
//! work instruments, with a [`ExecProbe::NoProbe`] default that records
//! nothing and costs one flag check per site.
//!
//! Two concrete probes ship:
//!
//! * [`SearchStats`] — per-rule attempt/success/backtrack counters,
//!   choice-point-depth and produced-term-size histograms, and
//!   unification-failure sites, with a human-readable [`Display`] table
//!   and a deterministic, `serde`-free [`SearchStats::to_json`];
//! * [`TraceProbe`] — a bounded ring buffer of raw events, dumpable as
//!   JSON lines for post-mortem "why did this check return `None` /
//!   why is this generator slow" debugging.
//!
//! Probes identify relations and rules by [`RelId`] and rule index; a
//! [`NameTable`] (installed by whoever arms the probe) maps those to
//! source names for display and export.
//!
//! [`Meter`]: crate::budget::Meter
//! [`Display`]: std::fmt::Display

use indrel_term::RelId;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Which executor family emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecKind {
    /// The three-valued checker (Figure 1).
    Checker,
    /// The lazy enumerator (Figure 2).
    Enumerator,
    /// The random generator (QuickChick `backtrack`).
    Generator,
}

impl ExecKind {
    /// Lower-case label, used in output.
    pub fn label(self) -> &'static str {
        match self {
            ExecKind::Checker => "checker",
            ExecKind::Enumerator => "enumerator",
            ExecKind::Generator => "generator",
        }
    }
}

/// Where inside a rule a unification failure happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailSite {
    /// The conclusion's input patterns did not match the arguments.
    Inputs,
    /// Plan step `step` (an equality check or a reconciliation match)
    /// conclusively failed.
    Step(u32),
}

impl fmt::Display for FailSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailSite::Inputs => f.write_str("inputs"),
            FailSite::Step(i) => write!(f, "step{i}"),
        }
    }
}

/// One structured instrumentation event. Events are cheap (`Copy`) and
/// constructed lazily — an unarmed probe never builds them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// An executor entered a relation: one checker or generator
    /// recursion, or the creation of one enumerator stream. `depth` is
    /// the number of executor entries currently on the stack — the
    /// choice-point depth of this entry.
    Enter {
        /// The relation entered.
        rel: RelId,
        /// Which executor family.
        kind: ExecKind,
        /// Current nesting depth (0 for a top-level call).
        depth: u32,
    },
    /// A rule (handler) was attempted.
    RuleAttempt {
        /// The relation searched.
        rel: RelId,
        /// Handler index within the relation's plan.
        rule: u32,
    },
    /// A rule conclusively succeeded.
    RuleSuccess {
        /// The relation searched.
        rel: RelId,
        /// Handler index.
        rule: u32,
    },
    /// Unification conclusively failed inside a rule.
    UnifyFail {
        /// The relation searched.
        rel: RelId,
        /// Handler index.
        rule: u32,
        /// Which pattern/equality failed.
        site: FailSite,
    },
    /// A rule was abandoned and the search moved to an alternative —
    /// the same notion the budget layer charges as a backtrack.
    Backtrack {
        /// The relation searched.
        rel: RelId,
        /// The abandoned handler index.
        rule: u32,
    },
    /// A producer delivered an output tuple of `size` total constructor
    /// nodes.
    TermProduced {
        /// The producing relation.
        rel: RelId,
        /// Summed [`Value::size`](indrel_term::Value::size) of the
        /// output tuple.
        size: u64,
    },
    /// A tabling lookup returned a cached verdict; the search body was
    /// skipped entirely (one budget step was still charged).
    MemoHit {
        /// The relation whose verdict was cached.
        rel: RelId,
    },
    /// A tabling lookup found no usable entry; the search ran in full.
    MemoMiss {
        /// The relation looked up.
        rel: RelId,
    },
    /// The constructor dispatch index pruned `skipped` rules for one
    /// checker entry without attempting them.
    IndexSkip {
        /// The relation dispatched on.
        rel: RelId,
        /// Rules pruned (their input patterns provably cannot match).
        skipped: u32,
    },
    /// Admission control rejected a serving-layer request instead of
    /// queueing it (load shedding).
    Shed {
        /// The relation the rejected request targeted.
        rel: RelId,
    },
    /// A budget-exhausted serving-layer request was retried with an
    /// escalated budget.
    Retry {
        /// The relation the retried request targets.
        rel: RelId,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A shard of the concurrent memo table was retired after a writer
    /// panic; queries for it fall back to the unmemoized search.
    ShardDegraded {
        /// The retired shard's index.
        shard: u32,
    },
    /// A serving-layer request completed (decided, failed, or shed).
    /// Carries the same `(seed, index)`-style repro coordinates the
    /// request span records; emitted once per request when armed.
    Request {
        /// The relation the request queried.
        rel: RelId,
        /// The request's index within its session's stream — with the
        /// server's retry seed this reproduces the exact retry jitter.
        index: u64,
        /// How the request ended.
        outcome: RequestOutcome,
        /// Budget-escalation attempts consumed (1 = first try decided).
        attempts: u32,
        /// Budget steps actually spent across all attempts.
        steps: u64,
    },
    /// One premise (plan step) of one rule was evaluated — the cost
    /// attribution signal the profile-guided replanner consumes.
    Premise {
        /// The relation whose rule ran.
        rel: RelId,
        /// Handler index within the relation's plan.
        rule: u32,
        /// Plan-step index of the premise.
        step: u32,
        /// Search entries spent evaluating the premise (the same unit
        /// the budget layer charges as steps).
        cost: u64,
        /// `true` when the premise conclusively failed.
        failed: bool,
    },
    /// The profile-guided replanner recompiled one relation's checker
    /// into a *different* premise schedule (relations whose recompile
    /// reproduced the old plan do not emit this).
    Replanned {
        /// The relation whose plan changed.
        rel: RelId,
    },
}

/// How a serving-layer request ended, as carried by
/// [`Event::Request`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestOutcome {
    /// Decided: the relation holds.
    True,
    /// Decided: the relation does not hold.
    False,
    /// Undecided within fuel (`Ok(None)`).
    Unknown,
    /// Rejected by admission control before any search ran.
    Shed,
    /// Failed with a structured `ExecError` after all retries.
    Failed,
}

impl RequestOutcome {
    /// Lower-case label, used in output.
    pub fn label(self) -> &'static str {
        match self {
            RequestOutcome::True => "true",
            RequestOutcome::False => "false",
            RequestOutcome::Unknown => "unknown",
            RequestOutcome::Shed => "shed",
            RequestOutcome::Failed => "failed",
        }
    }
}

impl fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Maps [`RelId`]s and rule indices to source names, for display and
/// export. Installed into a probe by whoever arms it (the library knows
/// the names; the probe does not).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NameTable {
    /// Relation names, indexed by `RelId::index()`.
    pub rels: Vec<String>,
    /// Rule (constructor) names per relation, in handler order.
    pub rules: Vec<Vec<String>>,
}

impl NameTable {
    /// The relation's name, or a positional placeholder.
    pub fn rel(&self, rel: RelId) -> String {
        self.rels
            .get(rel.index())
            .cloned()
            .unwrap_or_else(|| format!("rel#{}", rel.index()))
    }

    /// A rule's name, or a positional placeholder.
    pub fn rule(&self, rel: RelId, rule: u32) -> String {
        self.rules
            .get(rel.index())
            .and_then(|rs| rs.get(rule as usize))
            .cloned()
            .unwrap_or_else(|| format!("rule#{rule}"))
    }
}

// Probe sinks tolerate panics in instrumented executors (the PBT layer
// isolates them with `catch_unwind`): stats updates never leave a sink
// in a torn state, so a poisoned lock is safe to keep reading.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Escapes a string for inclusion in a JSON string literal (without the
/// surrounding quotes). Covers the characters that can actually occur
/// in relation/rule names and panic messages; other control characters
/// are emitted as `\u00XX`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A histogram over `u64` samples with power-of-two buckets: bucket 0
/// holds the value 0, bucket `b > 0` holds `[2^(b-1), 2^b)`. Compact,
/// deterministic, and resolution-matched to term sizes and search
/// depths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

/// The bucket index for a sample: its bit length.
fn bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` range of bucket `b`.
fn bucket_range(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        (1 << (b - 1), (1u64 << b) - 1)
    }
}

impl Hist {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.total as f64
    }

    /// Folds another histogram into this one: bucket counts, totals,
    /// and sums add; maxima take the larger. Merging is associative and
    /// commutative, so per-worker histograms combine into the same
    /// aggregate regardless of merge order.
    pub fn merge(&mut self, other: &Hist) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| {
                let (lo, hi) = bucket_range(b);
                (lo, hi, *c)
            })
            .collect()
    }

    /// Deterministic JSON: totals plus the non-empty buckets.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets()
            .into_iter()
            .map(|(lo, hi, c)| format!(r#"{{"lo":{lo},"hi":{hi},"count":{c}}}"#))
            .collect();
        format!(
            r#"{{"total":{},"sum":{},"max":{},"buckets":[{}]}}"#,
            self.total,
            self.sum,
            self.max,
            buckets.join(",")
        )
    }
}

impl fmt::Display for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return f.write_str("(empty)");
        }
        let parts: Vec<String> = self
            .buckets()
            .into_iter()
            .map(|(lo, hi, c)| {
                if lo == hi {
                    format!("{lo}:{c}")
                } else {
                    format!("{lo}-{hi}:{c}")
                }
            })
            .collect();
        write!(
            f,
            "{} (n={}, mean {:.1}, max {})",
            parts.join(" "),
            self.total,
            self.mean(),
            self.max
        )
    }
}

/// Per-rule counters accumulated by [`SearchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Times the rule was attempted.
    pub attempts: u64,
    /// Times it conclusively succeeded.
    pub successes: u64,
    /// Times it was abandoned for an alternative.
    pub backtracks: u64,
}

/// Per-premise cost counters accumulated by [`SearchStats`] from
/// [`Event::Premise`] — the observed side of the estimated-vs-observed
/// cost table `explain()` renders, and the profile input
/// `Library::replan_from(stats)` will consume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PremiseStats {
    /// Times the premise was evaluated.
    pub evals: u64,
    /// Total search entries spent evaluating it.
    pub cost: u64,
    /// Times it conclusively failed.
    pub failures: u64,
}

impl PremiseStats {
    /// Mean search entries per evaluation (0 when never evaluated).
    pub fn mean_cost(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.cost as f64 / self.evals as f64
        }
    }

    /// Fraction of evaluations that failed (0 when never evaluated) —
    /// the selectivity signal for premise scheduling.
    pub fn failure_rate(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.failures as f64 / self.evals as f64
        }
    }
}

#[derive(Debug, Default)]
struct StatsState {
    names: NameTable,
    /// Keyed by `(rel index, rule index)` — `BTreeMap` so iteration
    /// (and hence all output) is deterministic.
    rules: BTreeMap<(u32, u32), RuleStats>,
    /// Unification-failure counts keyed by `(rel, rule, site)`.
    fails: BTreeMap<(u32, u32, FailSite), u64>,
    /// Premise cost attribution keyed by `(rel, rule, step)`.
    premises: BTreeMap<(u32, u32, u32), PremiseStats>,
    /// Executor entries per [`ExecKind`] (indexed by discriminant).
    enters: [u64; 3],
    depths: Hist,
    term_sizes: Hist,
    events: u64,
    memo_hits: u64,
    memo_misses: u64,
    /// Total rules pruned by the dispatch index (sum of `skipped`).
    index_skipped: u64,
    /// Serving-layer requests rejected by admission control.
    shed: u64,
    /// Serving-layer retries after budget exhaustion.
    retries: u64,
    /// Concurrent-memo shards retired after writer panics.
    shards_degraded: u64,
    /// Serving-layer requests completed (any outcome).
    requests: u64,
    /// Relations recompiled into a different plan by the replanner.
    replans: u64,
}

/// An aggregating probe: counters and histograms over the whole search,
/// with a [`Display`](fmt::Display) table and a deterministic
/// [`SearchStats::to_json`]. Clones share state (`Arc<Mutex>`, so the
/// sink is `Send + Sync`): keep a handle and read it after the armed
/// run finishes. For parallel runs, give each worker its own
/// accumulator and fold them together with [`SearchStats::merge_from`]
/// rather than sharing one sink — that keeps the hot path uncontended
/// and the aggregate deterministic.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    state: Arc<Mutex<StatsState>>,
}

impl SearchStats {
    /// An empty accumulator.
    pub fn new() -> SearchStats {
        SearchStats::default()
    }

    /// Installs the name table used for display and export.
    pub fn set_names(&self, names: NameTable) {
        lock(&self.state).names = names;
    }

    /// Records one event.
    pub fn record(&self, e: Event) {
        let mut s = lock(&self.state);
        s.events += 1;
        match e {
            Event::Enter { kind, depth, .. } => {
                s.enters[kind as usize] += 1;
                s.depths.record(u64::from(depth));
            }
            Event::RuleAttempt { rel, rule } => {
                s.rules
                    .entry((rel.index() as u32, rule))
                    .or_default()
                    .attempts += 1;
            }
            Event::RuleSuccess { rel, rule } => {
                s.rules
                    .entry((rel.index() as u32, rule))
                    .or_default()
                    .successes += 1;
            }
            Event::Backtrack { rel, rule } => {
                s.rules
                    .entry((rel.index() as u32, rule))
                    .or_default()
                    .backtracks += 1;
            }
            Event::UnifyFail { rel, rule, site } => {
                *s.fails.entry((rel.index() as u32, rule, site)).or_default() += 1;
            }
            Event::TermProduced { size, .. } => {
                s.term_sizes.record(size);
            }
            Event::MemoHit { .. } => s.memo_hits += 1,
            Event::MemoMiss { .. } => s.memo_misses += 1,
            Event::IndexSkip { skipped, .. } => s.index_skipped += u64::from(skipped),
            Event::Shed { .. } => s.shed += 1,
            Event::Retry { .. } => s.retries += 1,
            Event::ShardDegraded { .. } => s.shards_degraded += 1,
            Event::Request { .. } => s.requests += 1,
            Event::Premise {
                rel,
                rule,
                step,
                cost,
                failed,
            } => {
                let p = s
                    .premises
                    .entry((rel.index() as u32, rule, step))
                    .or_default();
                p.evals += 1;
                p.cost += cost;
                p.failures += u64::from(failed);
            }
            Event::Replanned { .. } => s.replans += 1,
        }
    }

    /// Folds another accumulator's counters into this one. All counters
    /// and histogram buckets add, so merging per-worker stats from a
    /// parallel run is associative and commutative — the aggregate is
    /// independent of worker scheduling and merge order. The name table
    /// of `self` is kept (`other`'s is ignored).
    pub fn merge_from(&self, other: &SearchStats) {
        // Take a snapshot first so merging a stats handle into itself
        // (or a clone sharing its state) cannot deadlock.
        let snap = {
            let o = lock(&other.state);
            (
                o.rules.clone(),
                o.fails.clone(),
                o.enters,
                o.depths.clone(),
                o.term_sizes.clone(),
                o.events,
                (o.memo_hits, o.memo_misses, o.index_skipped),
                (o.shed, o.retries, o.shards_degraded, o.requests),
                o.premises.clone(),
                o.replans,
            )
        };
        let mut s = lock(&self.state);
        for (key, r) in snap.0 {
            let dst = s.rules.entry(key).or_default();
            dst.attempts += r.attempts;
            dst.successes += r.successes;
            dst.backtracks += r.backtracks;
        }
        for (key, count) in snap.1 {
            *s.fails.entry(key).or_default() += count;
        }
        for (dst, src) in s.enters.iter_mut().zip(snap.2) {
            *dst += src;
        }
        s.depths.merge(&snap.3);
        s.term_sizes.merge(&snap.4);
        s.events += snap.5;
        s.memo_hits += snap.6 .0;
        s.memo_misses += snap.6 .1;
        s.index_skipped += snap.6 .2;
        s.shed += snap.7 .0;
        s.retries += snap.7 .1;
        s.shards_degraded += snap.7 .2;
        s.requests += snap.7 .3;
        for (key, p) in snap.8 {
            let dst = s.premises.entry(key).or_default();
            dst.evals += p.evals;
            dst.cost += p.cost;
            dst.failures += p.failures;
        }
        s.replans += snap.9;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        lock(&self.state).events
    }

    /// Executor entries for one family — the search's "steps" as the
    /// budget layer counts them (checker/generator recursions,
    /// enumerator stream creations).
    pub fn enters(&self, kind: ExecKind) -> u64 {
        lock(&self.state).enters[kind as usize]
    }

    /// Executor entries across all families.
    pub fn total_enters(&self) -> u64 {
        lock(&self.state).enters.iter().sum()
    }

    /// Rule attempts across all rules.
    pub fn total_attempts(&self) -> u64 {
        lock(&self.state).rules.values().map(|r| r.attempts).sum()
    }

    /// Rule successes across all rules.
    pub fn total_successes(&self) -> u64 {
        lock(&self.state).rules.values().map(|r| r.successes).sum()
    }

    /// Abandoned rules across all rules.
    pub fn total_backtracks(&self) -> u64 {
        lock(&self.state).rules.values().map(|r| r.backtracks).sum()
    }

    /// Unification failures across all sites.
    pub fn total_unify_fails(&self) -> u64 {
        lock(&self.state).fails.values().sum()
    }

    /// Tabling lookups answered from the cache.
    pub fn memo_hits(&self) -> u64 {
        lock(&self.state).memo_hits
    }

    /// Tabling lookups that fell through to the full search.
    pub fn memo_misses(&self) -> u64 {
        lock(&self.state).memo_misses
    }

    /// Rules pruned by the constructor dispatch index (summed over all
    /// checker entries).
    pub fn index_skipped(&self) -> u64 {
        lock(&self.state).index_skipped
    }

    /// Serving-layer requests rejected by admission control.
    pub fn shed(&self) -> u64 {
        lock(&self.state).shed
    }

    /// Serving-layer retries after budget exhaustion.
    pub fn retries(&self) -> u64 {
        lock(&self.state).retries
    }

    /// Concurrent-memo shards retired after writer panics.
    pub fn shards_degraded(&self) -> u64 {
        lock(&self.state).shards_degraded
    }

    /// Serving-layer requests completed (any outcome).
    pub fn requests(&self) -> u64 {
        lock(&self.state).requests
    }

    /// Relations the replanner recompiled into a different plan.
    pub fn replans(&self) -> u64 {
        lock(&self.state).replans
    }

    /// Premise cost attribution for one relation, as
    /// `(rule, step, stats)` in deterministic `(rule, step)` order.
    pub fn premise_stats(&self, rel: RelId) -> Vec<(u32, u32, PremiseStats)> {
        let want = rel.index() as u32;
        lock(&self.state)
            .premises
            .iter()
            .filter(|((r, _, _), _)| *r == want)
            .map(|((_, rule, step), p)| (*rule, *step, *p))
            .collect()
    }

    /// Total search entries attributed to premises, across all rules.
    pub fn total_premise_cost(&self) -> u64 {
        lock(&self.state).premises.values().map(|p| p.cost).sum()
    }

    /// All per-rule counters, as `(rel, rule, stats)` in deterministic
    /// `(rel, rule)` order — the bulk form of
    /// [`SearchStats::rule_stats`], used to fold rule counters into a
    /// metrics snapshot.
    pub fn all_rule_stats(&self) -> Vec<(RelId, u32, RuleStats)> {
        lock(&self.state)
            .rules
            .iter()
            .map(|((rel, rule), r)| (RelId::new(*rel as usize), *rule, *r))
            .collect()
    }

    /// All premise counters, as `(rel, rule, step, stats)` in
    /// deterministic `(rel, rule, step)` order — the bulk form of
    /// [`SearchStats::premise_stats`].
    pub fn all_premise_stats(&self) -> Vec<(RelId, u32, u32, PremiseStats)> {
        lock(&self.state)
            .premises
            .iter()
            .map(|((rel, rule, step), p)| (RelId::new(*rel as usize), *rule, *step, *p))
            .collect()
    }

    /// Counters for one `(rel, rule)` pair.
    pub fn rule_stats(&self, rel: RelId, rule: u32) -> RuleStats {
        lock(&self.state)
            .rules
            .get(&(rel.index() as u32, rule))
            .copied()
            .unwrap_or_default()
    }

    /// The choice-point-depth histogram.
    pub fn depth_hist(&self) -> Hist {
        lock(&self.state).depths.clone()
    }

    /// The produced-term-size histogram.
    pub fn term_size_hist(&self) -> Hist {
        lock(&self.state).term_sizes.clone()
    }

    /// The `n` most frequent unification-failure sites, as
    /// `(description, count)`, ties broken by site key so the order is
    /// deterministic.
    pub fn top_fail_sites(&self, n: usize) -> Vec<(String, u64)> {
        let s = lock(&self.state);
        let mut sites: Vec<(&(u32, u32, FailSite), &u64)> = s.fails.iter().collect();
        sites.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        sites
            .into_iter()
            .take(n)
            .map(|((rel, rule, site), count)| {
                let rel = RelId::new(*rel as usize);
                (
                    format!(
                        "{}.{}[{}]",
                        s.names.rel(rel),
                        s.names.rule(rel, *rule),
                        site
                    ),
                    *count,
                )
            })
            .collect()
    }

    /// Deterministic, `serde`-free JSON: every map is ordered, no
    /// timestamps — two runs with the same seed and budget produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let s = lock(&self.state);
        let rules: Vec<String> = s
            .rules
            .iter()
            .map(|((rel, rule), r)| {
                let id = RelId::new(*rel as usize);
                format!(
                    r#"{{"rel":"{}","rule":"{}","attempts":{},"successes":{},"backtracks":{}}}"#,
                    json_escape(&s.names.rel(id)),
                    json_escape(&s.names.rule(id, *rule)),
                    r.attempts,
                    r.successes,
                    r.backtracks
                )
            })
            .collect();
        let fails: Vec<String> = s
            .fails
            .iter()
            .map(|((rel, rule, site), count)| {
                let id = RelId::new(*rel as usize);
                format!(
                    r#"{{"rel":"{}","rule":"{}","site":"{}","count":{}}}"#,
                    json_escape(&s.names.rel(id)),
                    json_escape(&s.names.rule(id, *rule)),
                    site,
                    count
                )
            })
            .collect();
        let premises: Vec<String> = s
            .premises
            .iter()
            .map(|((rel, rule, step), p)| {
                let id = RelId::new(*rel as usize);
                format!(
                    r#"{{"rel":"{}","rule":"{}","step":{},"evals":{},"cost":{},"failures":{}}}"#,
                    json_escape(&s.names.rel(id)),
                    json_escape(&s.names.rule(id, *rule)),
                    step,
                    p.evals,
                    p.cost,
                    p.failures
                )
            })
            .collect();
        format!(
            concat!(
                r#"{{"events":{},"#,
                r#""enters":{{"checker":{},"enumerator":{},"generator":{}}},"#,
                r#""memo":{{"hits":{},"misses":{}}},"#,
                r#""index_skipped":{},"#,
                r#""serve":{{"requests":{},"retries":{},"shards_degraded":{},"shed":{}}},"#,
                r#""plan":{{"replans":{}}},"#,
                r#""rules":[{}],"#,
                r#""unify_fails":[{}],"#,
                r#""premises":[{}],"#,
                r#""depth":{},"#,
                r#""term_size":{}}}"#
            ),
            s.events,
            s.enters[ExecKind::Checker as usize],
            s.enters[ExecKind::Enumerator as usize],
            s.enters[ExecKind::Generator as usize],
            s.memo_hits,
            s.memo_misses,
            s.index_skipped,
            s.requests,
            s.retries,
            s.shards_degraded,
            s.shed,
            s.replans,
            rules.join(","),
            fails.join(","),
            premises.join(","),
            s.depths.to_json(),
            s.term_sizes.to_json()
        )
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = lock(&self.state);
        writeln!(
            f,
            "search stats: {} events ({} checker / {} enumerator / {} generator entries)",
            s.events,
            s.enters[ExecKind::Checker as usize],
            s.enters[ExecKind::Enumerator as usize],
            s.enters[ExecKind::Generator as usize]
        )?;
        writeln!(
            f,
            "  {:<24} {:>10} {:>10} {:>10}",
            "rule", "attempts", "successes", "backtracks"
        )?;
        for ((rel, rule), r) in &s.rules {
            let id = RelId::new(*rel as usize);
            writeln!(
                f,
                "  {:<24} {:>10} {:>10} {:>10}",
                format!("{}.{}", s.names.rel(id), s.names.rule(id, *rule)),
                r.attempts,
                r.successes,
                r.backtracks
            )?;
        }
        if s.memo_hits + s.memo_misses + s.index_skipped > 0 {
            writeln!(
                f,
                "  memo: {} hits / {} misses; index pruned {} rules",
                s.memo_hits, s.memo_misses, s.index_skipped
            )?;
        }
        if s.requests + s.shed + s.retries + s.shards_degraded > 0 {
            writeln!(
                f,
                "  serve: {} requests / {} shed / {} retries / {} degraded shard(s)",
                s.requests, s.shed, s.retries, s.shards_degraded
            )?;
        }
        if s.replans > 0 {
            writeln!(f, "  plan: {} relation(s) replanned", s.replans)?;
        }
        if !s.premises.is_empty() {
            writeln!(
                f,
                "  {:<30} {:>8} {:>10} {:>9} {:>8}",
                "premise", "evals", "cost", "mean", "fail%"
            )?;
            for ((rel, rule, step), p) in &s.premises {
                let id = RelId::new(*rel as usize);
                writeln!(
                    f,
                    "  {:<30} {:>8} {:>10} {:>9.1} {:>7.1}%",
                    format!(
                        "{}.{}[step{step}]",
                        s.names.rel(id),
                        s.names.rule(id, *rule)
                    ),
                    p.evals,
                    p.cost,
                    p.mean_cost(),
                    100.0 * p.failure_rate()
                )?;
            }
        }
        drop(s);
        let fails = self.top_fail_sites(5);
        if !fails.is_empty() {
            writeln!(f, "  top unification failures:")?;
            for (site, count) in fails {
                writeln!(f, "    {site:<30} {count:>8}")?;
            }
        }
        writeln!(f, "  depth:     {}", self.depth_hist())?;
        write!(f, "  term size: {}", self.term_size_hist())
    }
}

/// A bounded ring buffer of raw [`Event`]s with monotonically
/// increasing sequence numbers; when full, the oldest events are
/// dropped (and counted). Dump with [`TraceProbe::to_json_lines`].
#[derive(Clone, Debug)]
pub struct TraceProbe {
    state: Arc<Mutex<TraceState>>,
}

#[derive(Debug)]
struct TraceState {
    names: NameTable,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<(u64, Event)>,
}

impl TraceProbe {
    /// A trace buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceProbe {
        TraceProbe {
            state: Arc::new(Mutex::new(TraceState {
                names: NameTable::default(),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                buf: VecDeque::new(),
            })),
        }
    }

    /// Installs the name table used for export.
    pub fn set_names(&self, names: NameTable) {
        lock(&self.state).names = names;
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, e: Event) {
        let mut s = lock(&self.state);
        if s.buf.len() == s.capacity {
            s.buf.pop_front();
            s.dropped += 1;
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.buf.push_back((seq, e));
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.state).buf.len()
    }

    /// `true` when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }

    /// The ring's capacity (events retained before eviction starts).
    pub fn capacity(&self) -> usize {
        lock(&self.state).capacity
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.state).buf.iter().map(|(_, e)| *e).collect()
    }

    /// The buffered events as JSON lines (one object per line, oldest
    /// first), for post-mortem analysis with ordinary line tools.
    pub fn to_json_lines(&self) -> String {
        let s = lock(&self.state);
        let mut out = String::new();
        for (seq, e) in &s.buf {
            out.push_str(&event_json(*seq, e, &s.names));
            out.push('\n');
        }
        out
    }

    /// The whole ring as one JSON object — ring bookkeeping (capacity,
    /// eviction count, next sequence number) plus the buffered events,
    /// keys in sorted order. Use [`to_json_lines`](Self::to_json_lines)
    /// when line tools are the consumer.
    pub fn to_json(&self) -> String {
        let s = lock(&self.state);
        let events: Vec<String> = s
            .buf
            .iter()
            .map(|(seq, e)| event_json(*seq, e, &s.names))
            .collect();
        format!(
            r#"{{"capacity":{},"dropped":{},"events":[{}],"next_seq":{}}}"#,
            s.capacity,
            s.dropped,
            events.join(","),
            s.next_seq
        )
    }
}

impl fmt::Display for TraceProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = lock(&self.state);
        write!(
            f,
            "trace: {} buffered / {} capacity, {} dropped, next seq {}",
            s.buf.len(),
            s.capacity,
            s.dropped,
            s.next_seq
        )
    }
}

fn event_json(seq: u64, e: &Event, names: &NameTable) -> String {
    match e {
        Event::Enter { rel, kind, depth } => format!(
            r#"{{"seq":{seq},"event":"enter","rel":"{}","kind":"{}","depth":{depth}}}"#,
            json_escape(&names.rel(*rel)),
            kind.label()
        ),
        Event::RuleAttempt { rel, rule } => format!(
            r#"{{"seq":{seq},"event":"rule_attempt","rel":"{}","rule":"{}"}}"#,
            json_escape(&names.rel(*rel)),
            json_escape(&names.rule(*rel, *rule))
        ),
        Event::RuleSuccess { rel, rule } => format!(
            r#"{{"seq":{seq},"event":"rule_success","rel":"{}","rule":"{}"}}"#,
            json_escape(&names.rel(*rel)),
            json_escape(&names.rule(*rel, *rule))
        ),
        Event::UnifyFail { rel, rule, site } => format!(
            r#"{{"seq":{seq},"event":"unify_fail","rel":"{}","rule":"{}","site":"{site}"}}"#,
            json_escape(&names.rel(*rel)),
            json_escape(&names.rule(*rel, *rule))
        ),
        Event::Backtrack { rel, rule } => format!(
            r#"{{"seq":{seq},"event":"backtrack","rel":"{}","rule":"{}"}}"#,
            json_escape(&names.rel(*rel)),
            json_escape(&names.rule(*rel, *rule))
        ),
        Event::TermProduced { rel, size } => format!(
            r#"{{"seq":{seq},"event":"term_produced","rel":"{}","size":{size}}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::MemoHit { rel } => format!(
            r#"{{"seq":{seq},"event":"memo_hit","rel":"{}"}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::MemoMiss { rel } => format!(
            r#"{{"seq":{seq},"event":"memo_miss","rel":"{}"}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::IndexSkip { rel, skipped } => format!(
            r#"{{"seq":{seq},"event":"index_skip","rel":"{}","skipped":{skipped}}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::Shed { rel } => format!(
            r#"{{"seq":{seq},"event":"shed","rel":"{}"}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::Retry { rel, attempt } => format!(
            r#"{{"seq":{seq},"event":"retry","rel":"{}","attempt":{attempt}}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::ShardDegraded { shard } => {
            format!(r#"{{"seq":{seq},"event":"shard_degraded","shard":{shard}}}"#)
        }
        Event::Request {
            rel,
            index,
            outcome,
            attempts,
            steps,
        } => format!(
            r#"{{"seq":{seq},"event":"request","rel":"{}","index":{index},"outcome":"{outcome}","attempts":{attempts},"steps":{steps}}}"#,
            json_escape(&names.rel(*rel))
        ),
        Event::Premise {
            rel,
            rule,
            step,
            cost,
            failed,
        } => format!(
            r#"{{"seq":{seq},"event":"premise","rel":"{}","rule":"{}","step":{step},"cost":{cost},"failed":{failed}}}"#,
            json_escape(&names.rel(*rel)),
            json_escape(&names.rule(*rel, *rule))
        ),
        Event::Replanned { rel } => format!(
            r#"{{"seq":{seq},"event":"replanned","rel":"{}"}}"#,
            json_escape(&names.rel(*rel))
        ),
    }
}

/// The probe sink the executors dispatch to. Enum dispatch (not a trait
/// object) keeps the unarmed path a plain match on a unit variant.
#[derive(Clone, Debug, Default)]
pub enum ExecProbe {
    /// Record nothing (the default).
    #[default]
    NoProbe,
    /// Aggregate into a [`SearchStats`].
    Stats(SearchStats),
    /// Buffer raw events in a [`TraceProbe`].
    Trace(TraceProbe),
    /// Both at once.
    Both(SearchStats, TraceProbe),
}

impl ExecProbe {
    /// A probe feeding the given accumulator (clone-shared).
    pub fn stats(stats: &SearchStats) -> ExecProbe {
        ExecProbe::Stats(stats.clone())
    }

    /// A probe feeding the given trace buffer (clone-shared).
    pub fn trace(trace: &TraceProbe) -> ExecProbe {
        ExecProbe::Trace(trace.clone())
    }

    /// A probe feeding both sinks.
    pub fn both(stats: &SearchStats, trace: &TraceProbe) -> ExecProbe {
        ExecProbe::Both(stats.clone(), trace.clone())
    }

    /// `false` for [`ExecProbe::NoProbe`].
    pub fn is_armed(&self) -> bool {
        !matches!(self, ExecProbe::NoProbe)
    }

    /// Dispatches one event to the sink(s).
    #[inline]
    pub fn record(&self, e: Event) {
        match self {
            ExecProbe::NoProbe => {}
            ExecProbe::Stats(s) => s.record(e),
            ExecProbe::Trace(t) => t.record(e),
            ExecProbe::Both(s, t) => {
                s.record(e);
                t.record(e);
            }
        }
    }

    /// Installs `names` into every sink.
    pub fn set_names(&self, names: &NameTable) {
        match self {
            ExecProbe::NoProbe => {}
            ExecProbe::Stats(s) => s.set_names(names.clone()),
            ExecProbe::Trace(t) => t.set_names(names.clone()),
            ExecProbe::Both(s, t) => {
                s.set_names(names.clone());
                t.set_names(names.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> NameTable {
        NameTable {
            rels: vec!["bst".into()],
            rules: vec![vec!["bst_leaf".into(), "bst_node".into()]],
        }
    }

    #[test]
    fn hist_buckets_are_powers_of_two() {
        let mut h = Hist::default();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.total(), 9);
        assert_eq!(h.max(), 100);
        assert_eq!(
            h.buckets(),
            vec![
                (0, 0, 2),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (64, 127, 1)
            ]
        );
        assert!(h
            .to_json()
            .starts_with(r#"{"total":9,"sum":125,"max":100,"#));
        assert_eq!(format!("{}", Hist::default()), "(empty)");
    }

    #[test]
    fn stats_accumulate_and_export_deterministically() {
        let stats = SearchStats::new();
        stats.set_names(names());
        let rel = RelId::new(0);
        stats.record(Event::Enter {
            rel,
            kind: ExecKind::Checker,
            depth: 0,
        });
        stats.record(Event::RuleAttempt { rel, rule: 0 });
        stats.record(Event::UnifyFail {
            rel,
            rule: 0,
            site: FailSite::Inputs,
        });
        stats.record(Event::Backtrack { rel, rule: 0 });
        stats.record(Event::RuleAttempt { rel, rule: 1 });
        stats.record(Event::RuleSuccess { rel, rule: 1 });
        stats.record(Event::TermProduced { rel, size: 5 });
        stats.record(Event::MemoMiss { rel });
        stats.record(Event::MemoHit { rel });
        stats.record(Event::MemoHit { rel });
        stats.record(Event::IndexSkip { rel, skipped: 3 });
        assert_eq!(stats.events(), 11);
        assert_eq!(stats.memo_hits(), 2);
        assert_eq!(stats.memo_misses(), 1);
        assert_eq!(stats.index_skipped(), 3);
        assert_eq!(stats.total_attempts(), 2);
        assert_eq!(stats.total_successes(), 1);
        assert_eq!(stats.total_backtracks(), 1);
        assert_eq!(stats.total_unify_fails(), 1);
        assert_eq!(stats.enters(ExecKind::Checker), 1);
        assert_eq!(stats.rule_stats(rel, 1).successes, 1);
        assert_eq!(
            stats.top_fail_sites(3),
            vec![("bst.bst_leaf[inputs]".into(), 1)]
        );
        let json = stats.to_json();
        assert!(json.contains(r#""rel":"bst","rule":"bst_node","attempts":1,"successes":1"#));
        assert!(json.contains(r#""site":"inputs","count":1"#));
        assert!(json.contains(r#""memo":{"hits":2,"misses":1},"index_skipped":3"#));
        assert_eq!(json, stats.to_json(), "export is stable");
        let table = stats.to_string();
        assert!(table.contains("bst.bst_node"));
        assert!(table.contains("top unification failures"));
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let trace = TraceProbe::new(2);
        trace.set_names(names());
        let rel = RelId::new(0);
        for rule in 0..4 {
            trace.record(Event::RuleAttempt { rel, rule });
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 2);
        let lines = trace.to_json_lines();
        let lines: Vec<&str> = lines.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"seq":2,"event":"rule_attempt","rel":"bst","rule":"rule#2"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":3,"event":"rule_attempt","rel":"bst","rule":"rule#3"}"#
        );
    }

    #[test]
    fn probe_dispatch_and_arming() {
        let stats = SearchStats::new();
        let trace = TraceProbe::new(16);
        assert!(!ExecProbe::NoProbe.is_armed());
        let both = ExecProbe::both(&stats, &trace);
        assert!(both.is_armed());
        both.set_names(&names());
        both.record(Event::RuleAttempt {
            rel: RelId::new(0),
            rule: 0,
        });
        assert_eq!(stats.total_attempts(), 1);
        assert_eq!(trace.len(), 1);
        ExecProbe::NoProbe.record(Event::RuleAttempt {
            rel: RelId::new(0),
            rule: 0,
        });
        assert_eq!(stats.total_attempts(), 1, "NoProbe records nothing");
    }

    #[test]
    fn hist_merge_is_associative() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut c = Hist::default();
        for v in [0, 1, 2] {
            a.record(v);
        }
        for v in [3, 100] {
            b.record(v);
        }
        c.record(7);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.total(), 6);
        assert_eq!(ab_c.max(), 100);
        assert_eq!(ab_c.to_json(), a_bc.to_json());
    }

    #[test]
    fn stats_merge_equals_single_sink() {
        let rel = RelId::new(0);
        let events = [
            Event::Enter {
                rel,
                kind: ExecKind::Checker,
                depth: 0,
            },
            Event::RuleAttempt { rel, rule: 0 },
            Event::UnifyFail {
                rel,
                rule: 0,
                site: FailSite::Inputs,
            },
            Event::Backtrack { rel, rule: 0 },
            Event::RuleAttempt { rel, rule: 1 },
            Event::RuleSuccess { rel, rule: 1 },
            Event::TermProduced { rel, size: 5 },
            Event::MemoMiss { rel },
            Event::MemoHit { rel },
            Event::IndexSkip { rel, skipped: 2 },
        ];
        // One sink seeing everything...
        let whole = SearchStats::new();
        whole.set_names(names());
        for e in events {
            whole.record(e);
        }
        // ...equals two per-worker sinks merged, whichever way the
        // events were split.
        let left = SearchStats::new();
        left.set_names(names());
        let right = SearchStats::new();
        for (i, e) in events.iter().enumerate() {
            if i % 2 == 0 {
                left.record(*e);
            } else {
                right.record(*e);
            }
        }
        left.merge_from(&right);
        assert_eq!(left.to_json(), whole.to_json());
        assert_eq!(left.events(), whole.events());
    }

    #[test]
    fn stats_sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchStats>();
        assert_send_sync::<TraceProbe>();
        assert_send_sync::<ExecProbe>();
        assert_send_sync::<crate::budget::BudgetPool>();
    }

    #[test]
    fn serve_events_count_and_export() {
        let stats = SearchStats::new();
        stats.set_names(names());
        let rel = RelId::new(0);
        stats.record(Event::Shed { rel });
        stats.record(Event::Shed { rel });
        stats.record(Event::Retry { rel, attempt: 1 });
        stats.record(Event::ShardDegraded { shard: 5 });
        assert_eq!(stats.shed(), 2);
        assert_eq!(stats.retries(), 1);
        assert_eq!(stats.shards_degraded(), 1);
        let json = stats.to_json();
        assert!(
            json.contains(r#""serve":{"requests":0,"retries":1,"shards_degraded":1,"shed":2}"#),
            "{json}"
        );
        assert!(stats
            .to_string()
            .contains("serve: 0 requests / 2 shed / 1 retries"));
        // Merging folds the serve counters like every other counter.
        let other = SearchStats::new();
        other.record(Event::Retry { rel, attempt: 2 });
        stats.merge_from(&other);
        assert_eq!(stats.retries(), 2);
        // Trace export renders each variant.
        let trace = TraceProbe::new(8);
        trace.set_names(names());
        trace.record(Event::Shed { rel });
        trace.record(Event::Retry { rel, attempt: 3 });
        trace.record(Event::ShardDegraded { shard: 7 });
        let lines = trace.to_json_lines();
        assert!(lines.contains(r#""event":"shed","rel":"bst""#), "{lines}");
        assert!(lines.contains(r#""event":"retry","rel":"bst","attempt":3"#));
        assert!(lines.contains(r#""event":"shard_degraded","shard":7"#));
    }

    #[test]
    fn request_and_premise_events_accumulate_and_export() {
        let stats = SearchStats::new();
        stats.set_names(names());
        let rel = RelId::new(0);
        stats.record(Event::Request {
            rel,
            index: 3,
            outcome: RequestOutcome::True,
            attempts: 1,
            steps: 40,
        });
        stats.record(Event::Premise {
            rel,
            rule: 1,
            step: 2,
            cost: 5,
            failed: false,
        });
        stats.record(Event::Premise {
            rel,
            rule: 1,
            step: 2,
            cost: 7,
            failed: true,
        });
        assert_eq!(stats.requests(), 1);
        let ps = stats.premise_stats(rel);
        assert_eq!(
            ps,
            vec![(
                1,
                2,
                PremiseStats {
                    evals: 2,
                    cost: 12,
                    failures: 1
                }
            )]
        );
        assert_eq!(stats.total_premise_cost(), 12);
        assert_eq!(ps[0].2.mean_cost(), 6.0);
        assert_eq!(ps[0].2.failure_rate(), 0.5);
        let json = stats.to_json();
        assert!(
            json.contains(r#""serve":{"requests":1,"retries":0,"shards_degraded":0,"shed":0}"#),
            "{json}"
        );
        assert!(
            json.contains(
                r#""premises":[{"rel":"bst","rule":"bst_node","step":2,"evals":2,"cost":12,"failures":1}]"#
            ),
            "{json}"
        );
        assert!(stats.to_string().contains("bst.bst_node[step2]"), "{stats}");
        // Merging folds premises and requests like every other counter.
        let other = SearchStats::new();
        other.record(Event::Premise {
            rel,
            rule: 1,
            step: 2,
            cost: 3,
            failed: false,
        });
        other.record(Event::Request {
            rel,
            index: 4,
            outcome: RequestOutcome::Shed,
            attempts: 0,
            steps: 0,
        });
        stats.merge_from(&other);
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.premise_stats(rel)[0].2.cost, 15);
        // Trace export renders both variants.
        let trace = TraceProbe::new(8);
        trace.set_names(names());
        trace.record(Event::Request {
            rel,
            index: 9,
            outcome: RequestOutcome::Failed,
            attempts: 3,
            steps: 123,
        });
        trace.record(Event::Premise {
            rel,
            rule: 0,
            step: 1,
            cost: 2,
            failed: true,
        });
        let lines = trace.to_json_lines();
        assert!(
            lines.contains(
                r#""event":"request","rel":"bst","index":9,"outcome":"failed","attempts":3,"steps":123"#
            ),
            "{lines}"
        );
        assert!(
            lines.contains(
                r#""event":"premise","rel":"bst","rule":"bst_leaf","step":1,"cost":2,"failed":true"#
            ),
            "{lines}"
        );
    }

    #[test]
    fn trace_to_json_carries_ring_bookkeeping_in_sorted_key_order() {
        let trace = TraceProbe::new(2);
        trace.set_names(names());
        let rel = RelId::new(0);
        for rule in 0..3 {
            trace.record(Event::RuleAttempt { rel, rule });
        }
        assert_eq!(trace.capacity(), 2);
        let json = trace.to_json();
        assert!(
            json.starts_with(r#"{"capacity":2,"dropped":1,"events":[{"seq":1,"#),
            "{json}"
        );
        assert!(json.ends_with(r#"],"next_seq":3}"#), "{json}");
        // Keys appear in sorted order: capacity < dropped < events < next_seq.
        let positions: Vec<usize> = ["\"capacity\"", "\"dropped\"", "\"events\"", "\"next_seq\""]
            .iter()
            .map(|k| json.find(k).expect(k))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{json}");
        assert!(trace
            .to_string()
            .contains("2 buffered / 2 capacity, 1 dropped"));
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }
}
