//! Production telemetry: a dependency-free metrics registry.
//!
//! The serving layer (`indrel_core::serve`) needs continuous,
//! exportable counters — requests, memo hits, sheds, retries, degraded
//! shards, per-rule work — that an operator (or the profile-guided
//! replanner of ROADMAP item 2) can scrape while traffic flows. This
//! module provides the three cell kinds and the registry that
//! aggregates them:
//!
//! * [`Counter`] — a monotone sum, striped across cache lines so
//!   concurrent workers increment without contending (lock-free:
//!   one relaxed `fetch_add` per bump);
//! * [`Gauge`] — a point-in-time level (in-flight requests, table
//!   entries), a single atomic cell;
//! * [`Log2Histogram`] — the atomic, shareable counterpart of the
//!   probe layer's [`Hist`](crate::probe::Hist): power-of-two buckets
//!   (bucket 0 holds the value 0, bucket `b > 0` holds
//!   `[2^(b-1), 2^b)`), plus count/sum/max and bucket-interpolated
//!   [`quantile`](Log2Histogram::quantile) estimates — the one
//!   latency-percentile implementation shared by the runtime and the
//!   serve benchmark.
//!
//! Every metric is registered with a [`Determinism`] class. The repo's
//! standing invariant is that exports are byte-identical across runs
//! and thread counts for the same workload; wall-clock material
//! (latency histograms) can never satisfy that, so it is quarantined:
//! [`MetricsSnapshot::to_json`] renders both sections (schema
//! `indrel.metrics/1`), while
//! [`MetricsSnapshot::deterministic_json`] — the form byte-identity
//! tests compare — omits the wall-clock section entirely.
//! [`MetricsSnapshot::to_prometheus`] renders the conventional text
//! exposition for scraping.
//!
//! Registration takes a `Mutex` (cold path, once per metric name);
//! the returned `Arc` handles are what the hot path touches.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::probe::json_escape;

/// Whether a metric's value is a pure function of the workload (and so
/// participates in byte-identity checks) or depends on wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Determinism {
    /// Same workload ⇒ same value, at any thread count. Compared
    /// byte-for-byte by the determinism test suite.
    Deterministic,
    /// Timing-dependent (latencies, wall milliseconds). Excluded from
    /// [`MetricsSnapshot::deterministic_json`].
    WallClock,
}

impl Determinism {
    fn label(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::WallClock => "wall_clock",
        }
    }
}

/// Stripes per [`Counter`]. A small power of two: enough that the
/// serve worker counts we target (≤ 16) rarely collide, small enough
/// that summing on snapshot stays trivial.
const STRIPES: usize = 16;

/// One cache line per stripe so concurrent increments from different
/// workers do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

thread_local! {
    /// Each thread gets a sticky stripe index, assigned round-robin at
    /// first use — cheaper and more evenly spread than hashing thread
    /// ids on every bump.
    static STRIPE: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES
    };
}

/// A lock-free monotone counter, striped across cache lines. Bumps are
/// one relaxed `fetch_add` on the calling thread's stripe;
/// [`value`](Counter::value) sums the stripes (a snapshot-time
/// operation — it need not be atomic across stripes, counters only
/// grow).
#[derive(Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        STRIPE.with(|&i| self.stripes[i].0.fetch_add(n, Ordering::Relaxed));
    }

    /// The current sum over all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// A point-in-time level: a single atomic cell with set/add/sub. Used
/// for values that go both ways (in-flight requests) or are replaced
/// wholesale at snapshot time (table entries).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n` (callers keep adds and subs balanced;
    /// the cell is unsigned).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Bucket count: bit lengths 0..=64 cover every `u64`.
const HIST_BUCKETS: usize = 65;

/// The bucket index for a sample: its bit length — the same bucketing
/// as the probe layer's [`Hist`](crate::probe::Hist), so the two
/// render comparably.
#[inline]
fn bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` range of bucket `b`.
fn bucket_range(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else if b >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (b - 1), (1u64 << b) - 1)
    }
}

/// An atomic log₂ histogram, shareable across worker threads without a
/// lock: recording is three relaxed atomic ops (bucket, count+sum) plus
/// a `fetch_max`. Aggregation happens at snapshot time.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for export (bucket counts are read
    /// relaxed; concurrent recorders may be mid-update, which skews a
    /// snapshot by at most the in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Bucket-interpolated quantile estimate (`q` in `[0, 1]`); see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A frozen [`Log2Histogram`]: what snapshots and exports carry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| {
                let (lo, hi) = bucket_range(b);
                (lo, hi, *c)
            })
            .collect()
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile with linear interpolation inside the
    /// landing bucket, clamped to the observed max. `q` is a fraction
    /// (`0.5` = median, `0.99` = p99); returns 0 for an empty
    /// histogram. Log₂ buckets bound the relative error by 2×, which
    /// is the resolution the serve benchmark reports at.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < seen + c {
                let (lo, hi) = bucket_range(b);
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Deterministic JSON: totals plus the non-empty buckets, the same
    /// shape as [`Hist::to_json`](crate::probe::Hist::to_json).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lo, hi, c)| format!(r#"{{"lo":{lo},"hi":{hi},"count":{c}}}"#))
            .collect();
        format!(
            r#"{{"count":{},"sum":{},"max":{},"buckets":[{}]}}"#,
            self.count,
            self.sum,
            self.max,
            buckets.join(",")
        )
    }
}

// Registration is rare and idempotent; a poisoned registry lock only
// means some other registrant panicked mid-insert, which BTreeMap
// survives, so keep reading.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, (Arc<Counter>, Determinism)>,
    gauges: BTreeMap<String, (Arc<Gauge>, Determinism)>,
    histograms: BTreeMap<String, (Arc<Log2Histogram>, Determinism)>,
}

/// The metric registry: name → cell, with get-or-register semantics.
/// Clones share state; the hot path never touches the registry — it
/// holds the `Arc<Counter>`/`Arc<Gauge>`/`Arc<Log2Histogram>` handles
/// returned at registration and bumps those directly.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// The determinism class of the first registration wins.
    pub fn counter(&self, name: &str, det: Determinism) -> Arc<Counter> {
        lock(&self.inner)
            .counters
            .entry(name.to_string())
            .or_insert_with(|| (Arc::new(Counter::new()), det))
            .0
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str, det: Determinism) -> Arc<Gauge> {
        lock(&self.inner)
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| (Arc::new(Gauge::new()), det))
            .0
            .clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str, det: Determinism) -> Arc<Log2Histogram> {
        lock(&self.inner)
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (Arc::new(Log2Histogram::new()), det))
            .0
            .clone()
    }

    /// Freezes every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock(&self.inner);
        let mut snap = MetricsSnapshot::default();
        for (name, (c, det)) in &inner.counters {
            snap.insert_counter(name, c.value(), *det);
        }
        for (name, (g, det)) in &inner.gauges {
            snap.insert_gauge(name, g.value(), *det);
        }
        for (name, (h, det)) in &inner.histograms {
            snap.insert_histogram(name, h.snapshot(), *det);
        }
        snap
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A frozen, export-ready view of a registry (plus anything the caller
/// merges in with the `insert_*` methods — the server folds scraped
/// `MemoStats` and per-rule `SearchStats` totals into its snapshots
/// this way, so one document carries the whole picture).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, (u64, Determinism)>,
    gauges: BTreeMap<String, (u64, Determinism)>,
    histograms: BTreeMap<String, (HistogramSnapshot, Determinism)>,
}

impl MetricsSnapshot {
    /// An empty snapshot, for callers assembling one by hand.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Adds (or replaces) a counter value.
    pub fn insert_counter(&mut self, name: &str, value: u64, det: Determinism) {
        self.counters.insert(name.to_string(), (value, det));
    }

    /// Adds (or replaces) a gauge value.
    pub fn insert_gauge(&mut self, name: &str, value: u64, det: Determinism) {
        self.gauges.insert(name.to_string(), (value, det));
    }

    /// Adds (or replaces) a histogram.
    pub fn insert_histogram(&mut self, name: &str, h: HistogramSnapshot, det: Determinism) {
        self.histograms.insert(name.to_string(), (h, det));
    }

    /// Reads back a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|(v, _)| *v)
    }

    /// Reads back a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|(v, _)| *v)
    }

    /// Reads back a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name).map(|(h, _)| h)
    }

    fn section_json(&self, det: Determinism) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .filter(|(_, (_, d))| *d == det)
            .map(|(name, (v, _))| format!(r#""{}":{v}"#, json_escape(name)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .filter(|(_, (_, d))| *d == det)
            .map(|(name, (v, _))| format!(r#""{}":{v}"#, json_escape(name)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .filter(|(_, (_, d))| *d == det)
            .map(|(name, (h, _))| format!(r#""{}":{}"#, json_escape(name), h.to_json()))
            .collect();
        format!(
            r#"{{"counters":{{{}}},"gauges":{{{}}},"histograms":{{{}}}}}"#,
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }

    /// The full export: schema `indrel.metrics/1`, every map sorted by
    /// name, deterministic and wall-clock metrics in separate sections.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"schema":"indrel.metrics/1","deterministic":{},"wall_clock":{}}}"#,
            self.section_json(Determinism::Deterministic),
            self.section_json(Determinism::WallClock)
        )
    }

    /// The byte-identity form: schema plus the deterministic section
    /// only. Two runs of the same workload — at any thread count —
    /// must produce identical bytes here; the wall-clock section is
    /// deliberately absent.
    pub fn deterministic_json(&self) -> String {
        format!(
            r#"{{"schema":"indrel.metrics/1","deterministic":{}}}"#,
            self.section_json(Determinism::Deterministic)
        )
    }

    /// Prometheus-style text exposition: `# TYPE` headers, sanitized
    /// names, histograms as cumulative `_bucket{{le="…"}}` series plus
    /// `_sum`/`_count`. Deterministic metrics and wall-clock metrics
    /// render alike here (scrapers do their own timestamping).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, (v, _)) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, (v, _)) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, (h, _)) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (_, hi, c) in h.nonzero_buckets() {
                cumulative += c;
                out.push_str(&format!("{n}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metrics snapshot: {} counters, {} gauges, {} histograms",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        )?;
        for (name, (v, det)) in &self.counters {
            writeln!(f, "  {name:<40} {v:>12}  [{}]", det.label())?;
        }
        for (name, (v, det)) in &self.gauges {
            writeln!(f, "  {name:<40} {v:>12}  [{}]", det.label())?;
        }
        for (name, (h, det)) in &self.histograms {
            writeln!(
                f,
                "  {name:<40} n={} mean={:.1} p50={:.1} p99={:.1} max={}  [{}]",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
                det.label()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_stripes_sum() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        c.add(0);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn counter_concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn histogram_buckets_match_hist_semantics() {
        let h = Log2Histogram::new();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.sum, 125);
        assert_eq!(s.max, 100);
        assert_eq!(
            s.nonzero_buckets(),
            vec![
                (0, 0, 2),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (64, 127, 1)
            ]
        );
        assert!(s
            .to_json()
            .starts_with(r#"{"count":9,"sum":125,"max":100,"#));
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log₂ buckets bound the estimate within a factor of two.
        assert!((25_000.0..=100_000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 100_000.0, "clamped to observed max, got {p99}");
        assert_eq!(h.quantile(1.0), h.quantile(2.0), "q clamps to [0,1]");
    }

    #[test]
    fn registry_get_or_register_shares_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("serve.requests", Determinism::Deterministic);
        let b = reg.counter("serve.requests", Determinism::Deterministic);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2, "same cell under one name");
        reg.gauge("serve.inflight", Determinism::Deterministic)
            .set(3);
        reg.histogram("serve.latency_us", Determinism::WallClock)
            .record(150);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(2));
        assert_eq!(snap.gauge("serve.inflight"), Some(3));
        assert_eq!(snap.histogram("serve.latency_us").unwrap().count, 1);
    }

    #[test]
    fn snapshot_json_separates_determinism_classes() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests", Determinism::Deterministic)
            .add(7);
        reg.counter("serve.memo.hits", Determinism::Deterministic)
            .add(4);
        reg.histogram("serve.latency_us", Determinism::WallClock)
            .record(99);
        let snap = reg.snapshot();
        let full = snap.to_json();
        assert!(full.starts_with(r#"{"schema":"indrel.metrics/1","deterministic":"#));
        assert!(full.contains(r#""serve.latency_us":{"count":1"#), "{full}");
        // Sorted keys: memo.hits before requests.
        let hits = full.find("serve.memo.hits").unwrap();
        let reqs = full.find("serve.requests").unwrap();
        assert!(hits < reqs, "sorted key order");
        let det = snap.deterministic_json();
        assert!(!det.contains("wall_clock"), "{det}");
        assert!(!det.contains("latency"), "{det}");
        assert!(det.contains(r#""serve.requests":7"#), "{det}");
        assert_eq!(det, snap.deterministic_json(), "stable bytes");
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests", Determinism::Deterministic)
            .add(5);
        reg.gauge("serve.inflight", Determinism::Deterministic)
            .set(2);
        let h = reg.histogram("serve.latency_us", Determinism::WallClock);
        h.record(3);
        h.record(12);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 5\n"));
        assert!(text.contains("# TYPE serve_inflight gauge\nserve_inflight 2\n"));
        assert!(text.contains("# TYPE serve_latency_us histogram\n"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_latency_us_sum 15\nserve_latency_us_count 2\n"));
    }

    #[test]
    fn snapshot_insert_merges_external_totals() {
        let mut snap = MetricsSnapshot::new();
        snap.insert_counter("memo.hits", 11, Determinism::Deterministic);
        snap.insert_gauge("memo.entries", 4, Determinism::Deterministic);
        assert_eq!(snap.counter("memo.hits"), Some(11));
        assert!(snap.deterministic_json().contains(r#""memo.entries":4"#));
    }

    #[test]
    fn cells_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Log2Histogram>();
        assert_send_sync::<MetricsRegistry>();
    }
}
