//! Property-based tests (proptest) for the producer/checker
//! combinator laws the derivation relies on (§4).

use indrel_producers::{
    backtracking, bind_ce, bind_cg, bind_ec, cand, cnot, cor, enumerating, EStream, Outcome,
};
use proptest::prelude::*;

fn outcomes_strategy() -> impl Strategy<Value = Vec<Outcome<i32>>> {
    proptest::collection::vec(
        prop_oneof![(0..20i32).prop_map(Outcome::Val), Just(Outcome::OutOfFuel),],
        0..8,
    )
}

fn stream(v: Vec<Outcome<i32>>) -> EStream<i32> {
    EStream::from_outcomes(v)
}

proptest! {
    // Left identity: ret(a).bind(f) == f(a).
    #[test]
    fn bind_left_identity(a in 0..50i32, k in 0..5i32) {
        let f = move |x: i32| EStream::from_values(vec![x, x + k]);
        let lhs = EStream::ret(a).bind(f).outcomes();
        let rhs = f(a).outcomes();
        prop_assert_eq!(lhs, rhs);
    }

    // Right identity: m.bind(ret) == m.
    #[test]
    fn bind_right_identity(v in outcomes_strategy()) {
        let lhs = stream(v.clone()).bind(EStream::ret).outcomes();
        prop_assert_eq!(lhs, v);
    }

    // Associativity: (m.bind(f)).bind(g) == m.bind(|x| f(x).bind(g)).
    #[test]
    fn bind_associativity(v in outcomes_strategy(), k in 1..4i32) {
        let f = move |x: i32| EStream::from_values(vec![x, x + 1]);
        let g = move |x: i32| {
            if x % k == 0 {
                EStream::ret(x * 10)
            } else {
                EStream::empty()
            }
        };
        let lhs = stream(v.clone()).bind(f).bind(g).outcomes();
        let rhs = stream(v).bind(move |x| f(x).bind(g)).outcomes();
        prop_assert_eq!(lhs, rhs);
    }

    // Fuel outcomes are preserved by bind (the completeness proofs
    // depend on fuel markers never being silently dropped).
    #[test]
    fn bind_preserves_fuel_count(v in outcomes_strategy()) {
        let fuel_in = v.iter().filter(|o| matches!(o, Outcome::OutOfFuel)).count();
        let out = stream(v).bind(|x| EStream::from_values(vec![x])).outcomes();
        let fuel_out = out.iter().filter(|o| matches!(o, Outcome::OutOfFuel)).count();
        prop_assert_eq!(fuel_in, fuel_out);
    }

    // bind_ec agrees with the spec: Some(true) iff some value
    // satisfies; Some(false) iff no fuel marker and none satisfies.
    #[test]
    fn bind_ec_spec(v in outcomes_strategy(), modulus in 1..5i32) {
        let has_fuel = v.iter().any(|o| matches!(o, Outcome::OutOfFuel));
        let has_hit = v.iter().any(|o| matches!(o, Outcome::Val(x) if x % modulus == 0));
        let r = bind_ec(stream(v), |x| Some(x % modulus == 0));
        if has_hit {
            prop_assert_eq!(r, Some(true));
        } else if has_fuel {
            prop_assert_eq!(r, None);
        } else {
            prop_assert_eq!(r, Some(false));
        }
    }

    // enumerating == lazy concatenation.
    #[test]
    fn enumerating_is_concatenation(a in outcomes_strategy(), b in outcomes_strategy()) {
        let expected: Vec<Outcome<i32>> = a.iter().chain(b.iter()).copied().collect();
        let got = enumerating::<i32, Box<dyn FnOnce() -> EStream<i32>>>(vec![
            {
                let a = a.clone();
                Box::new(move || stream(a)) as Box<dyn FnOnce() -> EStream<i32>>
            },
            {
                let b = b.clone();
                Box::new(move || stream(b))
            },
        ])
        .outcomes();
        prop_assert_eq!(got, expected);
    }

    // De Morgan-ish duality between the three-valued connectives.
    #[test]
    fn cand_cor_duality(a in proptest::option::of(any::<bool>()),
                        b in proptest::option::of(any::<bool>())) {
        prop_assert_eq!(
            cnot(cand(a, || b)),
            cor(cnot(a), || cnot(b))
        );
    }

    // backtracking spec (§5.2): Some(true) iff some option returns it.
    #[test]
    fn backtracking_spec(opts in proptest::collection::vec(
        proptest::option::of(any::<bool>()), 0..7)) {
        let r = backtracking(opts.iter().map(|o| move || *o));
        let any_true = opts.contains(&Some(true));
        let any_none = opts.contains(&None);
        if any_true {
            prop_assert_eq!(r, Some(true));
        } else if any_none {
            prop_assert_eq!(r, None);
        } else {
            prop_assert_eq!(r, Some(false));
        }
    }

    // The mixed binds respect the checker verdict.
    #[test]
    fn mixed_binds_gate(check in proptest::option::of(any::<bool>()), payload in 0..100i32) {
        let ce = bind_ce(check, || EStream::ret(payload)).outcomes();
        match check {
            Some(true) => prop_assert_eq!(ce, vec![Outcome::Val(payload)]),
            Some(false) => prop_assert!(ce.is_empty()),
            None => prop_assert_eq!(ce, vec![Outcome::OutOfFuel]),
        }
        let cg = bind_cg(check, || Some(payload));
        prop_assert_eq!(cg.is_some(), check == Some(true));
    }
}
