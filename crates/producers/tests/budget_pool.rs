//! `BudgetPool` exact-accounting properties under concurrency.
//!
//! The parallel PBT runner's workers each hold a drawer that pulls
//! chunks of steps from a shared pool, consumes some, and hands the
//! leftover back. The whole budget story rests on two invariants:
//!
//! * **exact accounting** — `steps_used()` equals the sum over all
//!   workers of (granted − returned), i.e. no draw or return is ever
//!   lost to a race;
//! * **never over-spend** — outstanding grants never exceed the pool's
//!   capacity, under any interleaving.
//!
//! Each trial replays the *same* deterministic per-thread operation
//! scripts (seeded per thread) concurrently at 2, 4, and 8 threads and
//! sequentially as the reference ledger. With ample capacity the
//! concurrent outcome must equal the sequential ledger exactly; with a
//! tight capacity grants become interleaving-dependent, but the
//! conservation invariants must still hold bit-exactly.

use indrel_producers::{Budget, BudgetPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One scripted drawer operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Draw up to this many steps from the pool.
    Draw(u64),
    /// Consume this fraction (per mille) of currently held steps, then
    /// return the rest to the pool.
    Flush(u64),
}

/// The deterministic operation script for one thread of one trial.
fn script(trial: u64, thread: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64_stream(0xB0D6E7 ^ trial, thread);
    let len = rng.gen_range(20..60usize);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.6) {
                Op::Draw(rng.gen_range(1..=96))
            } else {
                Op::Flush(rng.gen_range(0..=1000))
            }
        })
        .collect()
}

/// Replays `ops` against `pool` the way the runner's drawer does:
/// draws accumulate into a held balance, flushes consume part of it
/// and return the remainder. Returns `(granted, returned)` totals.
fn run_script(pool: &BudgetPool, ops: &[Op]) -> (u64, u64) {
    let mut held = 0u64;
    let mut granted = 0u64;
    let mut returned = 0u64;
    for &op in ops {
        match op {
            Op::Draw(want) => {
                let got = pool.draw_steps(want);
                assert!(got <= want, "granted {got} > wanted {want}");
                held += got;
                granted += got;
            }
            Op::Flush(per_mille) => {
                let consumed = held * per_mille / 1000;
                let unused = held - consumed;
                pool.return_steps(unused);
                returned += unused;
                held = 0;
            }
        }
    }
    // Final drop: like `Drawer::drop`, hand back everything still held.
    pool.return_steps(held);
    returned += held;
    (granted, returned)
}

/// The sequential reference: same scripts, one thread, one pool.
fn sequential_ledger(trial: u64, threads: u64, capacity: Option<u64>) -> (u64, Vec<(u64, u64)>) {
    let mut budget = Budget::unlimited();
    if let Some(c) = capacity {
        budget = budget.with_steps(c);
    }
    let pool = BudgetPool::new(budget);
    let per_thread: Vec<(u64, u64)> = (0..threads)
        .map(|t| run_script(&pool, &script(trial, t)))
        .collect();
    (pool.steps_used(), per_thread)
}

fn concurrent_run(trial: u64, threads: u64, capacity: Option<u64>) -> (u64, Vec<(u64, u64)>) {
    let mut budget = Budget::unlimited();
    if let Some(c) = capacity {
        budget = budget.with_steps(c);
    }
    let pool = BudgetPool::new(budget);
    let per_thread = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let pool = &pool;
                scope.spawn(move || run_script(pool, &script(trial, t)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    (pool.steps_used(), per_thread)
}

#[test]
fn ample_capacity_matches_sequential_ledger_exactly() {
    // Capacity far above total demand: every draw is granted in full,
    // so concurrency must not change a single number.
    for &threads in &[2u64, 4, 8] {
        for trial in 0..8u64 {
            let (seq_used, seq_ledger) = sequential_ledger(trial, threads, None);
            let (par_used, par_ledger) = concurrent_run(trial, threads, None);
            assert_eq!(
                par_ledger, seq_ledger,
                "trial {trial}, {threads} threads: per-thread (granted, returned) diverged"
            );
            assert_eq!(
                par_used, seq_used,
                "trial {trial}, {threads} threads: pool usage diverged"
            );
            let net: u64 = par_ledger.iter().map(|(g, r)| g - r).sum();
            assert_eq!(par_used, net, "usage must equal sum of net grants");
        }
    }
}

#[test]
fn tight_capacity_conserves_steps_under_any_interleaving() {
    for &threads in &[2u64, 4, 8] {
        for trial in 0..12u64 {
            let capacity = 500 + trial * 97;
            let (par_used, par_ledger) = concurrent_run(trial, threads, Some(capacity));
            let granted: u64 = par_ledger.iter().map(|(g, _)| *g).sum();
            let returned: u64 = par_ledger.iter().map(|(_, r)| *r).sum();
            // Exact accounting: no draw or return lost to a race.
            assert_eq!(
                par_used,
                granted - returned,
                "trial {trial}, {threads} threads, cap {capacity}: \
                 pool says {par_used} used but ledger nets {}",
                granted - returned
            );
            // Never over-spend: net outstanding grants fit the budget.
            assert!(
                par_used <= capacity,
                "trial {trial}, {threads} threads: used {par_used} > capacity {capacity}"
            );
            // Never under-spend: the sequential ledger's total is
            // reachable, and a tight pool must grant at least as much
            // as the worst case where the whole capacity was consumed.
            let (seq_used, _) = sequential_ledger(trial, threads, Some(capacity));
            assert!(seq_used <= capacity);
        }
    }
}

#[test]
fn exhaustion_is_sticky_and_only_after_refusal() {
    // Unlimited pools never exhaust; tight pools exhaust exactly when
    // some draw comes back smaller than requested.
    let pool = BudgetPool::new(Budget::unlimited().with_steps(100));
    assert_eq!(pool.draw_steps(60), 60);
    assert!(!pool.is_exhausted());
    assert_eq!(pool.draw_steps(60), 40, "partial grant drains the pool");
    assert_eq!(pool.draw_steps(1), 0, "empty pool grants nothing");
    assert!(pool.is_exhausted(), "a refused draw poisons the pool");
    pool.return_steps(40);
    assert_eq!(pool.steps_used(), 60);
}
