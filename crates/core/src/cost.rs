//! The planner's cost model.
//!
//! The scheduler in [`crate::compile`] orders each rule's premises by
//! expected cost. The classic result for ordering independent filters
//! applies: running premise *i* (per-evaluation cost `c_i`, failure
//! probability `f_i`) before premise *j* is cheaper exactly when
//! `c_i/f_i < c_j/f_j` — the cheap, selective filters go first so the
//! expensive ones run only on tuples that survived. Absent a profile,
//! the model is seeded from [`Step::static_cost`](crate::Step) and a
//! neutral 50% failure prior, which reduces the ordering to ascending
//! static cost with source order breaking ties.
//!
//! A [`CostProfile`] replaces the prior with measured per-premise
//! means: [`crate::Library::replan_from`] aggregates a
//! [`SearchStats`](indrel_producers::SearchStats) snapshot into one,
//! keyed by `(relation, rule, source premise index)` so the numbers
//! stay attached to the *premise* across reorders (the plan records
//! the step → premise mapping in
//! [`Handler::premise_of`](crate::Handler)). Everything here is
//! integer arithmetic over `BTreeMap`s: the profile — and therefore
//! the replanned schedule — is a deterministic function of the stats
//! snapshot.

use std::collections::BTreeMap;

/// The neutral failure prior (permille) used when no profile entry
/// exists: 500‰ makes the unprofiled rank proportional to static cost.
pub const DEFAULT_FAILURE_PERMILLE: u64 = 500;

/// Measured cost of one source premise, aggregated from a stats
/// snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PremiseCost {
    /// Mean search entries per evaluation (integer floor).
    pub mean_cost: u64,
    /// Fraction of evaluations that conclusively failed, in permille.
    pub failure_permille: u64,
}

impl PremiseCost {
    /// The scheduler's rank: expected cost divided by failure
    /// probability (`c/f` scaled to stay in integers). Lower ranks
    /// schedule earlier; ties fall back to source order.
    pub fn rank(&self) -> u64 {
        self.mean_cost
            .max(1)
            .saturating_mul(1000)
            .checked_div(self.failure_permille + 1)
            .unwrap_or(u64::MAX)
    }

    /// The unprofiled seed for a step with the given static cost.
    pub fn seed(static_cost: u64) -> PremiseCost {
        PremiseCost {
            mean_cost: static_cost,
            failure_permille: DEFAULT_FAILURE_PERMILLE,
        }
    }

    /// Whether this observation diverges from the static estimate
    /// enough to justify recompiling the relation: a 2× mean-cost gap
    /// in either direction, or a failure rate at least 250‰ away from
    /// the neutral prior.
    pub fn diverges_from(&self, static_cost: u64) -> bool {
        let est = static_cost.max(1);
        let obs = self.mean_cost.max(1);
        obs >= est.saturating_mul(2)
            || est >= obs.saturating_mul(2)
            || self.failure_permille.abs_diff(DEFAULT_FAILURE_PERMILLE) >= 250
    }
}

/// A deterministic aggregate of measured premise costs, keyed by
/// `(relation index, rule index, source premise index)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostProfile {
    entries: BTreeMap<(u32, u32, u32), (u64, u64, u64)>,
}

impl CostProfile {
    /// An empty profile (every lookup misses).
    pub fn new() -> CostProfile {
        CostProfile::default()
    }

    /// Folds one observed premise record into the profile. Records for
    /// the same key accumulate (several plan steps can be attributed to
    /// one source premise), so the aggregate is order-independent.
    pub fn record(&mut self, rel: u32, rule: u32, premise: u32, evals: u64, cost: u64, fails: u64) {
        let e = self
            .entries
            .entry((rel, rule, premise))
            .or_insert((0, 0, 0));
        e.0 += evals;
        e.1 += cost;
        e.2 += fails;
    }

    /// The aggregated cost for one source premise, if it was ever
    /// evaluated.
    pub fn lookup(&self, rel: u32, rule: u32, premise: u32) -> Option<PremiseCost> {
        let &(evals, cost, fails) = self.entries.get(&(rel, rule, premise))?;
        if evals == 0 {
            return None;
        }
        Some(PremiseCost {
            mean_cost: cost / evals,
            failure_permille: fails.saturating_mul(1000) / evals,
        })
    }

    /// `true` when no premise was ever observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct premises observed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the observed keys in deterministic (sorted) order.
    pub fn keys(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_cheap_selective_first() {
        // Expensive premise that never fails vs cheap one that almost
        // always does: the classic adversarial pair.
        let slow = PremiseCost {
            mean_cost: 500,
            failure_permille: 0,
        };
        let selective = PremiseCost {
            mean_cost: 10,
            failure_permille: 950,
        };
        assert!(selective.rank() < slow.rank());
    }

    #[test]
    fn seed_reduces_to_static_cost_order() {
        let cheap = PremiseCost::seed(1);
        let call = PremiseCost::seed(10);
        let produce = PremiseCost::seed(25);
        assert!(cheap.rank() < call.rank());
        assert!(call.rank() < produce.rank());
    }

    #[test]
    fn divergence_gate() {
        // Matches the estimate: no replan.
        let ok = PremiseCost {
            mean_cost: 10,
            failure_permille: 500,
        };
        assert!(!ok.diverges_from(10));
        // 2× cost in either direction trips it.
        assert!(PremiseCost {
            mean_cost: 20,
            failure_permille: 500
        }
        .diverges_from(10));
        assert!(PremiseCost {
            mean_cost: 5,
            failure_permille: 500
        }
        .diverges_from(10));
        // So does a sharply selective (or sharply permissive) premise.
        assert!(PremiseCost {
            mean_cost: 10,
            failure_permille: 900
        }
        .diverges_from(10));
        assert!(PremiseCost {
            mean_cost: 10,
            failure_permille: 100
        }
        .diverges_from(10));
    }

    #[test]
    fn profile_accumulates_and_is_deterministic() {
        let mut a = CostProfile::new();
        a.record(0, 1, 2, 10, 100, 5);
        a.record(0, 1, 2, 10, 300, 15);
        let mut b = CostProfile::new();
        b.record(0, 1, 2, 10, 300, 15);
        b.record(0, 1, 2, 10, 100, 5);
        assert_eq!(a, b);
        let c = a.lookup(0, 1, 2).expect("recorded");
        assert_eq!(c.mean_cost, 20);
        assert_eq!(c.failure_permille, 1000);
        assert_eq!(a.lookup(0, 0, 0), None);
    }
}
