//! The compatibility analysis of §4.
//!
//! When the scheduler meets a premise `Q e₁ … eₙ`, it must decide, per
//! argument position, whether the argument can flow into a recursive or
//! external call as an input, should be produced as an output and
//! reconciled against a pattern, or requires some of its variables to be
//! instantiated first. This module classifies one argument at a time;
//! [`crate::compile`] combines the classifications into a schedule.

use crate::plan::{Plan, Step};
use indrel_term::{TermExpr, VarId};
use std::collections::BTreeSet;

/// Classification of a premise argument relative to the variables known
/// so far and the polarity of its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgClass {
    /// Fully instantiated at an input position: can be passed as is.
    KnownInput,
    /// Fully instantiated at an output position: the position will be
    /// produced and the produced value compared against the argument
    /// (the constant-`N` comparison of Figure 2's `TAdd` handler).
    KnownOutput,
    /// An output-position constructor term with unknown variables: the
    /// position will be produced and matched against the term as a
    /// pattern, binding `binds` (the `Arr t1' t2` reconciliation of the
    /// `TApp` handler).
    ProducibleOutput {
        /// Unknown variables the pattern match will bind.
        binds: BTreeSet<VarId>,
    },
    /// The argument needs `vars` instantiated before the premise can be
    /// scheduled: an input position containing unknowns, or a function
    /// call at an output position (the `⊥`/`(variables(e), -)` cases of
    /// the paper's `compatible`).
    NeedsInstantiation {
        /// Unknown variables to instantiate with unconstrained
        /// producers.
        vars: BTreeSet<VarId>,
    },
}

/// Classifies one premise argument.
///
/// `is_out` is the polarity of the argument's position in the call being
/// considered (for a recursive call, the plan's own mode; for an
/// external producer, whether the position still contains unknowns).
pub fn classify_arg(arg: &TermExpr, is_out: bool, known: &dyn Fn(VarId) -> bool) -> ArgClass {
    let unknowns: BTreeSet<VarId> = arg.variables().into_iter().filter(|v| !known(*v)).collect();
    if unknowns.is_empty() {
        return if is_out {
            ArgClass::KnownOutput
        } else {
            ArgClass::KnownInput
        };
    }
    if is_out && arg.to_pattern().is_some() {
        ArgClass::ProducibleOutput { binds: unknowns }
    } else {
        // Input positions must become fully known; function calls cannot
        // be produced into (`compatible vars x (f e) | output → ⊥`).
        ArgClass::NeedsInstantiation { vars: unknowns }
    }
}

/// Verifies the mode-admissibility invariant of a compiled [`Plan`]:
/// replaying each handler symbolically — input patterns bind their
/// variables, then each step may only *consume* variables already
/// known and *marks known* whatever it binds — every consumed variable
/// must be known at the point of use, and the handler's outputs must be
/// fully known at the end.
///
/// This is the safety net under the greedy scheduler of
/// [`crate::compile`]: however the cost model reorders premises, the
/// emitted straight-line schedule must still be one this analysis
/// accepts. The scheduler establishes the invariant constructively
/// (it only picks admissible premises); this function re-checks it
/// from the plan alone, so tests can fuzz arbitrary specs and assert
/// the compiler never emits a plan the analysis would reject.
///
/// # Errors
///
/// A description of the first violated step (handler, step index, and
/// the unknown variables consumed), or of outputs left unknown.
pub fn check_plan_admissible(plan: &Plan) -> Result<(), String> {
    for handler in &plan.handlers {
        let mut known: BTreeSet<VarId> = BTreeSet::new();
        for pat in &handler.input_pats {
            known.extend(pat.variables());
        }
        let fail = |step_idx: usize, what: &str, vars: BTreeSet<VarId>| {
            let names: Vec<&str> = vars
                .iter()
                .map(|v| {
                    handler
                        .slot_names
                        .get(v.index())
                        .map_or("?", |s| s.as_str())
                })
                .collect();
            Err(format!(
                "handler {} step {step_idx}: {what} consumes unknown variable(s) {}",
                handler.name,
                names.join(", ")
            ))
        };
        let unknowns = |known: &BTreeSet<VarId>, exprs: &[&TermExpr]| -> BTreeSet<VarId> {
            exprs
                .iter()
                .flat_map(|e| e.variables())
                .filter(|v| !known.contains(v))
                .collect()
        };
        for (step_idx, step) in handler.steps.iter().enumerate() {
            match step {
                Step::EqCheck { lhs, rhs, .. } => {
                    let u = unknowns(&known, &[lhs, rhs]);
                    if !u.is_empty() {
                        return fail(step_idx, step.kind_label(), u);
                    }
                }
                Step::EqBind { var, expr } => {
                    let u = unknowns(&known, &[expr]);
                    if !u.is_empty() {
                        return fail(step_idx, step.kind_label(), u);
                    }
                    known.insert(*var);
                }
                Step::MatchExpr { scrutinee, pattern } => {
                    let u = unknowns(&known, &[scrutinee]);
                    if !u.is_empty() {
                        return fail(step_idx, step.kind_label(), u);
                    }
                    known.extend(pattern.variables());
                }
                Step::CheckRel { args, .. } | Step::RecCheck { args } => {
                    let u = unknowns(&known, &args.iter().collect::<Vec<_>>());
                    if !u.is_empty() {
                        return fail(step_idx, step.kind_label(), u);
                    }
                }
                Step::ProduceExt {
                    in_args, out_slots, ..
                }
                | Step::ProduceRec { in_args, out_slots } => {
                    let u = unknowns(&known, &in_args.iter().collect::<Vec<_>>());
                    if !u.is_empty() {
                        return fail(step_idx, step.kind_label(), u);
                    }
                    known.extend(out_slots.iter().copied());
                }
                Step::Unconstrained { var, .. } => {
                    known.insert(*var);
                }
            }
        }
        let u: BTreeSet<VarId> = handler
            .outputs
            .iter()
            .flat_map(|e| e.variables())
            .filter(|v| !known.contains(v))
            .collect();
        if !u.is_empty() {
            return fail(handler.steps.len(), "ret", u);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_term::{CtorId, FunId};

    fn known_none(_: VarId) -> bool {
        false
    }

    fn known_all(_: VarId) -> bool {
        true
    }

    #[test]
    fn known_args_classify_by_polarity() {
        let e = TermExpr::NatLit(3);
        assert_eq!(classify_arg(&e, false, &known_none), ArgClass::KnownInput);
        assert_eq!(classify_arg(&e, true, &known_none), ArgClass::KnownOutput);
        let v = TermExpr::var(0);
        assert_eq!(classify_arg(&v, false, &known_all), ArgClass::KnownInput);
        assert_eq!(classify_arg(&v, true, &known_all), ArgClass::KnownOutput);
    }

    #[test]
    fn unknown_var_at_output_is_producible() {
        let v = TermExpr::var(0);
        assert_eq!(
            classify_arg(&v, true, &known_none),
            ArgClass::ProducibleOutput {
                binds: [VarId::new(0)].into_iter().collect()
            }
        );
    }

    #[test]
    fn unknown_var_at_input_needs_instantiation() {
        let v = TermExpr::var(0);
        assert_eq!(
            classify_arg(&v, false, &known_none),
            ArgClass::NeedsInstantiation {
                vars: [VarId::new(0)].into_iter().collect()
            }
        );
    }

    #[test]
    fn partially_known_ctor_term_binds_only_unknowns() {
        // Arr t1 t2 with t1 known, t2 unknown, at an output position.
        let e = TermExpr::ctor(CtorId::new(0), vec![TermExpr::var(0), TermExpr::var(1)]);
        let known = |v: VarId| v == VarId::new(0);
        assert_eq!(
            classify_arg(&e, true, &known),
            ArgClass::ProducibleOutput {
                binds: [VarId::new(1)].into_iter().collect()
            }
        );
    }

    #[test]
    fn function_call_at_output_is_bottom() {
        // f x at an output position: cannot produce into a function call.
        let e = TermExpr::Fun(FunId::new(0), vec![TermExpr::var(0)]);
        assert_eq!(
            classify_arg(&e, true, &known_none),
            ArgClass::NeedsInstantiation {
                vars: [VarId::new(0)].into_iter().collect()
            }
        );
    }

    use crate::mode::Mode;
    use crate::plan::{Handler, Plan, Step};
    use indrel_term::{Pattern, RelId};

    fn one_handler_plan(input_pats: Vec<Pattern>, steps: Vec<Step>) -> Plan {
        let premise_of = vec![None; steps.len()];
        Plan {
            rel: RelId::new(0),
            mode: Mode::checker(input_pats.len()),
            handlers: vec![Handler {
                rule_index: 0,
                name: "h".into(),
                recursive: false,
                nslots: 2,
                slot_names: vec!["x".into(), "y".into()],
                input_pats,
                steps,
                premise_of,
                outputs: vec![],
            }],
        }
    }

    #[test]
    fn admissible_plan_replays_clean() {
        // match x; let y := x; rec y — every consumption is downstream
        // of its binder.
        let plan = one_handler_plan(
            vec![Pattern::var(0)],
            vec![
                Step::EqBind {
                    var: VarId::new(1),
                    expr: TermExpr::var(0),
                },
                Step::RecCheck {
                    args: vec![TermExpr::var(1)],
                },
            ],
        );
        assert_eq!(check_plan_admissible(&plan), Ok(()));
    }

    #[test]
    fn consuming_an_unknown_variable_is_rejected() {
        // rec y before anything binds y.
        let plan = one_handler_plan(
            vec![Pattern::var(0)],
            vec![Step::RecCheck {
                args: vec![TermExpr::var(1)],
            }],
        );
        let err = check_plan_admissible(&plan).unwrap_err();
        assert!(err.contains("rec-check"), "{err}");
        assert!(err.contains('y'), "{err}");
    }

    #[test]
    fn producer_outputs_become_known() {
        // bind (y <- produce) then check on y: fine either way around
        // the producer, not before it.
        let produce = Step::ProduceExt {
            rel: RelId::new(1),
            mode: Mode::producer(1, &[0]),
            in_args: vec![],
            out_slots: vec![VarId::new(1)],
        };
        let use_y = Step::CheckRel {
            rel: RelId::new(1),
            args: vec![TermExpr::var(1)],
            negated: false,
        };
        let good = one_handler_plan(vec![Pattern::var(0)], vec![produce.clone(), use_y.clone()]);
        assert_eq!(check_plan_admissible(&good), Ok(()));
        let bad = one_handler_plan(vec![Pattern::var(0)], vec![use_y, produce]);
        assert!(check_plan_admissible(&bad).is_err());
    }
}
