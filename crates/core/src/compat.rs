//! The compatibility analysis of §4.
//!
//! When the scheduler meets a premise `Q e₁ … eₙ`, it must decide, per
//! argument position, whether the argument can flow into a recursive or
//! external call as an input, should be produced as an output and
//! reconciled against a pattern, or requires some of its variables to be
//! instantiated first. This module classifies one argument at a time;
//! [`crate::compile`] combines the classifications into a schedule.

use indrel_term::{TermExpr, VarId};
use std::collections::BTreeSet;

/// Classification of a premise argument relative to the variables known
/// so far and the polarity of its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgClass {
    /// Fully instantiated at an input position: can be passed as is.
    KnownInput,
    /// Fully instantiated at an output position: the position will be
    /// produced and the produced value compared against the argument
    /// (the constant-`N` comparison of Figure 2's `TAdd` handler).
    KnownOutput,
    /// An output-position constructor term with unknown variables: the
    /// position will be produced and matched against the term as a
    /// pattern, binding `binds` (the `Arr t1' t2` reconciliation of the
    /// `TApp` handler).
    ProducibleOutput {
        /// Unknown variables the pattern match will bind.
        binds: BTreeSet<VarId>,
    },
    /// The argument needs `vars` instantiated before the premise can be
    /// scheduled: an input position containing unknowns, or a function
    /// call at an output position (the `⊥`/`(variables(e), -)` cases of
    /// the paper's `compatible`).
    NeedsInstantiation {
        /// Unknown variables to instantiate with unconstrained
        /// producers.
        vars: BTreeSet<VarId>,
    },
}

/// Classifies one premise argument.
///
/// `is_out` is the polarity of the argument's position in the call being
/// considered (for a recursive call, the plan's own mode; for an
/// external producer, whether the position still contains unknowns).
pub fn classify_arg(arg: &TermExpr, is_out: bool, known: &dyn Fn(VarId) -> bool) -> ArgClass {
    let unknowns: BTreeSet<VarId> = arg.variables().into_iter().filter(|v| !known(*v)).collect();
    if unknowns.is_empty() {
        return if is_out {
            ArgClass::KnownOutput
        } else {
            ArgClass::KnownInput
        };
    }
    if is_out && arg.to_pattern().is_some() {
        ArgClass::ProducibleOutput { binds: unknowns }
    } else {
        // Input positions must become fully known; function calls cannot
        // be produced into (`compatible vars x (f e) | output → ⊥`).
        ArgClass::NeedsInstantiation { vars: unknowns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_term::{CtorId, FunId};

    fn known_none(_: VarId) -> bool {
        false
    }

    fn known_all(_: VarId) -> bool {
        true
    }

    #[test]
    fn known_args_classify_by_polarity() {
        let e = TermExpr::NatLit(3);
        assert_eq!(classify_arg(&e, false, &known_none), ArgClass::KnownInput);
        assert_eq!(classify_arg(&e, true, &known_none), ArgClass::KnownOutput);
        let v = TermExpr::var(0);
        assert_eq!(classify_arg(&v, false, &known_all), ArgClass::KnownInput);
        assert_eq!(classify_arg(&v, true, &known_all), ArgClass::KnownOutput);
    }

    #[test]
    fn unknown_var_at_output_is_producible() {
        let v = TermExpr::var(0);
        assert_eq!(
            classify_arg(&v, true, &known_none),
            ArgClass::ProducibleOutput {
                binds: [VarId::new(0)].into_iter().collect()
            }
        );
    }

    #[test]
    fn unknown_var_at_input_needs_instantiation() {
        let v = TermExpr::var(0);
        assert_eq!(
            classify_arg(&v, false, &known_none),
            ArgClass::NeedsInstantiation {
                vars: [VarId::new(0)].into_iter().collect()
            }
        );
    }

    #[test]
    fn partially_known_ctor_term_binds_only_unknowns() {
        // Arr t1 t2 with t1 known, t2 unknown, at an output position.
        let e = TermExpr::ctor(CtorId::new(0), vec![TermExpr::var(0), TermExpr::var(1)]);
        let known = |v: VarId| v == VarId::new(0);
        assert_eq!(
            classify_arg(&e, true, &known),
            ArgClass::ProducibleOutput {
                binds: [VarId::new(1)].into_iter().collect()
            }
        );
    }

    #[test]
    fn function_call_at_output_is_bottom() {
        // f x at an output position: cannot produce into a function call.
        let e = TermExpr::Fun(FunId::new(0), vec![TermExpr::var(0)]);
        assert_eq!(
            classify_arg(&e, true, &known_none),
            ArgClass::NeedsInstantiation {
                vars: [VarId::new(0)].into_iter().collect()
            }
        );
    }
}
