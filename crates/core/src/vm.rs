//! Register-based bytecode backend for derived checkers.
//!
//! The third execution strategy for a checker plan, after the
//! interpreter ([`crate::exec`]) and the closure tree ([`crate::lower`]):
//! at [`LibraryBuilder::build`] time each lowered checker is *also*
//! compiled — when every construct is supported — into a flat array of
//! register-machine instructions ([`VmProgram`]), and sessions that
//! opted in via [`Library::with_vm`] execute that array in a single
//! threaded dispatch loop instead of walking the closure tree.
//!
//! The instruction set, register model, compilability rules, and the
//! parity contract with the closure backend are documented in
//! DESIGN.md § "Bytecode VM" — that chapter is the reference; this
//! module is its implementation. The contract in one sentence: for
//! every reachable input, the VM produces the same verdict, charges the
//! same [`Budget`] sites, and emits the same probe [`Event`] sequence
//! as the closure backend, so every differential oracle and telemetry
//! consumer works unchanged on compiled sessions.
//!
//! Compilation is total over the checker plans the deriver emits today;
//! [`compile_vm`] still returns `None` (per-relation fallback to the
//! closure tree) on any construct outside its register discipline, so
//! new plan features degrade to the slow path instead of breaking.
//!
//! # Register discipline
//!
//! A handler frame is a dense `Vec<Value>`: slots `0..nslots` are the
//! plan's variables (same numbering as [`Env`]), higher registers are
//! compiler temporaries. Compilation enforces *single assignment*: each
//! register has exactly one writing instruction, and every read is
//! preceded by that write on the (single) straight-line path. Binding a
//! variable that requires no computation — a bare `Var` input pattern,
//! a variable-to-variable `EqBind` — emits nothing at all: the compiler
//! *aliases* the variable to the location it matched ([`Src`], an
//! argument position or an already-written register), so reads go to
//! the original value and no `Copy` runs at execution time. Single
//! assignment is also what lets the backtracking fan-out instructions
//! (`ProduceExt`, `Unconstrained`) re-enter the instruction suffix per
//! candidate without cloning the frame — every register the suffix
//! reads is either rewritten by the suffix on each re-run or was
//! written before the fan-out point and never changes — where the
//! closure backend clones its `Env` per candidate.
//!
//! # Two monomorphized loops
//!
//! The executor is compiled twice from one body (a `const PAR: bool`
//! parameter): a *parity* loop that replays the closure backend's
//! budget charges, probe events, and memo-gate bookkeeping exactly, and
//! a *fast* loop with every such site compiled out, entered only when
//! no meter, probe, memo table, or shared serving table is armed — a
//! state in which the bookkeeping is unobservable, so the two loops
//! are indistinguishable except in speed. See
//! [`Library::run_vm_search`] for the entry gate.
//!
//! [`LibraryBuilder::build`]: crate::LibraryBuilder::build
//! [`Library::with_vm`]: crate::Library::with_vm
//! [`Budget`]: crate::Budget
//! [`Env`]: indrel_term::Env

use crate::library::{CheckerImpl, Library};
use crate::lower::LoweredChecker;
use crate::mode::Mode;
use crate::plan::{Handler, Plan, Step};
use indrel_producers::probe::{Event, ExecKind, FailSite};
use indrel_producers::{bind_ec, cnot, Meter};
use indrel_term::{CtorId, FunId, Pattern, RelId, TermExpr, TypeExpr, Value, VarId};

/// Hard ceiling on registers per compiled handler; plans wider than
/// this fall back to the closure tree (`u16` operands stay valid and a
/// pathological fuzz plan cannot make frames unbounded).
const MAX_REGS: usize = 4096;

/// Where an instruction reads a value from: the caller's argument tuple
/// (input matching reads it in place, no copy into the frame), a
/// register of the current frame, or a *field path* — one constructor
/// field of either. Field paths are how destructuring binds variables
/// without copying: after a `Destruct` guard has verified the base
/// holds the right constructor at the right arity, `ArgField(i, j)`
/// reads field `j` of argument `i` in place, straight through the
/// shared [`Value`] — no clone, no register traffic. Paths are depth
/// one by construction; a nested destructure copies its fields into
/// registers first.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    /// Argument-tuple position.
    Arg(u16),
    /// Frame register.
    Reg(u16),
    /// Constructor field `.1` of argument `.0` (guarded by a prior
    /// `Destruct` on the same base).
    ArgField(u16, u16),
    /// Constructor field `.1` of frame register `.0` (guarded by a
    /// prior `Destruct` on the same base).
    RegField(u16, u16),
}

/// Premise-arity ceiling for the stack-allocated argument-reference
/// buffers the executor uses ([`Library::vm_exec`]); plans with wider
/// relations fall back to the closure tree. Kept small on purpose: the
/// buffers are zero-initialized per premise, and every realistic
/// relation is far below this.
const MAX_PREMISE_ARITY: usize = 8;

/// Placeholder the argument-reference buffers start from.
static DUMMY_VALUE: Value = Value::Bool(false);

/// One bytecode instruction.
///
/// Operand meaning, register effects, budget charges, and probe events
/// per opcode are specified in the DESIGN.md § "Bytecode VM" reference
/// table; the executor ([`Library::run_vm_search`]) is written to match
/// that table line by line.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// `dst ← src` (O(1) value clone). Compiled from `Var` input
    /// patterns and variable-to-variable `EqBind`s.
    Copy {
        /// Source location.
        src: Src,
        /// Destination register.
        dst: u16,
    },
    /// `dst ← Nat(lit)`.
    LoadNat {
        /// Destination register.
        dst: u16,
        /// The literal.
        lit: u64,
    },
    /// `dst ← Bool(lit)`.
    LoadBool {
        /// Destination register.
        dst: u16,
        /// The literal.
        lit: bool,
    },
    /// `dst ← Nat(src + 1)` (saturating, like `TermExpr::eval`).
    /// Panics on a non-nat operand — the same "plan invariant"
    /// condition the closure backend's `expect` enforces.
    MkSucc {
        /// Source location (must hold a `Nat`).
        src: Src,
        /// Destination register.
        dst: u16,
    },
    /// `dst ← ctor(srcs…)`.
    MkCtor {
        /// The constructor.
        ctor: CtorId,
        /// Argument locations, in declaration order.
        srcs: Box<[Src]>,
        /// Destination register.
        dst: u16,
    },
    /// `dst ← fun(srcs…)` — a registered total function.
    CallFun {
        /// The function.
        fun: FunId,
        /// Argument locations.
        srcs: Box<[Src]>,
        /// Destination register.
        dst: u16,
    },
    /// Fail the handler (`UnifyFail` at `site`, verdict `Some(false)`)
    /// unless the value is exactly `Nat(lit)`.
    GuardNat {
        /// Scrutinee location.
        src: Src,
        /// Required literal.
        lit: u64,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// Fail unless the value is a `Nat ≥ min` (a `S (S … _)` pattern
    /// with a wildcard core).
    GuardNatGe {
        /// Scrutinee location.
        src: Src,
        /// Minimum value.
        min: u64,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// Fail unless the value is exactly `Bool(lit)`.
    GuardBool {
        /// Scrutinee location.
        src: Src,
        /// Required literal.
        lit: bool,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// Fail unless the value is a `Nat ≥ k`; on success
    /// `dst ← Nat(n − k)` (a `S^k x` pattern, destructured in one step).
    GuardSucc {
        /// Scrutinee location.
        src: Src,
        /// Successor depth (≥ 1).
        k: u64,
        /// Register receiving the predecessor.
        dst: u16,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// Structural (in)equality: fail when `(a == b) == negated`.
    /// Compiled from `EqCheck` steps and from non-linear pattern
    /// variables (the §4 reconciliation).
    GuardEq {
        /// Left value.
        a: Src,
        /// Right value.
        b: Src,
        /// `true` for a disequality check.
        negated: bool,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// Fail unless the value is `ctor(f₁…fₙ)` with arity `dsts.len()`;
    /// on success each `Some(r)` slot receives its field (`None` slots
    /// are wildcard positions, never copied).
    Destruct {
        /// Scrutinee location.
        src: Src,
        /// Required constructor.
        ctor: CtorId,
        /// Per-field destination registers.
        dsts: Box<[Option<u16>]>,
        /// Probe attribution on failure.
        site: FailSite,
    },
    /// External checker premise: gather `srcs` and call
    /// [`Library::check`] at the top-level fuel. `Some(true)` falls
    /// through; any other verdict (after `negated` flips it) returns.
    CheckRel {
        /// The relation checked.
        rel: RelId,
        /// Argument locations.
        srcs: Box<[Src]>,
        /// `true` for a negated premise.
        negated: bool,
        /// Plan step index, for `Premise` attribution.
        step: u32,
    },
    /// Recursive self-premise at the decremented fuel: charges one
    /// budget step, then re-enters this program's dispatch loop.
    RecSelf {
        /// Argument locations.
        srcs: Box<[Src]>,
        /// Plan step index, for `Premise` attribution.
        step: u32,
    },
    /// External enumerator premise: drain the stream, writing each
    /// witness tuple into `outs` and re-running the instruction suffix,
    /// under the out-of-fuel bookkeeping of `bindEC`.
    ProduceExt {
        /// The relation enumerated.
        rel: RelId,
        /// The mode of the external instance.
        mode: Mode,
        /// Input-argument locations.
        srcs: Box<[Src]>,
        /// Registers receiving the produced outputs.
        outs: Box<[u16]>,
        /// Plan step index, for `Premise` attribution.
        step: u32,
    },
    /// Unconstrained existential: iterate the bounded-exhaustive values
    /// of a type into `dst`, re-running the suffix per candidate, with
    /// domain truncation counted as out-of-fuel.
    Unconstrained {
        /// The instantiated type.
        ty: TypeExpr,
        /// Register receiving each candidate.
        dst: u16,
        /// Plan step index, for `Premise` attribution.
        step: u32,
    },
}

impl Instr {
    /// The opcode mnemonic, as named in the DESIGN.md instruction-set
    /// reference (and checked against it by `scripts/check_vm_docs.sh`).
    pub(crate) fn opcode(&self) -> &'static str {
        match self {
            Instr::Copy { .. } => "Copy",
            Instr::LoadNat { .. } => "LoadNat",
            Instr::LoadBool { .. } => "LoadBool",
            Instr::MkSucc { .. } => "MkSucc",
            Instr::MkCtor { .. } => "MkCtor",
            Instr::CallFun { .. } => "CallFun",
            Instr::GuardNat { .. } => "GuardNat",
            Instr::GuardNatGe { .. } => "GuardNatGe",
            Instr::GuardBool { .. } => "GuardBool",
            Instr::GuardSucc { .. } => "GuardSucc",
            Instr::GuardEq { .. } => "GuardEq",
            Instr::Destruct { .. } => "Destruct",
            Instr::CheckRel { .. } => "CheckRel",
            Instr::RecSelf { .. } => "RecSelf",
            Instr::ProduceExt { .. } => "ProduceExt",
            Instr::Unconstrained { .. } => "Unconstrained",
        }
    }
}

/// One compiled handler: a register count and a straight-line
/// instruction array (input matching first, then the scheduled steps).
pub(crate) struct VmHandler {
    /// Mirrors [`Handler::recursive`]; at fuel 0 the dispatch loop
    /// skips recursive handlers, exactly like the closure backend.
    pub(crate) recursive: bool,
    /// Frame width: plan slots plus compiler temporaries.
    pub(crate) nregs: usize,
    /// The instructions.
    pub(crate) code: Box<[Instr]>,
}

/// A checker plan compiled to bytecode: one [`VmHandler`] per rule.
/// Rule dispatch (constructor indexing, fuel discipline, backtrack
/// charges) lives in the executor, not the program — it is shared with
/// the closure backend byte for byte.
pub(crate) struct VmProgram {
    /// One compiled handler per plan handler, same order.
    pub(crate) handlers: Vec<VmHandler>,
    /// The identity bucket `[0, 1, .., handlers.len())`, so unindexed
    /// dispatch walks the same plain `&[u32]` slice an index bucket
    /// would — one loop shape, no iterator enum in the hot path.
    pub(crate) all: Box<[u32]>,
}

impl VmProgram {
    /// Total instruction count across handlers (diagnostics only).
    pub(crate) fn code_len(&self) -> usize {
        self.handlers.iter().map(|h| h.code.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// Compiles a checker plan to bytecode. Returns `None` — the signal for
/// the per-relation closure fallback — when any handler uses a
/// construct outside the register discipline (see the DESIGN.md
/// compilability rules): a `ProduceRec` step (never emitted in checker
/// plans, kept as a defensive gate), a register written twice, a read
/// of a never-written register, a pattern that cannot match any value,
/// or a frame wider than the register ceiling.
pub(crate) fn compile_vm(
    plan: &Plan,
    index: Option<&crate::index::DispatchIndex>,
) -> Option<VmProgram> {
    debug_assert!(plan.mode.is_checker());
    // Dispatch runs through the index whenever one exists, so a head
    // guard at the indexed position that merely restates the bucket's
    // head class can never fail — the compiler drops it (see
    // [`head_guard_subsumed`]).
    let elide_pos = index.map(|ix| ix.pos());
    let handlers = plan
        .handlers
        .iter()
        .map(|h| compile_handler(h, elide_pos))
        .collect::<Option<Vec<_>>>()?;
    let all = (0..handlers.len() as u32).collect();
    Some(VmProgram { handlers, all })
}

/// Per-handler compiler state: the emitted code plus the single-
/// assignment bookkeeping. `loc[v]` records where plan variable `v`
/// lives once bound — its own frame register when an instruction
/// writes it, or an *alias* (an argument position or an
/// already-written register) when binding it required no work, in
/// which case every read compiles to the aliased location and the
/// `Copy` the closure backend's `Env` bind corresponds to is never
/// emitted.
struct Compiler {
    code: Vec<Instr>,
    nslots: usize,
    nregs: usize,
    /// Frame width actually needed at run time: one past the highest
    /// register any instruction *writes*. Aliased variables consume no
    /// frame space, so a handler that binds everything by aliasing —
    /// the common pure-destructuring shape — runs on a zero-width
    /// frame and skips frame setup entirely.
    frame_len: usize,
    loc: Vec<Option<Src>>,
}

fn compile_handler(h: &Handler, elide_pos: Option<usize>) -> Option<VmHandler> {
    if h.nslots > MAX_REGS || h.input_pats.len() > MAX_PREMISE_ARITY {
        return None;
    }
    let mut c = Compiler {
        code: Vec::new(),
        nslots: h.nslots,
        nregs: h.nslots,
        frame_len: 0,
        loc: vec![None; h.nslots],
    };
    for (i, pat) in h.input_pats.iter().enumerate() {
        let arg = u16::try_from(i).ok()?;
        if elide_pos == Some(i) && head_guard_subsumed(pat) {
            // Indexed dispatch already proved the scrutinee's head
            // here; only the sub-structure (if any) needs matching.
            // Field reads below lean on the same dispatch invariant
            // the elided guard would have re-checked.
            if let Pattern::Ctor(_, pats) = pat {
                if pats.len() > u16::MAX as usize {
                    return None;
                }
                for (j, p) in pats.iter().enumerate() {
                    c.pattern(Src::ArgField(arg, j as u16), p, FailSite::Inputs)?;
                }
            }
            continue;
        }
        c.pattern(Src::Arg(arg), pat, FailSite::Inputs)?;
    }
    for (idx, step) in h.steps.iter().enumerate() {
        c.step(idx as u32, step)?;
    }
    Some(VmHandler {
        recursive: h.recursive,
        nregs: c.frame_len,
        code: c.code.into_boxed_slice(),
    })
}

/// Whether indexed dispatch subsumes this pattern's head guard: the
/// pattern demands exactly the head class (`index::head_of`) its
/// bucket guarantees, so the guard the compiler would emit at the
/// indexed position can never fire. True for a constructor pattern
/// (the bucket pins the constructor; a fixed-arity universe pins the
/// field count), the literal `0`, a boolean literal, and `S _` (the
/// `NatPos` bucket guarantees exactly `n ≥ 1`). False wherever the
/// guard is strictly stronger than the class — `NatLit(n)` for
/// positive `n`, deeper successor spines — or where matching also
/// binds (`S x`).
fn head_guard_subsumed(pat: &Pattern) -> bool {
    match pat {
        Pattern::Ctor(..) | Pattern::NatLit(0) | Pattern::BoolLit(_) => true,
        Pattern::Succ(inner) => matches!(**inner, Pattern::Wild),
        _ => false,
    }
}

impl Compiler {
    /// Records that an instruction writes register `r`, growing the
    /// run-time frame to cover it.
    fn note_write(&mut self, r: u16) {
        self.frame_len = self.frame_len.max(r as usize + 1);
    }

    /// Allocates a fresh temporary. Temporaries are born bound: the
    /// instruction emitted immediately after allocation writes them.
    fn temp(&mut self) -> Option<u16> {
        if self.nregs >= MAX_REGS {
            return None;
        }
        let r = self.nregs;
        self.nregs += 1;
        let r = u16::try_from(r).ok()?;
        self.note_write(r);
        Some(r)
    }

    /// A plan variable for reading: its location, once bound.
    fn read_var(&self, var: VarId) -> Option<Src> {
        self.loc.get(var.index()).copied().flatten()
    }

    /// A plan variable for writing by an instruction (`Destruct`
    /// fields, `GuardSucc`, producer outputs): its own frame register.
    /// Must be unbound (single assignment); marks it bound.
    fn bind_var(&mut self, var: VarId) -> Option<u16> {
        if var.index() >= self.nslots || self.loc[var.index()].is_some() {
            return None;
        }
        let r = u16::try_from(var.index()).ok()?;
        self.loc[var.index()] = Some(Src::Reg(r));
        self.note_write(r);
        Some(r)
    }

    /// Binds a plan variable by aliasing: subsequent reads compile to
    /// `src` directly — no `Copy` instruction, no register write.
    fn alias_var(&mut self, var: VarId, src: Src) -> Option<()> {
        if var.index() >= self.nslots || self.loc[var.index()].is_some() {
            return None;
        }
        self.loc[var.index()] = Some(src);
        Some(())
    }

    fn is_bound(&self, var: VarId) -> bool {
        self.loc.get(var.index()).is_some_and(Option::is_some)
    }

    /// Compiles a pattern match of `src` into guard instructions.
    /// Already-bound variables become equality guards (the non-linear
    /// reconciliation `Pattern::matches` performs against its `Env`).
    fn pattern(&mut self, src: Src, pat: &Pattern, site: FailSite) -> Option<()> {
        match pat {
            Pattern::Wild => {}
            Pattern::Var(x) => match self.read_var(*x) {
                // Non-linear occurrence: the reconciliation
                // `Pattern::matches` performs against its `Env`.
                Some(b) => self.code.push(Instr::GuardEq {
                    a: src,
                    b,
                    negated: false,
                    site,
                }),
                // First occurrence: a bare variable always matches, so
                // binding is pure aliasing — zero instructions.
                None => self.alias_var(*x, src)?,
            },
            Pattern::NatLit(n) => self.code.push(Instr::GuardNat { src, lit: *n, site }),
            Pattern::BoolLit(b) => self.code.push(Instr::GuardBool { src, lit: *b, site }),
            Pattern::Succ(inner) => {
                // Flatten the successor spine: `S^k core` matches `Nat n`
                // iff `n ≥ k` and `core` matches `Nat (n − k)`.
                let mut k = 1u64;
                let mut core: &Pattern = inner;
                while let Pattern::Succ(next) = core {
                    k = k.checked_add(1)?;
                    core = next;
                }
                match core {
                    Pattern::Wild => self.code.push(Instr::GuardNatGe { src, min: k, site }),
                    Pattern::NatLit(m) => self.code.push(Instr::GuardNat {
                        src,
                        // `n − k == m` ⇔ `n == m + k`; on overflow no
                        // nat satisfies it — fall back (None) rather
                        // than encode an unmatchable guard.
                        lit: m.checked_add(k)?,
                        site,
                    }),
                    Pattern::Var(x) => {
                        if let Some(b) = self.read_var(*x) {
                            let t = self.temp()?;
                            self.code.push(Instr::GuardSucc {
                                src,
                                k,
                                dst: t,
                                site,
                            });
                            self.code.push(Instr::GuardEq {
                                a: Src::Reg(t),
                                b,
                                negated: false,
                                site,
                            });
                        } else {
                            let dst = self.bind_var(*x)?;
                            self.code.push(Instr::GuardSucc { src, k, dst, site });
                        }
                    }
                    // A boolean or constructor under a successor can
                    // never match a nat — unmatchable, fall back.
                    _ => return None,
                }
            }
            Pattern::Ctor(ctor, pats) => {
                // A base that is an argument or a register can be read
                // through depth-one field paths: emit `Destruct` as a
                // pure guard (no register writes) and compile every
                // sub-pattern against the field source in place — a
                // first-occurrence variable field costs nothing at all.
                // A base that is itself a field path cannot nest
                // further, so its fields copy into registers first.
                let fields = match src {
                    Src::Arg(i) => (0..pats.len())
                        .map(|j| Src::ArgField(i, j as u16))
                        .collect(),
                    Src::Reg(r) => (0..pats.len())
                        .map(|j| Src::RegField(r, j as u16))
                        .collect(),
                    Src::ArgField(..) | Src::RegField(..) => Vec::new(),
                };
                if !fields.is_empty() {
                    if pats.len() > u16::MAX as usize {
                        return None;
                    }
                    self.code.push(Instr::Destruct {
                        src,
                        ctor: *ctor,
                        dsts: vec![None; pats.len()].into_boxed_slice(),
                        site,
                    });
                    for (f, p) in fields.into_iter().zip(pats) {
                        self.pattern(f, p, site)?;
                    }
                } else {
                    let mut dsts = Vec::with_capacity(pats.len());
                    let mut deferred: Vec<(u16, &Pattern)> = Vec::new();
                    for p in pats {
                        match p {
                            Pattern::Wild => dsts.push(None),
                            Pattern::Var(x) if !self.is_bound(*x) => {
                                dsts.push(Some(self.bind_var(*x)?));
                            }
                            _ => {
                                let t = self.temp()?;
                                dsts.push(Some(t));
                                deferred.push((t, p));
                            }
                        }
                    }
                    self.code.push(Instr::Destruct {
                        src,
                        ctor: *ctor,
                        dsts: dsts.into_boxed_slice(),
                        site,
                    });
                    for (t, p) in deferred {
                        self.pattern(Src::Reg(t), p, site)?;
                    }
                }
            }
        }
        Some(())
    }

    /// Compiles an expression, returning the location holding its
    /// value. Variables compile to their bound location (no copy);
    /// compound expressions build into fresh temporaries.
    fn expr(&mut self, e: &TermExpr) -> Option<Src> {
        if let TermExpr::Var(x) = e {
            return self.read_var(*x);
        }
        let dst = self.temp()?;
        self.expr_into(e, dst)?;
        Some(Src::Reg(dst))
    }

    /// Compiles an expression directly into `dst` (used by `EqBind`,
    /// where `dst` is the bound variable's own register).
    fn expr_into(&mut self, e: &TermExpr, dst: u16) -> Option<()> {
        match e {
            TermExpr::Var(x) => {
                let src = self.read_var(*x)?;
                self.code.push(Instr::Copy { src, dst });
            }
            TermExpr::NatLit(n) => self.code.push(Instr::LoadNat { dst, lit: *n }),
            TermExpr::BoolLit(b) => self.code.push(Instr::LoadBool { dst, lit: *b }),
            TermExpr::Succ(inner) => {
                let src = self.expr(inner)?;
                self.code.push(Instr::MkSucc { src, dst });
            }
            TermExpr::Ctor(c, args) => {
                let srcs = self.expr_list(args)?;
                self.code.push(Instr::MkCtor {
                    ctor: *c,
                    srcs,
                    dst,
                });
            }
            TermExpr::Fun(f, args) => {
                let srcs = self.expr_list(args)?;
                self.code.push(Instr::CallFun { fun: *f, srcs, dst });
            }
        }
        Some(())
    }

    fn expr_list(&mut self, args: &[TermExpr]) -> Option<Box<[Src]>> {
        args.iter()
            .map(|a| self.expr(a))
            .collect::<Option<Vec<_>>>()
            .map(Vec::into_boxed_slice)
    }

    /// Compiles one scheduled plan step.
    fn step(&mut self, idx: u32, step: &Step) -> Option<()> {
        let site = FailSite::Step(idx);
        match step {
            Step::EqCheck { lhs, rhs, negated } => {
                // Same evaluation order as the closure: lhs, then rhs,
                // then the comparison.
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                self.code.push(Instr::GuardEq {
                    a,
                    b,
                    negated: *negated,
                    site,
                });
            }
            Step::EqBind { var, expr } => {
                // The defining expression is compiled while `var` is
                // still unbound, so a (malformed) self-reference fails
                // compilation instead of reading garbage.
                if var.index() >= self.nslots || self.is_bound(*var) {
                    return None;
                }
                if let TermExpr::Var(y) = expr {
                    // Variable-to-variable binding is pure aliasing.
                    let src = self.read_var(*y)?;
                    self.loc[var.index()] = Some(src);
                } else {
                    let dst = u16::try_from(var.index()).ok()?;
                    self.note_write(dst);
                    self.expr_into(expr, dst)?;
                    self.loc[var.index()] = Some(Src::Reg(dst));
                }
            }
            Step::MatchExpr { scrutinee, pattern } => {
                let s = self.expr(scrutinee)?;
                self.pattern(s, pattern, site)?;
            }
            Step::CheckRel { rel, args, negated } => {
                if args.len() > MAX_PREMISE_ARITY {
                    return None;
                }
                let srcs = self.expr_list(args)?;
                self.code.push(Instr::CheckRel {
                    rel: *rel,
                    srcs,
                    negated: *negated,
                    step: idx,
                });
            }
            Step::RecCheck { args } => {
                if args.len() > MAX_PREMISE_ARITY {
                    return None;
                }
                let srcs = self.expr_list(args)?;
                self.code.push(Instr::RecSelf { srcs, step: idx });
            }
            Step::ProduceExt {
                rel,
                mode,
                in_args,
                out_slots,
            } => {
                let srcs = self.expr_list(in_args)?;
                let outs = out_slots
                    .iter()
                    .map(|v| self.bind_var(*v))
                    .collect::<Option<Vec<_>>>()?
                    .into_boxed_slice();
                self.code.push(Instr::ProduceExt {
                    rel: *rel,
                    mode: mode.clone(),
                    srcs,
                    outs,
                    step: idx,
                });
            }
            // Checker plans never contain ProduceRec; treat it as
            // uncompilable rather than unreachable so a future plan
            // change degrades to the closure path.
            Step::ProduceRec { .. } => return None,
            Step::Unconstrained { var, ty } => {
                let dst = self.bind_var(*var)?;
                self.code.push(Instr::Unconstrained {
                    ty: ty.clone(),
                    dst,
                    step: idx,
                });
            }
        }
        Some(())
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// VM scratch: free lists for register frames and premise argument
/// vectors. One lives on the session (`library::Inner::vm_frames`)
/// behind a `RefCell`, but it is *taken wholesale* at each VM entry and
/// threaded `&mut` through the search, so the dispatch loop itself
/// never touches the `RefCell`. A re-entrant entry — an uncompiled
/// premise calling back into the VM through [`Library::check`] — finds
/// the cell empty, starts with a cold scratch, and merges it back on
/// exit.
#[derive(Default)]
pub(crate) struct VmFrames {
    free: Vec<Vec<Value>>,
    argv: Vec<Vec<Value>>,
}

impl VmFrames {
    fn take(&mut self, nregs: usize) -> Vec<Value> {
        let mut f = self.free.pop().unwrap_or_default();
        f.clear();
        f.resize(nregs, Value::Bool(false));
        f
    }

    fn put(&mut self, f: Vec<Value>) {
        if self.free.len() < 64 {
            self.free.push(f);
        }
    }

    fn take_argv(&mut self) -> Vec<Value> {
        self.argv.pop().unwrap_or_default()
    }

    fn put_argv(&mut self, mut v: Vec<Value>) {
        v.clear();
        if self.argv.len() < 64 {
            self.argv.push(v);
        }
    }
}

/// One budget step against the entry-cached meter — the same decision
/// [`Library`]'s `charge_step` makes, without the per-site `RefCell`
/// borrow (the armed meter cannot change during a search: arming
/// happens only in the `try_*` entry points, around whole calls).
#[inline]
fn charge_step_cached(meter: &Option<Meter>) -> bool {
    match meter {
        Some(m) => m.charge_step(),
        None => true,
    }
}

/// One abandoned alternative against the entry-cached meter.
#[inline]
fn charge_backtrack_cached(meter: &Option<Meter>) -> bool {
    match meter {
        Some(m) => m.charge_backtrack(),
        None => true,
    }
}

#[inline]
fn read<'a>(frame: &'a [Value], args: &'a [&'a Value], src: Src) -> &'a Value {
    match src {
        Src::Arg(i) => args[i as usize],
        Src::Reg(r) => &frame[r as usize],
        Src::ArgField(i, j) => field(args[i as usize], j),
        Src::RegField(r, j) => field(&frame[r as usize], j),
    }
}

/// Resolves a depth-one field path. The compiler only emits field
/// sources behind a `Destruct` guard on the same base, so the base is
/// always a constructor of sufficient arity here.
#[inline]
fn field(base: &Value, j: u16) -> &Value {
    match base {
        Value::Ctor(_, fields) => &fields[j as usize],
        _ => unreachable!("plan invariant: field source on a non-constructor"),
    }
}

/// Resolves a premise's source list into the stack reference buffer,
/// returning the populated length. Arities one through three — every
/// premise in the bundled workloads — unroll to straight-line reads;
/// only wider calls pay a counted loop.
#[inline(always)]
fn fill_refs<'a>(
    buf: &mut [&'a Value; MAX_PREMISE_ARITY],
    frame: &'a [Value],
    args: &'a [&'a Value],
    srcs: &[Src],
) -> usize {
    match *srcs {
        [a] => {
            buf[0] = read(frame, args, a);
        }
        [a, b] => {
            buf[0] = read(frame, args, a);
            buf[1] = read(frame, args, b);
        }
        [a, b, c] => {
            buf[0] = read(frame, args, a);
            buf[1] = read(frame, args, b);
            buf[2] = read(frame, args, c);
        }
        _ => {
            for (slot, &s) in buf.iter_mut().zip(srcs) {
                *slot = read(frame, args, s);
            }
        }
    }
    srcs.len()
}

impl Library {
    /// Takes the session's VM scratch out of its `RefCell`, leaving a
    /// fresh empty one for any re-entrant entry underneath.
    fn take_vm_frames(&self) -> VmFrames {
        self.inner.vm_frames.take()
    }

    /// Returns the scratch to the session, merging with whatever a
    /// re-entrant entry left behind (capped, like every session pool).
    fn put_vm_frames(&self, mut frames: VmFrames) {
        let mut pool = self.inner.vm_frames.borrow_mut();
        if pool.free.is_empty() && pool.argv.is_empty() {
            *pool = frames;
        } else {
            while pool.free.len() < 64 {
                match frames.free.pop() {
                    Some(f) => pool.free.push(f),
                    None => break,
                }
            }
            while pool.argv.len() < 64 {
                match frames.argv.pop() {
                    Some(v) => pool.argv.push(v),
                    None => break,
                }
            }
        }
    }

    /// The bytecode twin of `run_lowered_search`: same dispatch, fuel
    /// discipline, budget charges, and probe events, with handler
    /// bodies executed by [`Library::vm_exec`] instead of the closure
    /// tree. Entered from `run_lowered_search` when the session has
    /// [`Library::with_vm`] set and the relation compiled.
    ///
    /// This boundary decides, once per entry, which of the two
    /// monomorphized dispatch loops runs (the `PAR` const parameter of
    /// [`Library::vm_search`]):
    ///
    /// * the **parity** loop — whenever a meter, probe, memo table, or
    ///   shared serving table is armed — keeps every budget charge,
    ///   probe event, and `search_calls` bump byte-identical to the
    ///   closure backend (the contract the `interp_vs_compiled` oracle
    ///   and the `vm_parity` suite pin), with the armed meter resolved
    ///   once here instead of one `RefCell` borrow per charge site;
    /// * the **fast** loop — when none of the four is armed — compiles
    ///   all of that bookkeeping out. Unobservable by construction:
    ///   with no meter every charge answers `true`, with no probe every
    ///   event is dropped, and `search_calls` feeds only the memo cost
    ///   gates and probe-armed premise deltas, all of which are off.
    ///   None of the conditions can change mid-call — meters and probes
    ///   arm only between top-level calls.
    pub(crate) fn run_vm_search(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        // The executor passes arguments by reference all the way down
        // (premises build `&[&Value]` buffers instead of cloning into
        // owned vectors), so the owned entry tuple converts to a
        // reference buffer once here. Compilation gates every argument
        // read below `MAX_PREMISE_ARITY`, so the truncation `take`
        // can never drop a readable position.
        debug_assert!(args.len() <= MAX_PREMISE_ARITY);
        let mut buf = [&DUMMY_VALUE; MAX_PREMISE_ARITY];
        for (slot, v) in buf.iter_mut().zip(args.iter().take(MAX_PREMISE_ARITY)) {
            *slot = v;
        }
        let refs = &buf[..args.len().min(MAX_PREMISE_ARITY)];
        let mut frames = self.take_vm_frames();
        let meter = self.active_meter();
        let fast = meter.is_none()
            && !self.probe_armed()
            && !self.inner.memo_enabled.get()
            && self.inner.shared_memo.borrow().is_none();
        let r = if fast {
            self.vm_search::<false>(low, prog, &None, &mut frames, size, top, refs)
        } else {
            self.vm_search::<true>(low, prog, &meter, &mut frames, size, top, refs)
        };
        self.put_vm_frames(frames);
        r
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn vm_search<const PAR: bool>(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        meter: &Option<Meter>,
        frames: &mut VmFrames,
        size: u64,
        top: u64,
        args: &[&Value],
    ) -> Option<bool> {
        // Identical bookkeeping to run_lowered_search: the memo cost
        // gate's counter, the probe's Enter/depth pair, and the
        // constructor-indexed dispatch with its IndexSkip event.
        if PAR {
            self.inner
                .search_calls
                .set(self.inner.search_calls.get() + 1);
        }
        let _depth = if PAR {
            self.probe_enter(low.rel, ExecKind::Checker)
        } else {
            None
        };
        let mut needs_fuel = false;
        let size_rem = size.saturating_sub(1);
        let candidates: &[u32] = match &low.index {
            Some(index) => {
                let bucket = index.candidates_ref(args);
                if PAR {
                    let skipped = index.total() - bucket.len() as u32;
                    if skipped > 0 {
                        self.probe(|| Event::IndexSkip {
                            rel: low.rel,
                            skipped,
                        });
                    }
                }
                bucket
            }
            None => &prog.all,
        };
        for &i in candidates {
            let h = &prog.handlers[i as usize];
            if size == 0 && h.recursive {
                continue;
            }
            if PAR {
                self.probe(|| Event::RuleAttempt {
                    rel: low.rel,
                    rule: i,
                });
            }
            // A handler whose every guard was elided (a base-case rule
            // fully subsumed by indexed dispatch) has an empty body:
            // success is unconditional, no frame or executor needed.
            let r = if h.code.is_empty() {
                Some(true)
            } else {
                self.vm_handler::<PAR>(low, prog, h, i, meter, frames, size_rem, top, args)
            };
            match r {
                Some(true) => {
                    if PAR {
                        self.probe(|| Event::RuleSuccess {
                            rel: low.rel,
                            rule: i,
                        });
                    }
                    return Some(true);
                }
                Some(false) => {}
                None => needs_fuel = true,
            }
            if PAR {
                self.probe(|| Event::Backtrack {
                    rel: low.rel,
                    rule: i,
                });
                if !charge_backtrack_cached(meter) {
                    return None;
                }
            }
        }
        if needs_fuel || (size == 0 && low.has_recursive) {
            None
        } else {
            Some(false)
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn vm_handler<const PAR: bool>(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        h: &VmHandler,
        h_idx: u32,
        meter: &Option<Meter>,
        frames: &mut VmFrames,
        size_rem: u64,
        top: u64,
        args: &[&Value],
    ) -> Option<bool> {
        // Handlers that bind everything by aliasing have a zero-width
        // frame — no take, no clear, no return to the pool.
        if h.nregs == 0 {
            let mut frame = Vec::new();
            return self.vm_exec::<PAR>(
                low, prog, h, h_idx, 0, &mut frame, frames, meter, size_rem, top, args,
            );
        }
        let mut frame = frames.take(h.nregs);
        let r = self.vm_exec::<PAR>(
            low, prog, h, h_idx, 0, &mut frame, frames, meter, size_rem, top, args,
        );
        frames.put(frame);
        r
    }

    /// The dispatch loop: executes `h.code[pc..]` over `frame`.
    /// Straight-line instructions iterate in place; the fan-out
    /// instructions (`ProduceExt`, `Unconstrained`) re-enter this
    /// function per candidate on the *same* frame (single assignment
    /// makes the re-run safe, see the module docs) and return the
    /// three-valued `bindEC` fold of the suffix results. Reaching the
    /// end of the code is the handler succeeding.
    #[allow(clippy::too_many_arguments)]
    fn vm_exec<const PAR: bool>(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        h: &VmHandler,
        h_idx: u32,
        pc0: usize,
        frame: &mut Vec<Value>,
        frames: &mut VmFrames,
        meter: &Option<Meter>,
        size_rem: u64,
        top: u64,
        args: &[&Value],
    ) -> Option<bool> {
        let mut pc = pc0;
        while let Some(instr) = h.code.get(pc) {
            match instr {
                Instr::Copy { src, dst } => {
                    let v = read(frame, args, *src).clone();
                    frame[*dst as usize] = v;
                }
                Instr::LoadNat { dst, lit } => frame[*dst as usize] = Value::Nat(*lit),
                Instr::LoadBool { dst, lit } => frame[*dst as usize] = Value::Bool(*lit),
                Instr::MkSucc { src, dst } => {
                    let n = read(frame, args, *src)
                        .as_nat()
                        .expect("plan invariant: successor of a non-nat");
                    frame[*dst as usize] = Value::Nat(n.saturating_add(1));
                }
                Instr::MkCtor { ctor, srcs, dst } => {
                    let vals = srcs.iter().map(|&s| read(frame, args, s).clone()).collect();
                    frame[*dst as usize] = Value::ctor(*ctor, vals);
                }
                Instr::CallFun { fun, srcs, dst } => {
                    let mut vals = frames.take_argv();
                    vals.extend(srcs.iter().map(|&s| read(frame, args, s).clone()));
                    let v = self.universe().fun(*fun).apply(&vals);
                    frames.put_argv(vals);
                    frame[*dst as usize] = v;
                }
                Instr::GuardNat { src, lit, site } => {
                    if read(frame, args, *src).as_nat() != Some(*lit) {
                        return self.vm_fail::<PAR>(low.rel, h_idx, *site);
                    }
                }
                Instr::GuardNatGe { src, min, site } => {
                    if read(frame, args, *src).as_nat().is_none_or(|n| n < *min) {
                        return self.vm_fail::<PAR>(low.rel, h_idx, *site);
                    }
                }
                Instr::GuardBool { src, lit, site } => {
                    if read(frame, args, *src).as_bool() != Some(*lit) {
                        return self.vm_fail::<PAR>(low.rel, h_idx, *site);
                    }
                }
                Instr::GuardSucc { src, k, dst, site } => match read(frame, args, *src).as_nat() {
                    Some(n) if n >= *k => frame[*dst as usize] = Value::Nat(n - *k),
                    _ => return self.vm_fail::<PAR>(low.rel, h_idx, *site),
                },
                Instr::GuardEq {
                    a,
                    b,
                    negated,
                    site,
                } => {
                    let l = read(frame, args, *a);
                    let r = read(frame, args, *b);
                    if (l == r) == *negated {
                        return self.vm_fail::<PAR>(low.rel, h_idx, *site);
                    }
                }
                Instr::Destruct {
                    src,
                    ctor,
                    dsts,
                    site,
                } => {
                    let fields = match read(frame, args, *src) {
                        Value::Ctor(c, fields) if c == ctor && fields.len() == dsts.len() => {
                            // Pure guard (every field read through a
                            // path source): no copies at all. Otherwise
                            // an O(1) Arc clone releases the borrow of
                            // the frame so the field copies can write.
                            if dsts.iter().all(Option::is_none) {
                                None
                            } else {
                                Some(fields.clone())
                            }
                        }
                        _ => return self.vm_fail::<PAR>(low.rel, h_idx, *site),
                    };
                    if let Some(fields) = fields {
                        for (slot, v) in dsts.iter().zip(fields.iter()) {
                            if let Some(d) = slot {
                                frame[*d as usize] = v.clone();
                            }
                        }
                    }
                }
                Instr::CheckRel {
                    rel,
                    srcs,
                    negated,
                    step,
                } => {
                    // Arguments travel as a stack buffer of references;
                    // owned values materialize only at a boundary that
                    // demands them (a handwritten checker, the closure
                    // fallback, the parity loop's `check` entry).
                    let mut refs = [&DUMMY_VALUE; MAX_PREMISE_ARITY];
                    let len = fill_refs(&mut refs, frame, args, srcs);
                    let refs = &refs[..len];
                    let r = if PAR {
                        // Premise cost attribution, same arming gate and
                        // call-only scope as the closure backend.
                        let mut vals = frames.take_argv();
                        vals.extend(refs.iter().map(|&v| v.clone()));
                        let calls_before =
                            self.probe_armed().then(|| self.inner.search_calls.get());
                        let mut r = self.check(*rel, top, top, &vals);
                        if *negated {
                            r = cnot(r);
                        }
                        if let Some(before) = calls_before {
                            let cost = self.inner.search_calls.get() - before;
                            self.probe(|| Event::Premise {
                                rel: low.rel,
                                rule: h_idx,
                                step: *step,
                                cost,
                                failed: r == Some(false),
                            });
                        }
                        frames.put_argv(vals);
                        r
                    } else {
                        // Inlined `Library::check` minus its (inert
                        // here) charge and probe sites; a compiled
                        // callee stays inside the VM, reusing this
                        // scratch instead of crossing the entry
                        // boundary again — and taking the reference
                        // buffer as-is, no clones.
                        let imp = self.require_checker(*rel).unwrap_or_else(|e| panic!("{e}"));
                        let mut r = match imp {
                            CheckerImpl::Hand(f) => match refs {
                                // Small arities clone into a stack
                                // array — no pool round-trip.
                                [a] => f(top, top, &[(*a).clone()]),
                                [a, b] => f(top, top, &[(*a).clone(), (*b).clone()]),
                                [a, b, c] => {
                                    f(top, top, &[(*a).clone(), (*b).clone(), (*c).clone()])
                                }
                                _ => {
                                    let mut vals = frames.take_argv();
                                    vals.extend(refs.iter().map(|&v| v.clone()));
                                    let r = f(top, top, &vals);
                                    frames.put_argv(vals);
                                    r
                                }
                            },
                            CheckerImpl::Plan(_, lowered) => match &lowered.vm {
                                Some(p) => self
                                    .vm_search::<false>(lowered, p, &None, frames, top, top, refs),
                                None => {
                                    let mut vals = frames.take_argv();
                                    vals.extend(refs.iter().map(|&v| v.clone()));
                                    let r = self.run_lowered_check(lowered, top, top, &vals);
                                    frames.put_argv(vals);
                                    r
                                }
                            },
                        };
                        if *negated {
                            r = cnot(r);
                        }
                        r
                    };
                    match r {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Instr::RecSelf { srcs, step } => {
                    // The recursive call never leaves the VM, so its
                    // arguments never materialize: a stack buffer of
                    // references is the whole calling convention.
                    let mut refs = [&DUMMY_VALUE; MAX_PREMISE_ARITY];
                    let len = fill_refs(&mut refs, frame, args, srcs);
                    let refs = &refs[..len];
                    let r = if PAR {
                        let calls_before =
                            self.probe_armed().then(|| self.inner.search_calls.get());
                        // run_lowered_rec's discipline: one budget step,
                        // then the search at the decremented fuel — but
                        // staying inside the VM, reusing this scratch.
                        let r = if charge_step_cached(meter) {
                            self.vm_search::<true>(low, prog, meter, frames, size_rem, top, refs)
                        } else {
                            None
                        };
                        if let Some(before) = calls_before {
                            let cost = self.inner.search_calls.get() - before;
                            self.probe(|| Event::Premise {
                                rel: low.rel,
                                rule: h_idx,
                                step: *step,
                                cost,
                                failed: r == Some(false),
                            });
                        }
                        r
                    } else {
                        self.vm_search::<false>(low, prog, &None, frames, size_rem, top, refs)
                    };
                    match r {
                        Some(true) => {}
                        other => return other,
                    }
                }
                // The two fan-out instructions live in outlined cold
                // functions: their bodies (stream plumbing, candidate
                // loops, premise accounting) would otherwise dominate
                // this function's stack frame, and this function's
                // prologue/epilogue runs once per search step.
                Instr::ProduceExt { .. } => {
                    return self.vm_produce_ext::<PAR>(
                        low, prog, h, h_idx, pc, frame, frames, meter, size_rem, top, args,
                    );
                }
                Instr::Unconstrained { .. } => {
                    return self.vm_unconstrained::<PAR>(
                        low, prog, h, h_idx, pc, frame, frames, meter, size_rem, top, args,
                    );
                }
            }
            pc += 1;
        }
        Some(true)
    }

    /// Outlined `ProduceExt` arm of [`Library::vm_exec`]: lazy-stream
    /// premise, binding each yielded tuple into the frame and
    /// re-entering the instruction suffix, folded with `bindEC`. The
    /// cost delta covers the premise and its continuation under the
    /// binder, like the closure backend.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn vm_produce_ext<const PAR: bool>(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        h: &VmHandler,
        h_idx: u32,
        pc: usize,
        frame: &mut Vec<Value>,
        frames: &mut VmFrames,
        meter: &Option<Meter>,
        size_rem: u64,
        top: u64,
        args: &[&Value],
    ) -> Option<bool> {
        let Some(Instr::ProduceExt {
            rel,
            mode,
            srcs,
            outs,
            step,
        }) = h.code.get(pc)
        else {
            unreachable!("vm_produce_ext entered on a non-ProduceExt pc");
        };
        let mut in_vals = frames.take_argv();
        in_vals.extend(srcs.iter().map(|&s| read(frame, args, s).clone()));
        let calls_before = (PAR && self.probe_armed()).then(|| self.inner.search_calls.get());
        let stream = self.enumerate(*rel, mode, top, top, &in_vals);
        frames.put_argv(in_vals);
        let r = bind_ec(stream, |out_vals| {
            for (&o, v) in outs.iter().zip(out_vals) {
                frame[o as usize] = v;
            }
            self.vm_exec::<PAR>(
                low,
                prog,
                h,
                h_idx,
                pc + 1,
                frame,
                frames,
                meter,
                size_rem,
                top,
                args,
            )
        });
        if let Some(before) = calls_before {
            let cost = self.inner.search_calls.get() - before;
            self.probe(|| Event::Premise {
                rel: low.rel,
                rule: h_idx,
                step: *step,
                cost,
                failed: r == Some(false),
            });
        }
        r
    }

    /// Outlined `Unconstrained` arm of [`Library::vm_exec`]: the
    /// `bindEC` fold over the type's raw candidates, candidates first
    /// (a conclusive yes short-circuits), the truncation marker last.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn vm_unconstrained<const PAR: bool>(
        &self,
        low: &LoweredChecker,
        prog: &VmProgram,
        h: &VmHandler,
        h_idx: u32,
        pc: usize,
        frame: &mut Vec<Value>,
        frames: &mut VmFrames,
        meter: &Option<Meter>,
        size_rem: u64,
        top: u64,
        args: &[&Value],
    ) -> Option<bool> {
        let Some(Instr::Unconstrained { ty, dst, step }) = h.code.get(pc) else {
            unreachable!("vm_unconstrained entered on a non-Unconstrained pc");
        };
        let candidates = self.raw_values(ty, top);
        let truncated = self.raw_truncated(ty, top);
        let calls_before = (PAR && self.probe_armed()).then(|| self.inner.search_calls.get());
        let mut needs_fuel = false;
        let mut found = false;
        for i in 0..candidates.len() {
            frame[*dst as usize] = candidates[i].clone();
            match self.vm_exec::<PAR>(
                low,
                prog,
                h,
                h_idx,
                pc + 1,
                frame,
                frames,
                meter,
                size_rem,
                top,
                args,
            ) {
                Some(true) => {
                    found = true;
                    break;
                }
                Some(false) => {}
                None => needs_fuel = true,
            }
        }
        let r = if found {
            Some(true)
        } else if needs_fuel || truncated {
            None
        } else {
            Some(false)
        };
        if let Some(before) = calls_before {
            let cost = self.inner.search_calls.get() - before;
            self.probe(|| Event::Premise {
                rel: low.rel,
                rule: h_idx,
                step: *step,
                cost,
                failed: r == Some(false),
            });
        }
        r
    }

    #[inline]
    fn vm_fail<const PAR: bool>(&self, rel: RelId, rule: u32, site: FailSite) -> Option<bool> {
        if PAR {
            self.probe(|| Event::UnifyFail { rel, rule, site });
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::Universe;

    fn demo_lib() -> (Universe, RelEnv, Library, Vec<RelId>) {
        let mut u = Universe::new();
        u.std_funs();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel le : nat nat :=
            | le_n : forall n, le n n
            | le_S : forall n m, le n m -> le n (S m)
            .
            rel between : nat nat :=
            | b : forall n m p, le n m -> le (S m) p -> between n p
            .
            rel square_of : nat nat :=
            | sq : forall n, square_of n (mult n n)
            .
            ",
        )
        .unwrap();
        let rels: Vec<_> = ["le", "between", "square_of"]
            .iter()
            .map(|n| env.rel_id(n).unwrap())
            .collect();
        let mut b = LibraryBuilder::new(u.clone(), env.clone());
        for &r in &rels {
            b.derive_checker(r).unwrap();
        }
        (u, env, b.build(), rels)
    }

    #[test]
    fn demo_relations_compile_to_bytecode() {
        let (_, _, lib, rels) = demo_lib();
        for &r in &rels {
            assert!(lib.vm_compiled(r), "expected bytecode for {r:?}");
        }
    }

    #[test]
    fn vm_and_closure_checkers_agree() {
        let (u, env, lib, rels) = demo_lib();
        let vm = lib.fork().with_vm();
        assert!(vm.vm_enabled());
        for &r in &rels {
            let tys = env.relation(r).arg_types().to_vec();
            for args in indrel_term::enumerate::tuples_up_to(&u, &tys, 5) {
                for fuel in 0..10u64 {
                    assert_eq!(
                        vm.check(r, fuel, fuel, &args),
                        lib.check(r, fuel, fuel, &args),
                        "{} {:?} fuel {}",
                        env.relation(r).name(),
                        args,
                        fuel
                    );
                }
            }
        }
    }

    #[test]
    fn fork_resets_vm_flag() {
        let (_, _, lib, _) = demo_lib();
        let vm = lib.fork().with_vm();
        assert!(vm.vm_enabled());
        assert!(!vm.fork().vm_enabled());
    }

    #[test]
    fn opcode_names_are_unique() {
        let names = [
            "Copy",
            "LoadNat",
            "LoadBool",
            "MkSucc",
            "MkCtor",
            "CallFun",
            "GuardNat",
            "GuardNatGe",
            "GuardBool",
            "GuardSucc",
            "GuardEq",
            "Destruct",
            "CheckRel",
            "RecSelf",
            "ProduceExt",
            "Unconstrained",
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        let i = Instr::LoadNat { dst: 0, lit: 0 };
        assert!(names.contains(&i.opcode()));
    }
}
