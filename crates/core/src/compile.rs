//! The derivation algorithm: compiling a relation + mode into a
//! [`Plan`].
//!
//! This is `DERIVE_CHECKER`/`CTR_LOOP` (Algorithm 1) generalized to
//! producers (§4). For every rule the compiler:
//!
//! 1. turns the conclusion's input positions into patterns (the handler
//!    `match`),
//! 2. schedules the premises, choosing for each a recursive call, an
//!    external checker call, an external producer call, or an equality
//!    binding/check, instantiating variables with unconstrained
//!    producers when the compatibility analysis demands it,
//! 3. finishes with the conclusion's output terms.
//!
//! Checker plans do not take the premises in source order: a greedy
//! scheduler repeatedly picks, among the premises the compatibility
//! analysis says are *admissible* right now, the one with the lowest
//! [`PremiseCost::rank`] — expected cost over failure probability, the
//! classic ordering for independent filters. Admissible here means
//! *non-enumerating*: a ground relation check, or an equality that is
//! fully known or binds through a deterministic pattern. Premises that
//! would need an external producer or an unconstrained instantiation
//! are never hoisted — hoisting one changes which variables get
//! enumerated versus filtered, and an innocent-looking `produceST`
//! over a recursive relation can be exponentially worse than the
//! source order's instantiate-then-check shape (`ev'` in the LF corpus
//! is the cautionary tale). Ranks are seeded from
//! [`Step::static_cost`] (ties broken by source order, so unprofiled
//! plans are stable) and replaced by measured means when a
//! [`CostProfile`] is supplied (`Library::replan_from`). When no
//! premise is admissible the scheduler falls back to the first
//! remaining premise in source order, reproducing the paper's
//! enumeration structure exactly. Producer plans keep source order:
//! their dataflow is the schedule, and the profile's premise signal
//! only exists on the checker path.
//!
//! External calls are resolved through a [`DepResolver`], which the
//! [`crate::LibraryBuilder`] implements by recursively deriving the
//! needed instances (with cycle detection, §8).

use crate::compat::{classify_arg, ArgClass};
use crate::cost::{CostProfile, PremiseCost};
use crate::error::DeriveError;
use crate::mode::Mode;
use crate::plan::{Handler, Plan, Step};
use crate::DeriveOptions;
use indrel_rel::analysis::features;
use indrel_rel::preprocess::preprocess_relation;
use indrel_rel::{Premise, RelEnv, Relation, Rule};
use indrel_term::{RelId, TermExpr, TypeExpr, Universe, VarId};
use std::collections::BTreeSet;

/// Resolves the external instances a plan depends on.
pub trait DepResolver {
    /// Makes sure a checker instance for `rel` exists.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the instance cannot be derived.
    fn ensure_checker(&mut self, rel: RelId) -> Result<(), DeriveError>;

    /// Makes sure a producer instance for `(rel, mode)` exists.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the instance cannot be derived.
    fn ensure_producer(&mut self, rel: RelId, mode: &Mode) -> Result<(), DeriveError>;
}

/// Compiles a plan for `rel` at `mode`.
///
/// # Errors
///
/// Returns a [`DeriveError`] when the relation falls outside the
/// supported class (see the error variants for the specific reasons).
pub fn compile_plan(
    universe: &Universe,
    env: &RelEnv,
    rel: RelId,
    mode: Mode,
    opts: DeriveOptions,
    deps: &mut dyn DepResolver,
) -> Result<Plan, DeriveError> {
    compile_plan_with_profile(universe, env, rel, mode, opts, None, deps)
}

/// [`compile_plan`] with a measured [`CostProfile`] feeding the premise
/// scheduler. Compilation is deterministic in `(relation, mode, opts,
/// profile)`: the same profile always yields the same plan.
///
/// # Errors
///
/// Returns a [`DeriveError`] when the relation falls outside the
/// supported class (see the error variants for the specific reasons).
pub fn compile_plan_with_profile(
    universe: &Universe,
    env: &RelEnv,
    rel: RelId,
    mode: Mode,
    opts: DeriveOptions,
    profile: Option<&CostProfile>,
    deps: &mut dyn DepResolver,
) -> Result<Plan, DeriveError> {
    let relation = env.relation(rel);
    let prepared: Relation;
    let source: &Relation = if opts.algorithm1_only {
        let f = features(relation);
        if !f.algorithm1_ok() {
            return Err(DeriveError::OutsideAlgorithm1 {
                rel: relation.name().to_string(),
                feature: f.to_string(),
            });
        }
        if !mode.is_checker() {
            return Err(DeriveError::OutsideAlgorithm1 {
                rel: relation.name().to_string(),
                feature: "producer derivation".to_string(),
            });
        }
        relation
    } else {
        let (p, _report) =
            preprocess_relation(universe, env, relation).map_err(|e| DeriveError::Preprocess {
                rel: relation.name().to_string(),
                message: e.to_string(),
            })?;
        prepared = p;
        &prepared
    };

    let mut handlers = Vec::with_capacity(source.rules().len());
    for (i, rule) in source.rules().iter().enumerate() {
        let mut cx = HandlerCx {
            rel,
            rel_name: source.name().to_string(),
            mode: &mode,
            opts,
            profile,
            deps,
            rule_name: rule.name().to_string(),
            known: vec![false; rule.num_vars()],
            slot_names: rule.var_names().to_vec(),
            slot_types: rule.var_types().to_vec(),
            steps: Vec::new(),
            premise_of: Vec::new(),
            cur_premise: None,
        };
        handlers.push(cx.compile_rule(rule, i)?);
    }
    Ok(Plan {
        rel,
        mode,
        handlers,
    })
}

struct HandlerCx<'a> {
    rel: RelId,
    rel_name: String,
    mode: &'a Mode,
    opts: DeriveOptions,
    profile: Option<&'a CostProfile>,
    deps: &'a mut dyn DepResolver,
    rule_name: String,
    known: Vec<bool>,
    slot_names: Vec<String>,
    slot_types: Vec<Option<TypeExpr>>,
    steps: Vec<Step>,
    premise_of: Vec<Option<u32>>,
    cur_premise: Option<u32>,
}

impl HandlerCx<'_> {
    fn compile_rule(&mut self, rule: &Rule, rule_index: usize) -> Result<Handler, DeriveError> {
        // 1. Input patterns from the conclusion.
        let mut input_pats = Vec::new();
        for i in self.mode.in_positions() {
            let expr = &rule.conclusion()[i];
            let pat = expr
                .to_pattern()
                .ok_or_else(|| DeriveError::NonPatternConclusion {
                    rel: self.rel_name.clone(),
                    rule: self.rule_name.clone(),
                })?;
            for v in expr.variables() {
                self.known[v.index()] = true;
            }
            input_pats.push(pat);
        }

        // 2. Premises. Checker plans are scheduled greedily by rank;
        //    producer plans keep source order.
        if self.mode.is_checker() {
            let mut remaining: Vec<(u32, &Premise)> = rule
                .premises()
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, p))
                .collect();
            while !remaining.is_empty() {
                let pick = self.pick_next(&remaining, rule_index);
                let (idx, premise) = remaining.remove(pick);
                self.cur_premise = Some(idx);
                self.schedule_premise(premise)?;
            }
        } else {
            for (idx, premise) in rule.premises().iter().enumerate() {
                self.cur_premise = Some(idx as u32);
                self.schedule_premise(premise)?;
            }
        }
        self.cur_premise = None;

        // 3. Outputs: any still-unknown variable is instantiated with an
        //    unconstrained producer (a rule whose output no premise
        //    constrains).
        let mut outputs = Vec::new();
        for i in self.mode.out_positions() {
            let expr = &rule.conclusion()[i];
            let unknowns: Vec<VarId> = expr
                .variables()
                .into_iter()
                .filter(|v| !self.known[v.index()])
                .collect();
            for v in unknowns {
                self.instantiate(v)?;
            }
            outputs.push(expr.clone());
        }

        let recursive = self
            .steps
            .iter()
            .any(|s| matches!(s, Step::RecCheck { .. } | Step::ProduceRec { .. }));
        Ok(Handler {
            rule_index,
            name: rule.name().to_string(),
            recursive,
            nslots: self.slot_names.len(),
            slot_names: std::mem::take(&mut self.slot_names),
            input_pats,
            steps: std::mem::take(&mut self.steps),
            premise_of: std::mem::take(&mut self.premise_of),
            outputs,
        })
    }

    /// Pushes a step, recording which source premise (if any) it
    /// implements.
    fn emit(&mut self, step: Step) {
        self.steps.push(step);
        self.premise_of.push(self.cur_premise);
    }

    /// Dispatches one premise to its scheduling routine.
    fn schedule_premise(&mut self, premise: &Premise) -> Result<(), DeriveError> {
        match premise {
            Premise::Eq { lhs, rhs, negated } => self.schedule_eq(lhs, rhs, *negated),
            Premise::Rel {
                rel,
                args,
                negated: true,
            } => {
                self.require_full("negated premises")?;
                self.instantiate_all(args)?;
                self.deps.ensure_checker(*rel)?;
                self.emit(Step::CheckRel {
                    rel: *rel,
                    args: args.clone(),
                    negated: true,
                });
                Ok(())
            }
            Premise::Rel {
                rel,
                args,
                negated: false,
            } => self.schedule_rel(*rel, args),
        }
    }

    /// The greedy choice: index into `remaining` of the premise to
    /// schedule next. Purely a *read* of the current binding state —
    /// the dry-run classification must not resolve dependencies or
    /// allocate slots, so an inadmissible candidate costs nothing.
    fn pick_next(&self, remaining: &[(u32, &Premise)], rule_index: usize) -> usize {
        let mut best: Option<(u64, u32, usize)> = None;
        for (pos, (idx, premise)) in remaining.iter().enumerate() {
            let Some(static_cost) = self.admissible_cost(premise) else {
                continue;
            };
            // Profile data is keyed by source premise, so a measured
            // mean survives any reordering of earlier replans.
            let cost = self
                .profile
                .and_then(|p| p.lookup(self.rel.index() as u32, rule_index as u32, *idx))
                .unwrap_or_else(|| PremiseCost::seed(static_cost));
            let rank = cost.rank();
            if best.is_none_or(|(r, i, _)| (rank, *idx) < (r, i)) {
                best = Some((rank, *idx, pos));
            }
        }
        // No premise is admissible: take the first remaining one in
        // source order and let its scheduling routine instantiate.
        best.map_or(0, |(_, _, pos)| pos)
    }

    /// Whether `premise` can be scheduled *right now* without any
    /// enumeration (no external producer call, no unconstrained
    /// instantiation), and at what static cost. Reuses the
    /// compatibility classification of [`crate::compat`]: an argument
    /// that classifies as `ProducibleOutput` or `NeedsInstantiation`
    /// blocks the premise until something else binds its variables —
    /// only deterministic, prune-only premises are hoisted.
    fn admissible_cost(&self, premise: &Premise) -> Option<u64> {
        match premise {
            Premise::Eq { lhs, rhs, negated } => {
                let lk = self.is_known_expr(lhs);
                let rk = self.is_known_expr(rhs);
                if lk && rk {
                    return Some(1);
                }
                if *negated {
                    // A disequality cannot bind its unknowns.
                    return None;
                }
                let unknown_side = if lk {
                    rhs
                } else if rk {
                    lhs
                } else {
                    return None;
                };
                match unknown_side {
                    TermExpr::Var(_) => Some(1),
                    _ if unknown_side.to_pattern().is_some() => Some(1),
                    // A function call over unknowns can only be checked
                    // after enumeration.
                    _ => None,
                }
            }
            Premise::Rel {
                args,
                negated: true,
                ..
            } => {
                // Negation-as-failure needs every argument ground.
                args.iter().all(|a| self.is_known_expr(a)).then_some(10)
            }
            Premise::Rel {
                args,
                negated: false,
                ..
            } => {
                let known = |v: VarId| self.known[v.index()];
                for arg in args {
                    match classify_arg(arg, true, &known) {
                        ArgClass::KnownInput | ArgClass::KnownOutput => {}
                        // A premise with unbound positions would have
                        // to enumerate (external producer call). Never
                        // hoist those: leave them to the source-order
                        // fallback so the enumeration structure of the
                        // plan matches Algorithm 1 exactly.
                        ArgClass::ProducibleOutput { .. } | ArgClass::NeedsInstantiation { .. } => {
                            return None
                        }
                    }
                }
                Some(10)
            }
        }
    }

    /// Fails in Algorithm 1 mode with the given feature description.
    fn require_full(&self, feature: &str) -> Result<(), DeriveError> {
        if self.opts.algorithm1_only {
            Err(DeriveError::OutsideAlgorithm1 {
                rel: self.rel_name.clone(),
                feature: feature.to_string(),
            })
        } else {
            Ok(())
        }
    }

    fn is_known_expr(&self, e: &TermExpr) -> bool {
        e.variables().iter().all(|v| self.known[v.index()])
    }

    fn unknowns_of(&self, e: &TermExpr) -> BTreeSet<VarId> {
        e.variables()
            .into_iter()
            .filter(|v| !self.known[v.index()])
            .collect()
    }

    fn fresh_slot(&mut self, base: &str, ty: Option<TypeExpr>) -> VarId {
        let id = VarId::new(self.slot_names.len());
        self.slot_names.push(format!("{base}{}", id.index()));
        self.slot_types.push(ty);
        self.known.push(false);
        id
    }

    /// Emits an unconstrained-producer step for `var`.
    fn instantiate(&mut self, var: VarId) -> Result<(), DeriveError> {
        self.require_full("unconstrained instantiation")?;
        let ty =
            self.slot_types[var.index()]
                .clone()
                .ok_or_else(|| DeriveError::UntypedVariable {
                    rel: self.rel_name.clone(),
                    rule: self.rule_name.clone(),
                    var: self.slot_names[var.index()].clone(),
                })?;
        self.emit(Step::Unconstrained { var, ty });
        self.known[var.index()] = true;
        Ok(())
    }

    fn instantiate_all(&mut self, args: &[TermExpr]) -> Result<(), DeriveError> {
        let mut vars = BTreeSet::new();
        for a in args {
            vars.extend(self.unknowns_of(a));
        }
        for v in vars {
            self.instantiate(v)?;
        }
        Ok(())
    }

    /// Schedules an equality premise.
    fn schedule_eq(
        &mut self,
        lhs: &TermExpr,
        rhs: &TermExpr,
        negated: bool,
    ) -> Result<(), DeriveError> {
        self.require_full("equality premises")?;
        let lk = self.is_known_expr(lhs);
        let rk = self.is_known_expr(rhs);
        if lk && rk {
            self.emit(Step::EqCheck {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                negated,
            });
            return Ok(());
        }
        if negated {
            // A disequality cannot instantiate: enumerate the unknowns
            // and check.
            self.instantiate_all(std::slice::from_ref(lhs))?;
            self.instantiate_all(std::slice::from_ref(rhs))?;
            self.emit(Step::EqCheck {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                negated: true,
            });
            return Ok(());
        }
        if lk {
            self.solve_eq(rhs, lhs)
        } else if rk {
            self.solve_eq(lhs, rhs)
        } else {
            // Neither side known: instantiate the left side, then solve
            // for the right.
            self.instantiate_all(std::slice::from_ref(lhs))?;
            self.solve_eq(rhs, lhs)
        }
    }

    /// Solves `unknown_side = known_expr` by binding or matching.
    fn solve_eq(
        &mut self,
        unknown_side: &TermExpr,
        known_expr: &TermExpr,
    ) -> Result<(), DeriveError> {
        match unknown_side {
            TermExpr::Var(x) if !self.known[x.index()] => {
                self.emit(Step::EqBind {
                    var: *x,
                    expr: known_expr.clone(),
                });
                self.known[x.index()] = true;
                Ok(())
            }
            _ => match unknown_side.to_pattern() {
                Some(pattern) => {
                    for v in self.unknowns_of(unknown_side) {
                        self.known[v.index()] = true;
                    }
                    self.emit(Step::MatchExpr {
                        scrutinee: known_expr.clone(),
                        pattern,
                    });
                    Ok(())
                }
                None => {
                    // A function call containing unknowns: instantiate
                    // and fall back to checking.
                    self.instantiate_all(std::slice::from_ref(unknown_side))?;
                    self.emit(Step::EqCheck {
                        lhs: unknown_side.clone(),
                        rhs: known_expr.clone(),
                        negated: false,
                    });
                    Ok(())
                }
            },
        }
    }

    /// Schedules a positive relation premise `q args` following the
    /// compatibility analysis of §4.
    fn schedule_rel(&mut self, q: RelId, args: &[TermExpr]) -> Result<(), DeriveError> {
        let is_self = q == self.rel;
        let producer_mode = !self.mode.is_checker();

        // Step A: pre-instantiate variables the compatibility analysis
        // marks as `(variables(e), -)`:
        //   * unknowns under function calls (can't produce into a call),
        //   * unknowns at the *input* positions of a recursive call.
        let mut pre_inst: BTreeSet<VarId> = BTreeSet::new();
        for (i, arg) in args.iter().enumerate() {
            let unknowns = self.unknowns_of(arg);
            if unknowns.is_empty() {
                continue;
            }
            let self_input = is_self && producer_mode && !self.mode.is_out(i);
            if self_input || arg.to_pattern().is_none() {
                pre_inst.extend(unknowns);
            }
        }
        for v in pre_inst {
            self.instantiate(v)?;
        }

        // Step B: positions still containing unknowns.
        let unknown_positions: Vec<usize> = (0..args.len())
            .filter(|&i| !self.is_known_expr(&args[i]))
            .collect();

        if unknown_positions.is_empty() {
            if is_self && self.mode.is_checker() {
                self.emit(Step::RecCheck {
                    args: args.to_vec(),
                });
                return Ok(());
            }
            if is_self {
                // A fully-instantiated recursive premise in a producer.
                // Default: produce and compare (Figure 2's `TAdd`).
                // Ablation: call the relation's checker instead.
                if self.opts.check_known_recursive && self.deps.ensure_checker(q).is_ok() {
                    self.emit(Step::CheckRel {
                        rel: q,
                        args: args.to_vec(),
                        negated: false,
                    });
                    return Ok(());
                }
                return self.produce_rec(args);
            }
            self.deps.ensure_checker(q)?;
            self.emit(Step::CheckRel {
                rel: q,
                args: args.to_vec(),
                negated: false,
            });
            return Ok(());
        }

        self.require_full("existentially quantified variables")?;

        if is_self && producer_mode {
            // All remaining unknowns sit at our own output positions
            // (inputs were pre-instantiated above).
            debug_assert!(unknown_positions.iter().all(|&i| self.mode.is_out(i)));
            return self.produce_rec(args);
        }

        // External (or self-in-checker-mode) constrained producer for
        // the unknown positions; favored over enumerate-then-check
        // (§4, "we favor enumeration").
        let m = Mode::producer(args.len(), &unknown_positions);
        match self.deps.ensure_producer(q, &m) {
            Ok(()) => {
                let in_args: Vec<TermExpr> = m
                    .in_positions()
                    .into_iter()
                    .map(|i| args[i].clone())
                    .collect();
                let out_slots: Vec<VarId> = unknown_positions
                    .iter()
                    .map(|_| self.fresh_slot("w", None))
                    .collect();
                self.emit(Step::ProduceExt {
                    rel: q,
                    mode: m,
                    in_args,
                    out_slots: out_slots.clone(),
                });
                for (slot, &i) in out_slots.iter().zip(&unknown_positions) {
                    self.reconcile(*slot, &args[i])?;
                }
                Ok(())
            }
            Err(_) => {
                // Fallback: instantiate everything, then check.
                self.instantiate_all(args)?;
                if is_self && self.mode.is_checker() {
                    self.emit(Step::RecCheck {
                        args: args.to_vec(),
                    });
                    return Ok(());
                }
                self.deps.ensure_checker(q)?;
                self.emit(Step::CheckRel {
                    rel: q,
                    args: args.to_vec(),
                    negated: false,
                });
                Ok(())
            }
        }
    }

    /// Emits a recursive producer call plus the reconciliation of every
    /// output position.
    fn produce_rec(&mut self, args: &[TermExpr]) -> Result<(), DeriveError> {
        let in_args: Vec<TermExpr> = self
            .mode
            .in_positions()
            .into_iter()
            .map(|i| args[i].clone())
            .collect();
        let out_positions = self.mode.out_positions();
        let out_slots: Vec<VarId> = out_positions
            .iter()
            .map(|_| self.fresh_slot("w", None))
            .collect();
        self.emit(Step::ProduceRec {
            in_args,
            out_slots: out_slots.clone(),
        });
        for (slot, &i) in out_slots.iter().zip(&out_positions) {
            self.reconcile(*slot, &args[i])?;
        }
        Ok(())
    }

    /// Reconciles a produced value (in `slot`) with the premise argument
    /// term `arg`: a pattern match binding `arg`'s unknowns when `arg`
    /// is a constructor term (known variables inside the pattern act as
    /// equality checks), otherwise an equality check.
    fn reconcile(&mut self, slot: VarId, arg: &TermExpr) -> Result<(), DeriveError> {
        self.known[slot.index()] = true;
        match arg.to_pattern() {
            Some(pattern) => {
                for v in self.unknowns_of(arg) {
                    self.known[v.index()] = true;
                }
                // Skip the trivial self-match that a bare fresh slot
                // would produce.
                self.emit(Step::MatchExpr {
                    scrutinee: TermExpr::Var(slot),
                    pattern,
                });
                Ok(())
            }
            None => {
                debug_assert!(
                    self.is_known_expr(arg),
                    "non-pattern args are pre-instantiated"
                );
                self.emit(Step::EqCheck {
                    lhs: TermExpr::Var(slot),
                    rhs: arg.clone(),
                    negated: false,
                });
                Ok(())
            }
        }
    }

    #[allow(dead_code)]
    fn classify(&self, arg: &TermExpr, is_out: bool) -> ArgClass {
        let known = |v: VarId| self.known[v.index()];
        classify_arg(arg, is_out, &known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_rel::parse::parse_program;

    struct NoDeps;
    impl DepResolver for NoDeps {
        fn ensure_checker(&mut self, _rel: RelId) -> Result<(), DeriveError> {
            Ok(())
        }
        fn ensure_producer(&mut self, _rel: RelId, _mode: &Mode) -> Result<(), DeriveError> {
            Ok(())
        }
    }

    fn setup(src: &str) -> (Universe, RelEnv) {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, src).unwrap();
        (u, env)
    }

    #[test]
    fn compiles_le_checker() {
        let (u, env) = setup(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
        );
        let le = env.rel_id("le").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            le,
            Mode::checker(2),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        assert_eq!(plan.handlers.len(), 2);
        // le_n was linearized: one equality check, no recursion.
        assert!(!plan.handlers[0].recursive);
        assert!(matches!(plan.handlers[0].steps[0], Step::EqCheck { .. }));
        // le_S recurses.
        assert!(plan.handlers[1].recursive);
        assert!(matches!(plan.handlers[1].steps[0], Step::RecCheck { .. }));
    }

    #[test]
    fn algorithm1_rejects_nonlinear() {
        let (u, env) = setup(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
        );
        let le = env.rel_id("le").unwrap();
        let opts = DeriveOptions {
            algorithm1_only: true,
            ..DeriveOptions::default()
        };
        let err = compile_plan(&u, &env, le, Mode::checker(2), opts, &mut NoDeps).unwrap_err();
        assert!(matches!(err, DeriveError::OutsideAlgorithm1 { .. }));
    }

    #[test]
    fn algorithm1_accepts_core_relations() {
        let (u, env) = setup(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let r = env.rel_id("even'").unwrap();
        let opts = DeriveOptions {
            algorithm1_only: true,
            ..DeriveOptions::default()
        };
        let plan = compile_plan(&u, &env, r, Mode::checker(1), opts, &mut NoDeps).unwrap();
        assert_eq!(plan.handlers.len(), 2);
        assert!(plan.has_recursive_handlers());
    }

    #[test]
    fn existential_premise_uses_external_producer() {
        // between n p :- le n m, le m p  (m existential)
        let (u, env) = setup(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .
              rel between : nat nat :=
              | b : forall n m p, le n m -> le m p -> between n p
              .",
        );
        let b = env.rel_id("between").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            b,
            Mode::checker(2),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        let steps = &plan.handlers[0].steps;
        // First premise: le n m with m unknown → external producer at
        // mode (-,+); second premise fully known → external checker.
        assert!(matches!(
            &steps[0],
            Step::ProduceExt { mode, .. } if *mode == Mode::producer(2, &[1])
        ));
        assert!(steps.iter().any(|s| matches!(s, Step::CheckRel { .. })));
    }

    #[test]
    fn producer_mode_emits_produce_rec() {
        let (u, env) = setup(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        );
        let r = env.rel_id("even'").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            r,
            Mode::producer(1, &[0]),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        // even_SS: produce n recursively, output S (S n).
        let h = &plan.handlers[1];
        assert!(h.recursive);
        assert!(matches!(h.steps[0], Step::ProduceRec { .. }));
        assert_eq!(h.outputs.len(), 1);
    }

    #[test]
    fn square_of_checker_uses_eq_check() {
        let (u, env) = setup(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
        );
        let r = env.rel_id("square_of").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            r,
            Mode::checker(2),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        // After hoisting: premise mult n n = m, both known → EqCheck.
        assert!(matches!(plan.handlers[0].steps[0], Step::EqCheck { .. }));
    }

    #[test]
    fn square_of_forward_mode_uses_eq_bind() {
        let (u, env) = setup(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
        );
        let r = env.rel_id("square_of").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            r,
            Mode::producer(2, &[1]),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        // mult n n = m with m the output → EqBind m := mult n n.
        assert!(matches!(plan.handlers[0].steps[0], Step::EqBind { .. }));
    }

    #[test]
    fn square_of_backward_mode_instantiates() {
        let (u, env) = setup(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
        );
        let r = env.rel_id("square_of").unwrap();
        let plan = compile_plan(
            &u,
            &env,
            r,
            Mode::producer(2, &[0]),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap();
        // Solving n from mult n n = m: enumerate n, check the equation.
        let steps = &plan.handlers[0].steps;
        assert!(matches!(steps[0], Step::Unconstrained { .. }));
        assert!(matches!(steps[1], Step::EqCheck { .. }));
    }

    #[test]
    fn untyped_instantiation_is_an_error() {
        // q is a unary relation over a parameterless never-inferable
        // position: craft a rule whose existential can't be typed by
        // removing annotations — use a variable only under `len`.
        let (u, env) = setup(
            r"rel lenrel : nat :=
              | l : forall xs n, len xs = n -> lenrel n
              .",
        );
        let r = env.rel_id("lenrel").unwrap();
        let err = compile_plan(
            &u,
            &env,
            r,
            Mode::checker(1),
            DeriveOptions::default(),
            &mut NoDeps,
        )
        .unwrap_err();
        assert!(matches!(err, DeriveError::UntypedVariable { .. }));
    }
}
