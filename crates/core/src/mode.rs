//! Modes: the `out_set` of Algorithm 2.
//!
//! A mode assigns each argument position of a relation an input or
//! output polarity. The all-input mode is a *checker* mode; any mode
//! with at least one output is a *producer* mode. Unlike the paper's
//! implementation (§8), multiple outputs are supported.

use std::fmt;

/// An input/output polarity assignment for a relation's arguments.
///
/// # Example
///
/// ```
/// use indrel_core::Mode;
/// let m = Mode::producer(3, &[2]);
/// assert!(!m.is_checker());
/// assert_eq!(m.out_positions(), vec![2]);
/// assert_eq!(m.in_positions(), vec![0, 1]);
/// assert_eq!(m.to_string(), "(-,-,+)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mode {
    outs: Vec<bool>,
}

impl Mode {
    /// The all-input (checker) mode at the given arity.
    pub fn checker(arity: usize) -> Mode {
        Mode {
            outs: vec![false; arity],
        }
    }

    /// A producer mode: `outs` lists the output positions.
    ///
    /// # Panics
    ///
    /// Panics if an output position is out of range.
    pub fn producer(arity: usize, outs: &[usize]) -> Mode {
        let mut v = vec![false; arity];
        for &i in outs {
            assert!(
                i < arity,
                "output position {i} out of range for arity {arity}"
            );
            v[i] = true;
        }
        Mode { outs: v }
    }

    /// Builds a mode directly from a polarity vector (`true` = output).
    pub fn from_polarities(outs: Vec<bool>) -> Mode {
        Mode { outs }
    }

    /// The relation arity this mode applies to.
    pub fn arity(&self) -> usize {
        self.outs.len()
    }

    /// `true` when position `i` is an output.
    pub fn is_out(&self, i: usize) -> bool {
        self.outs[i]
    }

    /// `true` when every position is an input.
    pub fn is_checker(&self) -> bool {
        self.outs.iter().all(|o| !o)
    }

    /// Output positions, ascending.
    pub fn out_positions(&self) -> Vec<usize> {
        (0..self.outs.len()).filter(|&i| self.outs[i]).collect()
    }

    /// Input positions, ascending.
    pub fn in_positions(&self) -> Vec<usize> {
        (0..self.outs.len()).filter(|&i| !self.outs[i]).collect()
    }

    /// Number of outputs.
    pub fn num_outs(&self) -> usize {
        self.outs.iter().filter(|&&o| o).count()
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, o) in self.outs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if *o { "+" } else { "-" })?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_mode_has_no_outputs() {
        let m = Mode::checker(4);
        assert!(m.is_checker());
        assert_eq!(m.num_outs(), 0);
        assert_eq!(m.in_positions(), vec![0, 1, 2, 3]);
        assert_eq!(m.to_string(), "(-,-,-,-)");
    }

    #[test]
    fn producer_positions() {
        let m = Mode::producer(3, &[0, 2]);
        assert_eq!(m.out_positions(), vec![0, 2]);
        assert_eq!(m.in_positions(), vec![1]);
        assert_eq!(m.num_outs(), 2);
        assert!(m.is_out(0) && !m.is_out(1) && m.is_out(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let _ = Mode::producer(2, &[2]);
    }

    #[test]
    fn modes_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Mode::checker(2));
        set.insert(Mode::producer(2, &[1]));
        set.insert(Mode::producer(2, &[1]));
        assert_eq!(set.len(), 2);
    }
}
