//! Plan executors: one compilation, three instantiations.
//!
//! The same [`Plan`] is executed as a checker (three-valued, Figure 1),
//! an enumerator (lazy streams, Figure 2), or a random generator
//! (QuickChick `backtrack`), mirroring the paper's claim that all three
//! computations are instances of one derivation.
//!
//! Fuel discipline (§2): every plan execution takes a `size` — the
//! decreasing recursion fuel — and a `top_size`, which is handed (as
//! both parameters) to every *external* call, so that a nested checker
//! or producer starts with full fuel. Within a plan, recursive calls
//! decrement `size`; at `size == 0` only non-recursive handlers run,
//! plus an out-of-fuel outcome when recursive handlers were skipped.
//!
//! # Fuel vs. budget
//!
//! Fuel is *semantic*: it is part of the paper's definitions, and two
//! runs with the same fuel compute the same three-valued answer —
//! `None` at the fuel limit is itself a meaningful verdict ("more fuel
//! might decide this"). A [`Budget`] is *operational*: it bounds the
//! work the execution layer may spend — steps, backtracks, wall-clock
//! time, argument term size — without changing the meaning of any
//! answer produced within it. The budgeted entry points
//! ([`Library::try_check`], [`Library::try_decide`],
//! [`Library::try_enumerate`], [`Library::try_generate`]) arm a
//! [`Meter`] on the library for the duration of the call; every
//! executor charges whatever meter is armed, and the first failed
//! charge *poisons* the meter, making executors unwind with their
//! ordinary "no answer" values. The entry point then reports a
//! structured [`ExecError`] instead of a fabricated verdict. The
//! classic panicking entry points arm nothing and therefore pay almost
//! nothing for the mechanism.

use crate::error::{ExecError, InstanceKind};
use crate::library::{CheckerImpl, Library, ProducerImpl};
use crate::mode::Mode;
use crate::plan::{Plan, Step};
use indrel_producers::probe::{Event, ExecKind, FailSite};
use indrel_producers::{
    backtracking, backtracking_metered, bind_ce, bind_ec, cnot, enumerating, Budget, EStream,
    Meter, Outcome,
};
use indrel_term::{
    enumerate::{finite_size_bound, values_up_to},
    random::random_value,
    Env, Pattern, RelId, TermExpr, Value,
};
use std::rc::Rc;
use std::sync::Arc;

impl Library {
    /// Runs the checker for `rel` on fully instantiated `args`.
    ///
    /// `size` bounds the recursion; `top_size` is the fuel handed to
    /// external calls. The conventional entry point is
    /// `check(rel, s, s, args)`, matching the paper's
    /// `fun size in₁ … => rec size size in₁ …` wrapper.
    ///
    /// # Panics
    ///
    /// Panics if no checker instance exists for `rel` (derive or
    /// register one first).
    pub fn check(&self, rel: RelId, size: u64, top_size: u64, args: &[Value]) -> Option<bool> {
        let imp = self.require_checker(rel).unwrap_or_else(|e| panic!("{e}"));
        self.run_checker_impl(rel, imp, size, top_size, args)
    }

    fn run_checker_impl(
        &self,
        rel: RelId,
        imp: &CheckerImpl,
        size: u64,
        top_size: u64,
        args: &[Value],
    ) -> Option<bool> {
        match imp {
            CheckerImpl::Hand(f) => {
                if !self.charge_step() {
                    return None;
                }
                let _depth = self.probe_enter(rel, ExecKind::Checker);
                f(size, top_size, args)
            }
            // The lowered executor emits its own Enter (it knows its
            // relation), so no event here.
            CheckerImpl::Plan(_, lowered) => self.run_lowered_check(lowered, size, top_size, args),
        }
    }

    /// Runs the checker for `rel` through the *interpreted* plan
    /// executor instead of the default lowered closures — the ablation
    /// baseline for the lowering decision (DESIGN.md). Verdicts are
    /// identical; only the execution strategy differs.
    ///
    /// # Panics
    ///
    /// Panics if no checker instance exists for `rel`.
    pub fn check_interpreted(
        &self,
        rel: RelId,
        size: u64,
        top_size: u64,
        args: &[Value],
    ) -> Option<bool> {
        match self.require_checker(rel).unwrap_or_else(|e| panic!("{e}")) {
            CheckerImpl::Hand(f) => {
                if !self.charge_step() {
                    return None;
                }
                let _depth = self.probe_enter(rel, ExecKind::Checker);
                f(size, top_size, args)
            }
            CheckerImpl::Plan(plan, _) => self.run_plan_check(plan, size, top_size, args),
        }
    }

    /// Runs the checker for `rel` through *both* execution strategies
    /// and returns `(lowered, interpreted)` — the differential hook
    /// behind the fuzzer's executor-equivalence oracle. The two
    /// verdicts must agree for every well-formed relation; a mismatch
    /// is a bug in the lowering (or the interpreter).
    ///
    /// # Panics
    ///
    /// Panics if no checker instance exists for `rel`.
    pub fn check_both(
        &self,
        rel: RelId,
        size: u64,
        top_size: u64,
        args: &[Value],
    ) -> (Option<bool>, Option<bool>) {
        (
            self.check(rel, size, top_size, args),
            self.check_interpreted(rel, size, top_size, args),
        )
    }

    /// Iterative-deepening driver over the checker: doubles the fuel
    /// until a definite verdict or until `max_fuel` is exceeded.
    ///
    /// §8 of the paper discusses deriving *decision* procedures by
    /// dropping the fuel; this driver keeps the fuel discipline (and
    /// hence totality) while giving the common "just decide it" user
    /// experience for relations whose checkers are complete. Genuinely
    /// semi-decidable instances (the `zero` relation on positive
    /// inputs) still return `None` at the fuel limit.
    ///
    /// # Panics
    ///
    /// Panics if no checker instance exists for `rel`.
    pub fn decide(&self, rel: RelId, args: &[Value], max_fuel: u64) -> Option<bool> {
        let mut fuel = 1u64;
        loop {
            if let Some(b) = self.check(rel, fuel, fuel, args) {
                return Some(b);
            }
            if fuel >= max_fuel {
                return None;
            }
            fuel = (fuel.saturating_mul(2)).min(max_fuel);
        }
    }

    /// Enumerates output tuples for the producer instance
    /// `(rel, mode)`, given values for the mode's input positions
    /// (ascending). Outputs follow the mode's output positions
    /// (ascending).
    ///
    /// # Panics
    ///
    /// Panics if no enumerator instance exists for `(rel, mode)`.
    pub fn enumerate(
        &self,
        rel: RelId,
        mode: &Mode,
        size: u64,
        top_size: u64,
        inputs: &[Value],
    ) -> EStream<Vec<Value>> {
        let entry = self
            .require_producer(rel, mode, InstanceKind::Enumerator)
            .unwrap_or_else(|e| panic!("{e}"));
        self.run_enum_impl(rel, entry, size, top_size, inputs)
    }

    fn run_enum_impl(
        &self,
        rel: RelId,
        entry: &ProducerImpl,
        size: u64,
        top_size: u64,
        inputs: &[Value],
    ) -> EStream<Vec<Value>> {
        let stream = if let Some(f) = &entry.hand_enum {
            // Derived enumerators announce themselves in run_plan_enum;
            // handwritten ones are opaque, so announce them here.
            self.probe(|| Event::Enter {
                rel,
                kind: ExecKind::Enumerator,
                depth: self.probe_depth(),
            });
            f(size, top_size, inputs)
        } else {
            // Unreachable expect (panic audit): every `entry` comes from
            // `require_producer`, which only returns entries where
            // `hand_enum` or `plan` is present; with no handwritten
            // instance, the plan is there by that guard.
            let plan = entry
                .plan
                .as_ref()
                .expect("require_producer checked")
                .clone();
            self.run_plan_enum(&plan, size, top_size, inputs)
        };
        // Report every tuple this instance delivers (probe snapshot at
        // stream-creation time, like the meter below).
        let stream = if self.probe_armed() {
            let lib = self.clone();
            stream.inspect(move |outs| {
                lib.probe(|| Event::TermProduced {
                    rel,
                    size: outs.iter().map(Value::size).sum(),
                });
            })
        } else {
            stream
        };
        // When a budget is armed, every element demanded from this
        // stream (handwritten or derived) charges a step.
        match self.active_meter() {
            Some(m) => stream.metered(m),
            None => stream,
        }
    }

    /// Randomly generates one output tuple for `(rel, mode)`, or `None`
    /// when generation failed (backtracking exhausted or out of fuel).
    ///
    /// # Panics
    ///
    /// Panics if no generator instance exists for `(rel, mode)`.
    pub fn generate(
        &self,
        rel: RelId,
        mode: &Mode,
        size: u64,
        top_size: u64,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
    ) -> Option<Vec<Value>> {
        let entry = self
            .require_producer(rel, mode, InstanceKind::Generator)
            .unwrap_or_else(|e| panic!("{e}"));
        self.run_gen_impl(rel, entry, size, top_size, inputs, rng)
    }

    fn run_gen_impl(
        &self,
        rel: RelId,
        entry: &ProducerImpl,
        size: u64,
        top_size: u64,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
    ) -> Option<Vec<Value>> {
        let out = if let Some(f) = &entry.hand_gen {
            if !self.charge_step() {
                return None;
            }
            let _depth = self.probe_enter(rel, ExecKind::Generator);
            f(size, top_size, inputs, rng)
        } else {
            // Unreachable expect (panic audit): as in `run_enum_impl`,
            // `require_producer` guarantees a plan when there is no
            // handwritten generator.
            let plan = entry
                .plan
                .as_ref()
                .expect("require_producer checked")
                .clone();
            self.run_plan_gen(&plan, size, top_size, inputs, rng)
        };
        if let Some(outs) = &out {
            self.probe(|| Event::TermProduced {
                rel,
                size: outs.iter().map(Value::size).sum(),
            });
        }
        out
    }

    // ------------------------------------------------------------------
    // Budgeted, panic-free entry points
    //
    // Arming discipline: only these entry points install a meter on the
    // library (saving and restoring any previous one, so nesting and
    // unwinding are safe). Internal executors never arm; they charge
    // whatever is armed via charge_step / charge_backtrack, which cost
    // one RefCell borrow when nothing is armed.
    // ------------------------------------------------------------------

    /// Charges one step on the armed meter, if any.
    #[inline]
    pub(crate) fn charge_step(&self) -> bool {
        match self.inner.meter.borrow().as_ref() {
            Some(m) => m.charge_step(),
            None => true,
        }
    }

    /// Charges one abandoned alternative on the armed meter, if any.
    #[inline]
    pub(crate) fn charge_backtrack(&self) -> bool {
        match self.inner.meter.borrow().as_ref() {
            Some(m) => m.charge_backtrack(),
            None => true,
        }
    }

    /// `true` when no armed meter has been exhausted — the memo layer's
    /// write guard (see [`crate::memo`]): verdicts observed after a
    /// meter was poisoned can be fabricated by early-unwinding inner
    /// searches, so they must not be cached. Exhaustion is sticky, so
    /// checking at write time covers the whole preceding search.
    #[inline]
    pub(crate) fn meter_intact(&self) -> bool {
        self.inner
            .meter
            .borrow()
            .as_ref()
            .is_none_or(|m| !m.is_exhausted())
    }

    /// The armed meter, if any (a cheap `Rc` clone).
    pub(crate) fn active_meter(&self) -> Option<Meter> {
        self.inner.meter.borrow().clone()
    }

    // ------------------------------------------------------------------
    // Probe emission (see `Library::arm_probe`)
    //
    // Mirrors the meter's arming discipline, but tuned for the emission
    // sites being pervasive: the armed check is one `Cell` load (no
    // `RefCell` borrow), events are built lazily inside closures that
    // never run unarmed, and the `no-probe` cargo feature compiles the
    // sites out entirely (the baseline for the probe_overhead bench).
    // ------------------------------------------------------------------

    /// `true` when a probe is armed (always `false` under `no-probe`).
    #[inline]
    pub(crate) fn probe_armed(&self) -> bool {
        #[cfg(not(feature = "no-probe"))]
        {
            self.inner.probe_armed.get()
        }
        #[cfg(feature = "no-probe")]
        {
            false
        }
    }

    /// Emits `f()` to the armed probe, if any.
    #[inline]
    pub(crate) fn probe(&self, f: impl FnOnce() -> Event) {
        #[cfg(not(feature = "no-probe"))]
        if self.inner.probe_armed.get() {
            self.inner.probe.borrow().record(f());
        }
        #[cfg(feature = "no-probe")]
        {
            let _ = f;
        }
    }

    /// Emits an [`Event::Enter`] at the current nesting depth and
    /// increments it until the returned guard drops. Returns `None`
    /// (emitting nothing) when no probe is armed. Bind the guard to a
    /// named variable (`let _depth = ...`); `let _ = ...` drops it
    /// immediately.
    #[inline]
    pub(crate) fn probe_enter(&self, rel: RelId, kind: ExecKind) -> Option<DepthGuard<'_>> {
        #[cfg(not(feature = "no-probe"))]
        if self.inner.probe_armed.get() {
            let depth = self.inner.depth.get();
            self.inner
                .probe
                .borrow()
                .record(Event::Enter { rel, kind, depth });
            self.inner.depth.set(depth + 1);
            return Some(DepthGuard { lib: self, depth });
        }
        let _ = (rel, kind);
        None
    }

    /// The current executor nesting depth (only advanced while a probe
    /// is armed).
    #[inline]
    pub(crate) fn probe_depth(&self) -> u32 {
        self.inner.depth.get()
    }

    /// Arms `meter` until the returned guard drops.
    fn arm_meter(&self, meter: Meter) -> MeterGuard<'_> {
        let prev = self.inner.meter.borrow_mut().replace(meter);
        MeterGuard { lib: self, prev }
    }

    /// [`Library::check`] without panics or hangs: validates the
    /// instance and arity up front, runs the checker under `budget`,
    /// and reports a budget cut-off as a structured [`ExecError`]
    /// instead of a fabricated verdict.
    ///
    /// `Ok(None)` still means "out of fuel" in the paper's sense — a
    /// semantic answer, distinct from the operational
    /// [`ExecError::BudgetExhausted`] / [`ExecError::Deadline`].
    ///
    /// # Errors
    ///
    /// [`ExecError::NoInstance`], [`ExecError::ArityMismatch`],
    /// [`ExecError::BudgetExhausted`], or [`ExecError::Deadline`].
    pub fn try_check(
        &self,
        rel: RelId,
        size: u64,
        top_size: u64,
        args: &[Value],
        budget: Budget,
    ) -> Result<Option<bool>, ExecError> {
        let imp = self.require_checker(rel)?;
        self.require_count(rel, self.inner.env.relation(rel).arity(), args.len())?;
        if budget.is_unlimited() {
            return Ok(self.run_checker_impl(rel, imp, size, top_size, args));
        }
        let meter = Meter::new(budget);
        admit_terms(&meter, args)?;
        let result = {
            let _armed = self.arm_meter(meter.clone());
            self.run_checker_impl(rel, imp, size, top_size, args)
        };
        match meter.exhaustion() {
            Some(e) => Err(e.into()),
            None => Ok(result),
        }
    }

    /// [`Library::try_check`] plus the meter's step usage — the serving
    /// layer ([`crate::serve`]) draws per-request step allotments from
    /// a shared [`BudgetPool`](indrel_producers::BudgetPool) and must
    /// hand back what a request leaves unspent, which requires seeing
    /// the armed meter's account (always a fresh meter here, even for
    /// unlimited budgets, so the count is exact).
    pub(crate) fn try_check_usage(
        &self,
        rel: RelId,
        size: u64,
        top_size: u64,
        args: &[Value],
        budget: Budget,
    ) -> (Result<Option<bool>, ExecError>, u64) {
        let imp = match self.require_checker(rel) {
            Ok(imp) => imp,
            Err(e) => return (Err(e), 0),
        };
        if let Err(e) = self.require_count(rel, self.inner.env.relation(rel).arity(), args.len()) {
            return (Err(e), 0);
        }
        let meter = Meter::new(budget);
        if let Err(e) = admit_terms(&meter, args) {
            return (Err(e), meter.steps_used());
        }
        let result = {
            let _armed = self.arm_meter(meter.clone());
            self.run_checker_impl(rel, imp, size, top_size, args)
        };
        match meter.exhaustion() {
            Some(e) => (Err(e.into()), meter.steps_used()),
            None => (Ok(result), meter.steps_used()),
        }
    }

    /// [`Library::decide`] under a budget: iterative deepening that
    /// stops with a structured error when the budget runs out, covering
    /// the whole fuel ladder with one deadline.
    ///
    /// # Errors
    ///
    /// As for [`Library::try_check`].
    pub fn try_decide(
        &self,
        rel: RelId,
        args: &[Value],
        max_fuel: u64,
        budget: Budget,
    ) -> Result<Option<bool>, ExecError> {
        let imp = self.require_checker(rel)?;
        self.require_count(rel, self.inner.env.relation(rel).arity(), args.len())?;
        let meter = Meter::new(budget);
        admit_terms(&meter, args)?;
        let _armed = (!budget.is_unlimited()).then(|| self.arm_meter(meter.clone()));
        let mut fuel = 1u64;
        loop {
            let r = self.run_checker_impl(rel, imp, fuel, fuel, args);
            if let Some(e) = meter.exhaustion() {
                return Err(e.into());
            }
            if let Some(b) = r {
                return Ok(Some(b));
            }
            if fuel >= max_fuel {
                return Ok(None);
            }
            fuel = (fuel.saturating_mul(2)).min(max_fuel);
        }
    }

    /// [`Library::enumerate`] without panics: validates up front, then
    /// returns a [`BudgetedStream`] that re-arms its meter around every
    /// element pulled, so one budget covers the whole (lazy)
    /// enumeration. The stream ends early when the budget runs out;
    /// [`BudgetedStream::values`] (or
    /// [`BudgetedStream::exhaustion_error`] after manual iteration)
    /// turns that cut-off into the structured error.
    ///
    /// # Errors
    ///
    /// [`ExecError::NoInstance`], [`ExecError::ArityMismatch`], or a
    /// budget error for over-sized input terms.
    pub fn try_enumerate(
        &self,
        rel: RelId,
        mode: &Mode,
        size: u64,
        top_size: u64,
        inputs: &[Value],
        budget: Budget,
    ) -> Result<BudgetedStream, ExecError> {
        let entry = self.require_producer(rel, mode, InstanceKind::Enumerator)?;
        self.require_count(rel, mode.arity() - mode.num_outs(), inputs.len())?;
        let meter = Meter::new(budget);
        admit_terms(&meter, inputs)?;
        let stream = self.run_enum_impl(rel, entry, size, top_size, inputs);
        Ok(BudgetedStream {
            lib: self.clone(),
            meter,
            stream,
        })
    }

    /// [`Library::generate`] without panics or hangs, under `budget`.
    ///
    /// `Ok(None)` still means ordinary generation failure (backtracking
    /// exhausted or out of fuel); budget cut-offs come back as `Err`.
    ///
    /// # Errors
    ///
    /// As for [`Library::try_check`].
    #[allow(clippy::too_many_arguments)] // mirrors `generate` + budget
    pub fn try_generate(
        &self,
        rel: RelId,
        mode: &Mode,
        size: u64,
        top_size: u64,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
        budget: Budget,
    ) -> Result<Option<Vec<Value>>, ExecError> {
        let entry = self.require_producer(rel, mode, InstanceKind::Generator)?;
        self.require_count(rel, mode.arity() - mode.num_outs(), inputs.len())?;
        if budget.is_unlimited() {
            return Ok(self.run_gen_impl(rel, entry, size, top_size, inputs, rng));
        }
        let meter = Meter::new(budget);
        admit_terms(&meter, inputs)?;
        let result = {
            let _armed = self.arm_meter(meter.clone());
            self.run_gen_impl(rel, entry, size, top_size, inputs, rng)
        };
        match meter.exhaustion() {
            Some(e) => Err(e.into()),
            None => Ok(result),
        }
    }

    // ------------------------------------------------------------------
    // Scratch-buffer pool (single-threaded reuse of envs and argument
    // vectors — the executor's hottest allocations)
    // ------------------------------------------------------------------

    pub(crate) fn take_env(&self, nslots: usize) -> Env {
        let mut env = self.inner.pool.borrow_mut().envs.pop().unwrap_or_default();
        env.reset(nslots);
        env
    }

    pub(crate) fn put_env(&self, env: Env) {
        let mut pool = self.inner.pool.borrow_mut();
        if pool.envs.len() < 64 {
            pool.envs.push(env);
        }
    }

    pub(crate) fn take_args(&self) -> Vec<Value> {
        self.inner.pool.borrow_mut().args.pop().unwrap_or_default()
    }

    pub(crate) fn put_args(&self, mut args: Vec<Value>) {
        args.clear();
        let mut pool = self.inner.pool.borrow_mut();
        if pool.args.len() < 64 {
            pool.args.push(args);
        }
    }

    pub(crate) fn eval_into(&self, args: &[TermExpr], env: &Env) -> Vec<Value> {
        let mut vals = self.take_args();
        for a in args {
            vals.push(eval(a, env, self));
        }
        vals
    }

    /// `true` when enumerating `ty` up to `size` misses inhabitants —
    /// the enumeration is *truncated* and must count as out-of-fuel.
    pub(crate) fn raw_truncated(&self, ty: &indrel_term::TypeExpr, size: u64) -> bool {
        match finite_size_bound(&self.inner.universe, ty) {
            None => true,
            Some(bound) => bound > size,
        }
    }

    /// Memoized bounded-exhaustive enumeration of a type's values.
    pub(crate) fn raw_values(&self, ty: &indrel_term::TypeExpr, size: u64) -> Rc<Vec<Value>> {
        if let Some(hit) = self.inner.pool.borrow().raw_values.get(&(ty.clone(), size)) {
            return hit.clone();
        }
        let vals = Rc::new(values_up_to(&self.inner.universe, ty, size));
        self.inner
            .pool
            .borrow_mut()
            .raw_values
            .insert((ty.clone(), size), vals.clone());
        vals
    }

    // ------------------------------------------------------------------
    // Checker execution
    // ------------------------------------------------------------------

    pub(crate) fn run_plan_check(
        &self,
        plan: &Arc<Plan>,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        if !self.charge_step() {
            return None;
        }
        let _depth = self.probe_enter(plan.rel, ExecKind::Checker);
        if size == 0 {
            let base = plan
                .handlers
                .iter()
                .enumerate()
                .filter(|(_, h)| !h.recursive)
                .map(|(i, _)| i);
            let mut r = self.backtrack_handlers(
                base.map(|i| move || self.probed_handler_check(plan, i, 0, top, args)),
            );
            if r == Some(false) && plan.has_recursive_handlers() {
                // Algorithm 1 line 11: quote an extra `None` option.
                r = None;
            }
            r
        } else {
            let size1 = size - 1;
            self.backtrack_handlers(
                (0..plan.handlers.len())
                    .map(|i| move || self.probed_handler_check(plan, i, size1, top, args)),
            )
        }
    }

    /// [`Library::handler_check`] bracketed with rule attempt /
    /// success / backtrack events (mirroring the lowered executor's
    /// emission points, so both strategies report the same search).
    fn probed_handler_check(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        size_rem: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        self.probe(|| Event::RuleAttempt {
            rel: plan.rel,
            rule: h_idx as u32,
        });
        let r = self.handler_check(plan, h_idx, size_rem, top, args);
        match r {
            Some(true) => self.probe(|| Event::RuleSuccess {
                rel: plan.rel,
                rule: h_idx as u32,
            }),
            _ => self.probe(|| Event::Backtrack {
                rel: plan.rel,
                rule: h_idx as u32,
            }),
        }
        r
    }

    /// `backtracking`, charging the armed meter (if any) per abandoned
    /// handler.
    fn backtrack_handlers<F>(&self, options: impl IntoIterator<Item = F>) -> Option<bool>
    where
        F: FnOnce() -> Option<bool>,
    {
        match self.active_meter() {
            Some(m) => backtracking_metered(&m, options),
            None => backtracking(options),
        }
    }

    fn handler_check(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        size_rem: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        let h = &plan.handlers[h_idx];
        let mut env = self.take_env(h.nslots);
        debug_assert_eq!(h.input_pats.len(), args.len());
        for (pat, val) in h.input_pats.iter().zip(args) {
            if !pat.matches(val, &mut env) {
                self.put_env(env);
                self.probe(|| Event::UnifyFail {
                    rel: plan.rel,
                    rule: h_idx as u32,
                    site: FailSite::Inputs,
                });
                return Some(false);
            }
        }
        let r = self.steps_check(plan, h_idx, 0, &mut env, size_rem, top);
        self.put_env(env);
        r
    }

    fn steps_check(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        idx: usize,
        env: &mut Env,
        size_rem: u64,
        top: u64,
    ) -> Option<bool> {
        // Straight-line steps run in a loop; only producer steps (which
        // fan out over enumerated witnesses) recurse for their tail.
        let steps = &plan.handlers[h_idx].steps;
        let mut idx = idx;
        loop {
            let Some(step) = steps.get(idx) else {
                return Some(true);
            };
            match step {
                Step::EqCheck { lhs, rhs, negated } => {
                    let l = eval(lhs, env, self);
                    let r = eval(rhs, env, self);
                    if (l == r) == *negated {
                        self.probe(|| Event::UnifyFail {
                            rel: plan.rel,
                            rule: h_idx as u32,
                            site: FailSite::Step(idx as u32),
                        });
                        return Some(false);
                    }
                    idx += 1;
                }
                Step::EqBind { var, expr } => {
                    let v = eval(expr, env, self);
                    env.bind(*var, v);
                    idx += 1;
                }
                Step::MatchExpr { scrutinee, pattern } => {
                    let v = eval(scrutinee, env, self);
                    if pattern.matches(&v, env) {
                        idx += 1;
                    } else {
                        self.probe(|| Event::UnifyFail {
                            rel: plan.rel,
                            rule: h_idx as u32,
                            site: FailSite::Step(idx as u32),
                        });
                        return Some(false);
                    }
                }
                Step::CheckRel { rel, args, negated } => {
                    let vals = self.eval_into(args, env);
                    let mut r = self.check(*rel, top, top, &vals);
                    self.put_args(vals);
                    if *negated {
                        r = cnot(r);
                    }
                    match r {
                        Some(true) => idx += 1,
                        other => return other,
                    }
                }
                Step::RecCheck { args } => {
                    let vals = self.eval_into(args, env);
                    let r = self.run_plan_check(plan, size_rem, top, &vals);
                    self.put_args(vals);
                    match r {
                        Some(true) => idx += 1,
                        other => return other,
                    }
                }
                Step::ProduceExt {
                    rel,
                    mode,
                    in_args,
                    out_slots,
                } => {
                    let in_vals = self.eval_into(in_args, env);
                    let stream = self.enumerate(*rel, mode, top, top, &in_vals);
                    self.put_args(in_vals);
                    // bind_ec drains the stream eagerly, so the closure
                    // can borrow `out_slots` from the plan directly.
                    return bind_ec(stream, |outs| {
                        let mut env2 = env.clone();
                        for (slot, v) in out_slots.iter().zip(outs) {
                            env2.bind(*slot, v);
                        }
                        self.steps_check(plan, h_idx, idx + 1, &mut env2, size_rem, top)
                    });
                }
                Step::ProduceRec { in_args, out_slots } => {
                    let in_vals = self.eval_into(in_args, env);
                    let stream = self.run_plan_enum(plan, size_rem, top, &in_vals);
                    self.put_args(in_vals);
                    return bind_ec(stream, |outs| {
                        let mut env2 = env.clone();
                        for (slot, v) in out_slots.iter().zip(outs) {
                            env2.bind(*slot, v);
                        }
                        self.steps_check(plan, h_idx, idx + 1, &mut env2, size_rem, top)
                    });
                }
                Step::Unconstrained { var, ty } => {
                    let candidates = self.raw_values(ty, top);
                    let var = *var;
                    // A truncated domain means exhausting the candidates is
                    // not conclusive (the paper's enumerators surface this
                    // as a fuelE outcome; §5.1 monotonicity depends on it).
                    let mut needs_fuel = self.raw_truncated(ty, top);
                    for v in candidates.iter() {
                        let mut env2 = env.clone();
                        env2.bind(var, v.clone());
                        match self.steps_check(plan, h_idx, idx + 1, &mut env2, size_rem, top) {
                            Some(true) => return Some(true),
                            Some(false) => {}
                            None => needs_fuel = true,
                        }
                    }
                    return if needs_fuel { None } else { Some(false) };
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Enumerator execution
    // ------------------------------------------------------------------

    pub(crate) fn run_plan_enum(
        &self,
        plan: &Arc<Plan>,
        size: u64,
        top: u64,
        inputs: &[Value],
    ) -> EStream<Vec<Value>> {
        // Enter without a depth guard: the streams built here are lazy
        // and outlive this call, so scoped depth tracking would misnest.
        self.probe(|| Event::Enter {
            rel: plan.rel,
            kind: ExecKind::Enumerator,
            depth: self.probe_depth(),
        });
        let indices: Vec<usize> = if size == 0 {
            plan.handlers
                .iter()
                .enumerate()
                .filter(|(_, h)| !h.recursive)
                .map(|(i, _)| i)
                .collect()
        } else {
            (0..plan.handlers.len()).collect()
        };
        let size_rem = size.saturating_sub(1);
        let add_fuel = size == 0 && plan.has_recursive_handlers();
        let inputs: Rc<Vec<Value>> = Rc::new(inputs.to_vec());
        let mut thunks: Vec<Box<dyn FnOnce() -> EStream<Vec<Value>>>> = Vec::new();
        for i in indices {
            let lib = self.clone();
            let plan = plan.clone();
            let inputs = inputs.clone();
            thunks.push(Box::new(move || {
                lib.probe(|| Event::RuleAttempt {
                    rel: plan.rel,
                    rule: i as u32,
                });
                lib.handler_enum(&plan, i, size_rem, top, &inputs)
            }));
        }
        if add_fuel {
            thunks.push(Box::new(EStream::fuel));
        }
        enumerating(thunks)
    }

    fn handler_enum(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        size_rem: u64,
        top: u64,
        inputs: &[Value],
    ) -> EStream<Vec<Value>> {
        let h = &plan.handlers[h_idx];
        let mut env = Env::with_slots(h.nslots);
        debug_assert_eq!(h.input_pats.len(), inputs.len());
        for (pat, val) in h.input_pats.iter().zip(inputs) {
            if !pat.matches(val, &mut env) {
                self.probe(|| Event::UnifyFail {
                    rel: plan.rel,
                    rule: h_idx as u32,
                    site: FailSite::Inputs,
                });
                return EStream::empty();
            }
        }
        let lib = self.clone();
        let plan2 = plan.clone();
        self.steps_enum(plan, h_idx, 0, env, size_rem, top)
            .map(move |env| {
                lib.probe(|| Event::RuleSuccess {
                    rel: plan2.rel,
                    rule: h_idx as u32,
                });
                plan2.handlers[h_idx]
                    .outputs
                    .iter()
                    .map(|e| eval(e, &env, &lib))
                    .collect()
            })
    }

    fn steps_enum(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        idx: usize,
        mut env: Env,
        size_rem: u64,
        top: u64,
    ) -> EStream<Env> {
        let steps = &plan.handlers[h_idx].steps;
        let Some(step) = steps.get(idx) else {
            return EStream::ret(env);
        };
        match step {
            Step::EqCheck { lhs, rhs, negated } => {
                let holds = eval(lhs, &env, self) == eval(rhs, &env, self);
                if holds != *negated {
                    self.steps_enum(plan, h_idx, idx + 1, env, size_rem, top)
                } else {
                    self.probe(|| Event::UnifyFail {
                        rel: plan.rel,
                        rule: h_idx as u32,
                        site: FailSite::Step(idx as u32),
                    });
                    EStream::empty()
                }
            }
            Step::EqBind { var, expr } => {
                let v = eval(expr, &env, self);
                env.bind(*var, v);
                self.steps_enum(plan, h_idx, idx + 1, env, size_rem, top)
            }
            Step::MatchExpr { scrutinee, pattern } => {
                let v = eval(scrutinee, &env, self);
                if pattern.matches(&v, &mut env) {
                    self.steps_enum(plan, h_idx, idx + 1, env, size_rem, top)
                } else {
                    self.probe(|| Event::UnifyFail {
                        rel: plan.rel,
                        rule: h_idx as u32,
                        site: FailSite::Step(idx as u32),
                    });
                    EStream::empty()
                }
            }
            Step::CheckRel { rel, args, negated } => {
                let vals = eval_args(args, &env, self);
                let mut r = self.check(*rel, top, top, &vals);
                if *negated {
                    r = cnot(r);
                }
                let lib = self.clone();
                let plan = plan.clone();
                bind_ce(r, move || {
                    lib.steps_enum(&plan, h_idx, idx + 1, env, size_rem, top)
                })
            }
            Step::RecCheck { .. } => {
                unreachable!("RecCheck only appears in checker plans")
            }
            Step::ProduceExt {
                rel,
                mode,
                in_args,
                out_slots,
            } => {
                let in_vals = eval_args(in_args, &env, self);
                let stream = self.enumerate(*rel, mode, top, top, &in_vals);
                self.bind_outs(
                    stream,
                    plan,
                    h_idx,
                    idx,
                    env,
                    out_slots.clone(),
                    size_rem,
                    top,
                )
            }
            Step::ProduceRec { in_args, out_slots } => {
                let in_vals = eval_args(in_args, &env, self);
                let stream = self.run_plan_enum(plan, size_rem, top, &in_vals);
                self.bind_outs(
                    stream,
                    plan,
                    h_idx,
                    idx,
                    env,
                    out_slots.clone(),
                    size_rem,
                    top,
                )
            }
            Step::Unconstrained { var, ty } => {
                let candidates = self.raw_values(ty, top);
                let truncated = self.raw_truncated(ty, top);
                let values = (0..candidates.len())
                    .map(move |i| Outcome::Val(vec![candidates[i].clone()]))
                    .chain(truncated.then_some(Outcome::OutOfFuel));
                let stream = EStream::from_outcomes(values);
                self.bind_outs(stream, plan, h_idx, idx, env, vec![*var], size_rem, top)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn bind_outs(
        &self,
        stream: EStream<Vec<Value>>,
        plan: &Arc<Plan>,
        h_idx: usize,
        idx: usize,
        env: Env,
        slots: Vec<indrel_term::VarId>,
        size_rem: u64,
        top: u64,
    ) -> EStream<Env> {
        let lib = self.clone();
        let plan = plan.clone();
        stream.bind(move |outs| {
            let mut env2 = env.clone();
            for (slot, v) in slots.iter().zip(outs) {
                env2.bind(*slot, v);
            }
            lib.steps_enum(&plan, h_idx, idx + 1, env2, size_rem, top)
        })
    }

    // ------------------------------------------------------------------
    // Generator execution
    // ------------------------------------------------------------------

    pub(crate) fn run_plan_gen(
        &self,
        plan: &Arc<Plan>,
        size: u64,
        top: u64,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
    ) -> Option<Vec<Value>> {
        if !self.charge_step() {
            return None;
        }
        let _depth = self.probe_enter(plan.rel, ExecKind::Generator);
        let size_rem = size.saturating_sub(1);
        // QuickChick's `backtrack`, inlined without boxing: pick a
        // handler proportionally to its weight (base constructors 1,
        // recursive constructors `size`), discard it on failure, retry
        // until one succeeds or all are exhausted.
        let mut options: Vec<(u64, usize)> = plan
            .handlers
            .iter()
            .enumerate()
            .filter(|(_, h)| size > 0 || !h.recursive)
            .map(|(i, h)| (if h.recursive { size.max(1) } else { 1 }, i))
            .collect();
        let mut total: u64 = options.iter().map(|(w, _)| *w).sum();
        while total > 0 {
            let mut pick = rand::Rng::gen_range(&mut *rng, 0..total);
            let mut chosen = 0;
            for (i, (w, _)) in options.iter().enumerate() {
                if pick < *w {
                    chosen = i;
                    break;
                }
                pick -= *w;
            }
            let (w, h_idx) = options[chosen];
            self.probe(|| Event::RuleAttempt {
                rel: plan.rel,
                rule: h_idx as u32,
            });
            if let Some(out) = self.handler_gen(plan, h_idx, size_rem, top, inputs, rng) {
                self.probe(|| Event::RuleSuccess {
                    rel: plan.rel,
                    rule: h_idx as u32,
                });
                return Some(out);
            }
            // Each discarded handler is one backtrack; a failed charge
            // abandons the whole search.
            self.probe(|| Event::Backtrack {
                rel: plan.rel,
                rule: h_idx as u32,
            });
            if !self.charge_backtrack() {
                return None;
            }
            total -= w;
            let _ = options.swap_remove(chosen);
        }
        None
    }

    fn handler_gen(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        size_rem: u64,
        top: u64,
        inputs: &[Value],
        rng: &mut dyn rand::RngCore,
    ) -> Option<Vec<Value>> {
        let h = &plan.handlers[h_idx];
        let mut env = self.take_env(h.nslots);
        for (pat, val) in h.input_pats.iter().zip(inputs) {
            if !pat.matches(val, &mut env) {
                self.put_env(env);
                self.probe(|| Event::UnifyFail {
                    rel: plan.rel,
                    rule: h_idx as u32,
                    site: FailSite::Inputs,
                });
                return None;
            }
        }
        let result = self.handler_gen_steps(plan, h_idx, &mut env, size_rem, top, rng);
        self.put_env(env);
        result
    }

    fn handler_gen_steps(
        &self,
        plan: &Arc<Plan>,
        h_idx: usize,
        env: &mut Env,
        size_rem: u64,
        top: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Option<Vec<Value>> {
        let h = &plan.handlers[h_idx];
        for (idx, step) in h.steps.iter().enumerate() {
            match step {
                Step::EqCheck { lhs, rhs, negated } => {
                    let holds = eval(lhs, env, self) == eval(rhs, env, self);
                    if holds == *negated {
                        self.probe(|| Event::UnifyFail {
                            rel: plan.rel,
                            rule: h_idx as u32,
                            site: FailSite::Step(idx as u32),
                        });
                        return None;
                    }
                }
                Step::EqBind { var, expr } => {
                    let v = eval(expr, env, self);
                    env.bind(*var, v);
                }
                Step::MatchExpr { scrutinee, pattern } => {
                    let v = eval(scrutinee, env, self);
                    if !pattern.matches(&v, env) {
                        self.probe(|| Event::UnifyFail {
                            rel: plan.rel,
                            rule: h_idx as u32,
                            site: FailSite::Step(idx as u32),
                        });
                        return None;
                    }
                }
                Step::CheckRel { rel, args, negated } => {
                    let vals = self.eval_into(args, env);
                    let mut r = self.check(*rel, top, top, &vals);
                    self.put_args(vals);
                    if *negated {
                        r = cnot(r);
                    }
                    if r != Some(true) {
                        return None;
                    }
                }
                Step::RecCheck { .. } => unreachable!("RecCheck only appears in checker plans"),
                Step::ProduceExt {
                    rel,
                    mode,
                    in_args,
                    out_slots,
                } => {
                    let in_vals = self.eval_into(in_args, env);
                    let outs = self.generate(*rel, mode, top, top, &in_vals, rng);
                    self.put_args(in_vals);
                    for (slot, v) in out_slots.iter().zip(outs?) {
                        env.bind(*slot, v);
                    }
                }
                Step::ProduceRec { in_args, out_slots } => {
                    let in_vals = self.eval_into(in_args, env);
                    let outs = self.run_plan_gen(plan, size_rem, top, &in_vals, rng);
                    self.put_args(in_vals);
                    for (slot, v) in out_slots.iter().zip(outs?) {
                        env.bind(*slot, v);
                    }
                }
                Step::Unconstrained { var, ty } => {
                    let v = random_value(&self.inner.universe, ty, size_rem.max(1), rng);
                    env.bind(*var, v);
                }
            }
        }
        Some(h.outputs.iter().map(|e| eval(e, env, self)).collect())
    }
}

/// Restores the probe nesting depth on drop; returned by
/// [`Library::probe_enter`].
pub(crate) struct DepthGuard<'a> {
    lib: &'a Library,
    depth: u32,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.lib.inner.depth.set(self.depth);
    }
}

/// Restores the previously armed meter (if any) on drop, so arming is
/// panic-safe and nests.
struct MeterGuard<'a> {
    lib: &'a Library,
    prev: Option<Meter>,
}

impl Drop for MeterGuard<'_> {
    fn drop(&mut self) {
        *self.lib.inner.meter.borrow_mut() = self.prev.take();
    }
}

/// Rejects argument terms over the budget's `max_term_size`, reporting
/// the poisoned meter's exhaustion as the error.
fn admit_terms(meter: &Meter, args: &[Value]) -> Result<(), ExecError> {
    for a in args {
        if !meter.admit_term_size(a.size()) {
            return Err(meter
                .exhaustion()
                .expect("failed admit poisons the meter")
                .into());
        }
    }
    Ok(())
}

/// A budgeted enumeration, from [`Library::try_enumerate`].
///
/// Iterating yields the underlying [`Outcome`]s; each element pulled
/// charges one step on the stream's meter and runs with that meter
/// armed on the library, so nested checker and producer calls spend
/// from the same budget. When the budget runs out the stream simply
/// ends; use [`BudgetedStream::values`] to collect with the cut-off
/// reported as an error, or [`BudgetedStream::exhaustion_error`] after
/// manual iteration.
#[derive(Debug)]
pub struct BudgetedStream {
    lib: Library,
    meter: Meter,
    stream: EStream<Vec<Value>>,
}

impl BudgetedStream {
    /// The meter accounting for this enumeration.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The budget cut-off as a structured error, if one happened.
    pub fn exhaustion_error(&self) -> Option<ExecError> {
        self.meter.exhaustion().map(Into::into)
    }

    /// Collects all produced values, discarding out-of-fuel markers.
    ///
    /// # Errors
    ///
    /// [`ExecError::BudgetExhausted`] or [`ExecError::Deadline`] when
    /// the enumeration was cut off before completing.
    pub fn values(mut self) -> Result<Vec<Vec<Value>>, ExecError> {
        let mut out = Vec::new();
        for outcome in &mut self {
            if let Outcome::Val(v) = outcome {
                out.push(v);
            }
        }
        match self.exhaustion_error() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl Iterator for BudgetedStream {
    type Item = Outcome<Vec<Value>>;

    fn next(&mut self) -> Option<Outcome<Vec<Value>>> {
        if !self.meter.charge_step() {
            return None;
        }
        let _armed = self.lib.arm_meter(self.meter.clone());
        self.stream.next()
    }
}

// Deliberately a panic, not an `ExecError` (panic audit): the
// compatibility analysis in `compile` only schedules an `Eval` once
// every variable the expression mentions is bound, so an
// uninstantiated expression here is a derivation bug, and demoting it
// to a structured runtime error would let a miscompiled plan disagree
// silently instead of failing loudly. The same reasoning covers the
// mirrored expects in `lower.rs` and the `RecCheck` unreachables
// (recursive-check steps are only emitted into checker plans).
fn eval(e: &TermExpr, env: &Env, lib: &Library) -> Value {
    e.eval(env, &lib.inner.universe)
        .expect("plan invariant: expressions are fully instantiated when evaluated")
}

fn eval_args(args: &[TermExpr], env: &Env, lib: &Library) -> Vec<Value> {
    args.iter().map(|a| eval(a, env, lib)).collect()
}

/// Silences an unused-import lint when debug assertions are disabled.
#[allow(unused)]
fn _pattern_marker(_: &Pattern) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;
    use indrel_producers::Outcome;
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::Universe;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lib_for(src: &str, rels: &[(&str, Option<Vec<usize>>)]) -> (Library, Vec<RelId>) {
        let mut u = Universe::new();
        u.std_list();
        u.std_funs();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, src).unwrap();
        let ids: Vec<RelId> = rels
            .iter()
            .map(|(name, _)| env.rel_id(name).unwrap())
            .collect();
        let mut b = LibraryBuilder::new(u, env);
        for ((_, mode), id) in rels.iter().zip(&ids) {
            match mode {
                None => b.derive_checker(*id).unwrap(),
                Some(outs) => {
                    let arity = b.env().relation(*id).arity();
                    b.derive_producer(*id, Mode::producer(arity, outs)).unwrap();
                }
            }
        }
        (b.build(), ids)
    }

    #[test]
    fn even_checker_decides() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", None)],
        );
        let even = ids[0];
        assert_eq!(lib.check(even, 10, 10, &[Value::nat(0)]), Some(true));
        assert_eq!(lib.check(even, 10, 10, &[Value::nat(8)]), Some(true));
        assert_eq!(lib.check(even, 10, 10, &[Value::nat(7)]), Some(false));
        // out of fuel: needs 6 recursion steps for 10
        assert_eq!(lib.check(even, 2, 2, &[Value::nat(10)]), None);
    }

    #[test]
    fn even_enumerator_streams_in_order() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", Some(vec![0]))],
        );
        let outs: Vec<u64> = lib
            .enumerate(ids[0], &Mode::producer(1, &[0]), 3, 3, &[])
            .values()
            .into_iter()
            .map(|o| o[0].as_nat().unwrap())
            .collect();
        assert_eq!(outs, vec![0, 2, 4, 6]);
        // With fuel 0 only the base case, plus an out-of-fuel marker.
        let outcomes = lib
            .enumerate(ids[0], &Mode::producer(1, &[0]), 0, 0, &[])
            .outcomes();
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(outcomes[1], Outcome::OutOfFuel));
    }

    #[test]
    fn even_generator_samples_even_numbers() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", Some(vec![0]))],
        );
        let mode = Mode::producer(1, &[0]);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let out = lib.generate(ids[0], &mode, 10, 10, &[], &mut rng).unwrap();
            assert_eq!(out[0].as_nat().unwrap() % 2, 0);
        }
    }

    #[test]
    fn le_checker_handles_nonlinear_reflexivity() {
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            &[("le", None)],
        );
        let le = ids[0];
        assert_eq!(
            lib.check(le, 20, 20, &[Value::nat(3), Value::nat(3)]),
            Some(true)
        );
        assert_eq!(
            lib.check(le, 20, 20, &[Value::nat(3), Value::nat(9)]),
            Some(true)
        );
        assert_eq!(
            lib.check(le, 20, 20, &[Value::nat(9), Value::nat(3)]),
            Some(false)
        );
    }

    #[test]
    fn le_enumerator_mode_backward() {
        // enumerate n such that le n 3
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            &[("le", Some(vec![0]))],
        );
        let mut outs: Vec<u64> = lib
            .enumerate(ids[0], &Mode::producer(2, &[0]), 6, 6, &[Value::nat(3)])
            .values()
            .into_iter()
            .map(|o| o[0].as_nat().unwrap())
            .collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn square_of_checker_and_producer() {
        let (lib, ids) = lib_for(
            r"rel square_of : nat nat :=
              | sq : forall n, square_of n (mult n n)
              .",
            &[("square_of", None), ("square_of", Some(vec![1]))],
        );
        let sq = ids[0];
        assert_eq!(
            lib.check(sq, 5, 5, &[Value::nat(7), Value::nat(49)]),
            Some(true)
        );
        assert_eq!(
            lib.check(sq, 5, 5, &[Value::nat(7), Value::nat(48)]),
            Some(false)
        );
        let outs = lib
            .enumerate(sq, &Mode::producer(2, &[1]), 1, 1, &[Value::nat(6)])
            .values();
        assert_eq!(outs, vec![vec![Value::nat(36)]]);
    }

    #[test]
    fn existential_checker_uses_enumeration() {
        // between n p :- le n m -> le (S m) p
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .
              rel between : nat nat :=
              | b : forall n m p, le n m -> le (S m) p -> between n p
              .",
            &[("between", None)],
        );
        let between = ids[0];
        // between 1 3: m = 1 or 2 works (le 1 m and le (S m) 3).
        assert_eq!(
            lib.check(between, 8, 8, &[Value::nat(1), Value::nat(3)]),
            Some(true)
        );
        // between 3 1: no m.
        assert_ne!(
            lib.check(between, 8, 8, &[Value::nat(3), Value::nat(1)]),
            Some(true)
        );
    }

    #[test]
    fn zero_relation_reproduces_incompleteness_of_negation() {
        // §5.1: zero holds only for 0, but the checker can never
        // conclusively say `Some(false)` for n > 0.
        let (lib, ids) = lib_for(
            r"rel zero : nat :=
              | Zero : zero 0
              | NonZero : forall n, zero (S n) -> zero n
              .",
            &[("zero", None)],
        );
        let zero = ids[0];
        assert_eq!(lib.check(zero, 5, 5, &[Value::nat(0)]), Some(true));
        for fuel in [1u64, 5, 20, 50] {
            assert_eq!(
                lib.check(zero, fuel, fuel, &[Value::nat(1)]),
                None,
                "fuel {fuel}"
            );
        }
    }

    #[test]
    fn multi_output_producer() {
        // Enumerate (n, m) pairs with le n m: both outputs at once —
        // supported here, future work in the paper (§8).
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            &[("le", Some(vec![0, 1]))],
        );
        let pairs: Vec<(u64, u64)> = lib
            .enumerate(ids[0], &Mode::producer(2, &[0, 1]), 3, 3, &[])
            .values()
            .into_iter()
            .map(|o| (o[0].as_nat().unwrap(), o[1].as_nat().unwrap()))
            .collect();
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(n, m)| n <= m));
        assert!(pairs.contains(&(0, 0)));
    }

    #[test]
    fn negated_premise_checker() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .
              rel odd' : nat :=
              | odd : forall n, ~ (even' n) -> odd' n
              .",
            &[("odd'", None)],
        );
        let odd = ids[0];
        assert_eq!(lib.check(odd, 10, 10, &[Value::nat(3)]), Some(true));
        assert_eq!(lib.check(odd, 10, 10, &[Value::nat(4)]), Some(false));
    }

    #[test]
    fn try_check_agrees_with_check_under_unlimited_budget() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", None)],
        );
        let even = ids[0];
        for n in 0..12u64 {
            for fuel in 0..8u64 {
                assert_eq!(
                    lib.try_check(even, fuel, fuel, &[Value::nat(n)], Budget::unlimited()),
                    Ok(lib.check(even, fuel, fuel, &[Value::nat(n)])),
                    "n={n} fuel={fuel}"
                );
            }
        }
    }

    #[test]
    fn try_check_reports_missing_instance_and_arity() {
        // Only a producer is derived: no checker instance exists.
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", Some(vec![0]))],
        );
        let even = ids[0];
        assert_eq!(
            lib.try_check(even, 5, 5, &[Value::nat(2)], Budget::unlimited()),
            Err(crate::ExecError::NoInstance {
                kind: crate::InstanceKind::Checker,
                rel: "even'".into(),
                mode: None,
            })
        );
        // A producer at an underived mode is also a structured error.
        let missing = Mode::producer(1, &[]);
        assert!(matches!(
            lib.try_enumerate(even, &missing, 5, 5, &[Value::nat(0)], Budget::unlimited()),
            Err(crate::ExecError::NoInstance { .. })
        ));
        let err = lib
            .try_enumerate(
                even,
                &Mode::producer(1, &[0]),
                5,
                5,
                &[Value::nat(0)],
                Budget::unlimited(),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(
            err,
            crate::ExecError::ArityMismatch {
                got: 1,
                expected: 0,
                ..
            }
        ));
    }

    /// The exponential workload: `twin n` proofs have 2^n leaves but
    /// only depth n, so step budgets and deadlines trip quickly while
    /// the stack stays shallow.
    fn twin_lib() -> (Library, RelId) {
        let (lib, ids) = lib_for(
            r"rel twin : nat :=
              | t0 : twin 0
              | tS : forall n, twin n -> twin n -> twin (S n)
              .",
            &[("twin", None)],
        );
        (lib, ids[0])
    }

    #[test]
    fn try_check_step_budget_exhausts_deterministically() {
        let (lib, twin) = twin_lib();
        let budget = Budget::unlimited().with_steps(10_000);
        let first = lib.try_check(twin, 40, 40, &[Value::nat(30)], budget);
        assert_eq!(
            first,
            Err(crate::ExecError::BudgetExhausted {
                resource: indrel_producers::Resource::Steps
            })
        );
        // Same budget, same work, same cut-off.
        assert_eq!(
            lib.try_check(twin, 40, 40, &[Value::nat(30)], budget),
            first
        );
        // ...and the poisoned run leaves no meter armed: a plain check
        // afterwards is unbudgeted and completes.
        assert_eq!(lib.check(twin, 40, 40, &[Value::nat(12)]), Some(true));
    }

    #[test]
    fn try_check_deadline_cuts_off_exponential_work() {
        let (lib, twin) = twin_lib();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        let r = lib.try_check(twin, 70, 70, &[Value::nat(64)], budget);
        assert_eq!(r, Err(crate::ExecError::Deadline));
        // 2^64 steps of work was abandoned promptly after the deadline.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn try_check_max_term_size_rejects_oversized_arguments() {
        let (lib, twin) = twin_lib();
        let budget = Budget::unlimited().with_max_term_size(8);
        assert_eq!(
            lib.try_check(twin, 5, 5, &[Value::nat(9)], budget),
            Err(crate::ExecError::BudgetExhausted {
                resource: indrel_producers::Resource::TermSize
            })
        );
        assert_eq!(
            lib.try_check(twin, 9, 9, &[Value::nat(8)], budget),
            Ok(Some(true))
        );
    }

    #[test]
    fn try_decide_budget_covers_the_fuel_ladder() {
        let (lib, twin) = twin_lib();
        assert_eq!(
            lib.try_decide(twin, &[Value::nat(5)], 64, Budget::unlimited()),
            Ok(Some(true))
        );
        assert!(matches!(
            lib.try_decide(
                twin,
                &[Value::nat(40)],
                1 << 50,
                Budget::unlimited().with_steps(50_000)
            ),
            Err(crate::ExecError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn try_enumerate_collects_or_reports_cutoff() {
        let (lib, ids) = lib_for(
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
            &[("even'", Some(vec![0]))],
        );
        let mode = Mode::producer(1, &[0]);
        let outs = lib
            .try_enumerate(ids[0], &mode, 3, 3, &[], Budget::unlimited())
            .unwrap()
            .values()
            .unwrap();
        assert_eq!(outs.len(), 4);
        // A two-step budget cannot finish the same enumeration.
        let r = lib
            .try_enumerate(ids[0], &mode, 3, 3, &[], Budget::unlimited().with_steps(2))
            .unwrap()
            .values();
        assert!(matches!(r, Err(crate::ExecError::BudgetExhausted { .. })));
    }

    #[test]
    fn try_generate_backtrack_budget() {
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            &[("le", Some(vec![0]))],
        );
        let mode = Mode::producer(2, &[0]);
        let mut rng = SmallRng::seed_from_u64(11);
        let budget = Budget::unlimited().with_backtracks(0);
        let mut saw_err = false;
        let mut saw_ok = false;
        for _ in 0..50 {
            match lib.try_generate(ids[0], &mode, 8, 8, &[Value::nat(5)], &mut rng, budget) {
                Ok(Some(out)) => {
                    assert!(out[0].as_nat().unwrap() <= 5);
                    saw_ok = true;
                }
                Ok(None) => {}
                Err(crate::ExecError::BudgetExhausted {
                    resource: indrel_producers::Resource::Backtracks,
                }) => saw_err = true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // With zero backtracks allowed, first-try successes succeed and
        // any backtracking run is cut off.
        assert!(saw_ok && saw_err, "saw_ok={saw_ok} saw_err={saw_err}");
    }

    #[test]
    fn generator_respects_inputs() {
        // generate n with le n 5
        let (lib, ids) = lib_for(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
            &[("le", Some(vec![0]))],
        );
        let mode = Mode::producer(2, &[0]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            if let Some(out) = lib.generate(ids[0], &mode, 8, 8, &[Value::nat(5)], &mut rng) {
                let n = out[0].as_nat().unwrap();
                assert!(n <= 5);
                seen.insert(n);
            }
        }
        assert!(seen.len() >= 3, "should sample a variety: {seen:?}");
    }
}
