//! The instance library — the analogue of QuickChick's typeclass
//! instances (`DecOpt`, `EnumSizedSuchThat`, `GenSizedSuchThat`).
//!
//! A [`LibraryBuilder`] accumulates instances: derived plans (created on
//! demand, with the dependency resolution of [`crate::compile`]) and
//! handwritten implementations (used both for primitive relations and as
//! the baselines of the paper's Figure 3). [`LibraryBuilder::build`]
//! freezes everything into a cheaply-cloneable [`Library`] on which the
//! executors of [`crate::exec`] run.

use crate::compile::{compile_plan, DepResolver};
use crate::error::{DeriveError, ExecError, InstanceKind};
use crate::mode::Mode;
use crate::plan::Plan;
use crate::DeriveOptions;
use indrel_producers::{EStream, Meter};
use indrel_rel::RelEnv;
use indrel_term::{RelId, Universe, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// A handwritten checker: `(size, top_size, args) → option bool`.
pub type HandCheckFn = Rc<dyn Fn(u64, u64, &[Value]) -> Option<bool>>;

/// A handwritten enumerator for a `(rel, mode)` instance:
/// `(size, top_size, inputs) → E (outputs)`, where `inputs` and the
/// produced output vectors follow the mode's positions in ascending
/// order.
pub type HandEnumFn = Rc<dyn Fn(u64, u64, &[Value]) -> EStream<Vec<Value>>>;

/// A handwritten generator for a `(rel, mode)` instance.
pub type HandGenFn = Rc<dyn Fn(u64, u64, &[Value], &mut dyn rand::RngCore) -> Option<Vec<Value>>>;

#[derive(Clone)]
pub(crate) enum CheckerImpl {
    Hand(HandCheckFn),
    /// A derived checker: the plan (for inspection and the interpreted
    /// ablation baseline) plus its closure-lowered form (the default
    /// execution strategy).
    Plan(Rc<Plan>, Rc<crate::lower::LoweredChecker>),
}

#[derive(Clone, Default)]
pub(crate) struct ProducerImpl {
    pub(crate) plan: Option<Rc<Plan>>,
    pub(crate) hand_enum: Option<HandEnumFn>,
    pub(crate) hand_gen: Option<HandGenFn>,
}

pub(crate) struct Inner {
    pub(crate) universe: Universe,
    pub(crate) env: RelEnv,
    /// Dense checker table indexed by relation id (ids are dense per
    /// `RelEnv`), so the hot external-call path avoids hashing.
    pub(crate) checkers: Vec<Option<CheckerImpl>>,
    pub(crate) producers: HashMap<(RelId, Mode), ProducerImpl>,
    /// Scratch buffers reused across plan executions (single-threaded).
    pub(crate) pool: std::cell::RefCell<Pool>,
    /// The armed budget meter, if any. Only the `try_*` entry points of
    /// [`crate::exec`] arm it (restoring the previous value on exit, so
    /// nesting and panics are safe); the internal executors merely
    /// charge whatever is armed, and charge nothing when this is `None`.
    pub(crate) meter: std::cell::RefCell<Option<Meter>>,
}

#[derive(Default)]
pub(crate) struct Pool {
    pub(crate) envs: Vec<indrel_term::Env>,
    pub(crate) args: Vec<Vec<Value>>,
    /// Memoized bounded-exhaustive enumerations of raw values, keyed by
    /// (type, size) — unconstrained-producer steps re-enumerate the
    /// same domains constantly.
    pub(crate) raw_values: HashMap<(indrel_term::TypeExpr, u64), Rc<Vec<Value>>>,
}

/// Accumulates derived and handwritten instances.
pub struct LibraryBuilder {
    universe: Universe,
    env: RelEnv,
    opts: DeriveOptions,
    checkers: HashMap<RelId, CheckerImpl>,
    producers: HashMap<(RelId, Mode), ProducerImpl>,
    in_progress: Vec<Key>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Key {
    Checker(RelId),
    Producer(RelId, Mode),
}

impl std::fmt::Debug for LibraryBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibraryBuilder")
            .field("checkers", &self.checkers.len())
            .field("producers", &self.producers.len())
            .finish()
    }
}

impl LibraryBuilder {
    /// Starts a builder over a universe and relation environment.
    pub fn new(universe: Universe, env: RelEnv) -> LibraryBuilder {
        LibraryBuilder::with_options(universe, env, DeriveOptions::default())
    }

    /// Starts a builder with explicit derivation options.
    pub fn with_options(universe: Universe, env: RelEnv, opts: DeriveOptions) -> LibraryBuilder {
        LibraryBuilder {
            universe,
            env,
            opts,
            checkers: HashMap::new(),
            producers: HashMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Access to the universe (e.g. to resolve names while registering
    /// handwritten instances).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Access to the relation environment.
    pub fn env(&self) -> &RelEnv {
        &self.env
    }

    /// Registers a handwritten checker for `rel`, shadowing any derived
    /// plan.
    pub fn register_checker(&mut self, rel: RelId, f: HandCheckFn) {
        self.checkers.insert(rel, CheckerImpl::Hand(f));
    }

    /// Registers a handwritten enumerator for `(rel, mode)`.
    pub fn register_enumerator(&mut self, rel: RelId, mode: Mode, f: HandEnumFn) {
        self.producers.entry((rel, mode)).or_default().hand_enum = Some(f);
    }

    /// Registers a handwritten generator for `(rel, mode)`.
    pub fn register_generator(&mut self, rel: RelId, mode: Mode, f: HandGenFn) {
        self.producers.entry((rel, mode)).or_default().hand_gen = Some(f);
    }

    /// Derives (if not already present) a checker for `rel`, plus every
    /// instance it depends on.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the relation (or a dependency)
    /// falls outside the supported class.
    pub fn derive_checker(&mut self, rel: RelId) -> Result<(), DeriveError> {
        self.ensure(Key::Checker(rel))
    }

    /// Derives (if not already present) a producer for `(rel, mode)`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the instance cannot be derived.
    pub fn derive_producer(&mut self, rel: RelId, mode: Mode) -> Result<(), DeriveError> {
        self.ensure(Key::Producer(rel, mode))
    }

    /// Returns the derived plan for a checker, for inspection (`None`
    /// for handwritten instances or before derivation).
    pub fn checker_plan(&self, rel: RelId) -> Option<&Plan> {
        match self.checkers.get(&rel) {
            Some(CheckerImpl::Plan(p, _)) => Some(p),
            _ => None,
        }
    }

    /// Returns the derived plan for a producer, for inspection.
    pub fn producer_plan(&self, rel: RelId, mode: &Mode) -> Option<&Plan> {
        self.producers
            .get(&(rel, mode.clone()))
            .and_then(|p| p.plan.as_deref())
    }

    fn ensure(&mut self, key: Key) -> Result<(), DeriveError> {
        let exists = match &key {
            Key::Checker(rel) => self.checkers.contains_key(rel),
            Key::Producer(rel, mode) => {
                self.producers.get(&(*rel, mode.clone())).is_some_and(|p| {
                    p.plan.is_some() || (p.hand_enum.is_some() && p.hand_gen.is_some())
                })
            }
        };
        if exists {
            return Ok(());
        }
        if self.in_progress.contains(&key) {
            return Err(DeriveError::InstanceCycle {
                cycle: format!("{:?} depends on itself through other instances", key),
            });
        }
        self.in_progress.push(key.clone());
        let result = match &key {
            Key::Checker(rel) => {
                compile_plan(
                    // Field-splitting workaround: compile_plan borrows the
                    // universe/env immutably while `self` resolves deps
                    // mutably, so hand it clones of the (cheap, Rc-backed)
                    // registries.
                    &self.universe.clone(),
                    &self.env.clone(),
                    *rel,
                    Mode::checker(self.env.relation(*rel).arity()),
                    self.opts,
                    self,
                )
                .map(|plan| {
                    let lowered = Rc::new(crate::lower::lower_checker(&plan));
                    self.checkers
                        .insert(*rel, CheckerImpl::Plan(Rc::new(plan), lowered));
                })
            }
            Key::Producer(rel, mode) => compile_plan(
                &self.universe.clone(),
                &self.env.clone(),
                *rel,
                mode.clone(),
                self.opts,
                self,
            )
            .map(|plan| {
                self.producers.entry((*rel, mode.clone())).or_default().plan = Some(Rc::new(plan));
            }),
        };
        self.in_progress.pop();
        result
    }

    /// Freezes the builder into an executable [`Library`].
    pub fn build(self) -> Library {
        let mut checkers: Vec<Option<CheckerImpl>> = vec![None; self.env.len()];
        for (rel, imp) in self.checkers {
            checkers[rel.index()] = Some(imp);
        }
        Library {
            inner: Rc::new(Inner {
                universe: self.universe,
                env: self.env,
                checkers,
                producers: self.producers,
                pool: std::cell::RefCell::new(Pool::default()),
                meter: std::cell::RefCell::new(None),
            }),
        }
    }
}

impl DepResolver for LibraryBuilder {
    fn ensure_checker(&mut self, rel: RelId) -> Result<(), DeriveError> {
        self.ensure(Key::Checker(rel))
    }

    fn ensure_producer(&mut self, rel: RelId, mode: &Mode) -> Result<(), DeriveError> {
        self.ensure(Key::Producer(rel, mode.clone()))
    }
}

/// The frozen, executable instance library.
///
/// Cloning is O(1); executors capture clones inside lazy enumerator
/// streams. See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Library {
    pub(crate) inner: Rc<Inner>,
}

impl std::fmt::Debug for Library {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Library")
            .field("checkers", &self.inner.checkers.len())
            .field("producers", &self.inner.producers.len())
            .finish()
    }
}

impl Library {
    /// The universe the library was built over.
    pub fn universe(&self) -> &Universe {
        &self.inner.universe
    }

    /// The relation environment the library was built over.
    pub fn env(&self) -> &RelEnv {
        &self.inner.env
    }

    /// `true` when a checker instance exists for `rel`.
    pub fn has_checker(&self, rel: RelId) -> bool {
        self.inner
            .checkers
            .get(rel.index())
            .is_some_and(Option::is_some)
    }

    /// `true` when a producer instance exists for `(rel, mode)`.
    pub fn has_producer(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner.producers.contains_key(&(rel, mode.clone()))
    }

    /// `true` when `(rel, mode)` can be enumerated — a derived plan or
    /// a handwritten enumerator is registered.
    pub fn has_enumerator(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner
            .producers
            .get(&(rel, mode.clone()))
            .is_some_and(|p| p.hand_enum.is_some() || p.plan.is_some())
    }

    /// `true` when `(rel, mode)` can be randomly generated from — a
    /// derived plan or a handwritten generator is registered.
    pub fn has_generator(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner
            .producers
            .get(&(rel, mode.clone()))
            .is_some_and(|p| p.hand_gen.is_some() || p.plan.is_some())
    }

    /// Looks up the checker for `rel`, as a value (`Rc`-backed clones
    /// are cheap).
    pub(crate) fn require_checker(&self, rel: RelId) -> Result<CheckerImpl, ExecError> {
        self.inner
            .checkers
            .get(rel.index())
            .and_then(Option::as_ref)
            .cloned()
            .ok_or_else(|| ExecError::NoInstance {
                kind: InstanceKind::Checker,
                rel: self.inner.env.relation(rel).name().to_string(),
                mode: None,
            })
    }

    /// Looks up the producer for `(rel, mode)`, requiring the half
    /// (enumerator or generator) that `kind` asks for.
    pub(crate) fn require_producer(
        &self,
        rel: RelId,
        mode: &Mode,
        kind: InstanceKind,
    ) -> Result<ProducerImpl, ExecError> {
        let no_instance = || ExecError::NoInstance {
            kind,
            rel: self.inner.env.relation(rel).name().to_string(),
            mode: Some(mode.to_string()),
        };
        let entry = self
            .inner
            .producers
            .get(&(rel, mode.clone()))
            .ok_or_else(no_instance)?;
        let usable = match kind {
            InstanceKind::Enumerator => entry.hand_enum.is_some() || entry.plan.is_some(),
            InstanceKind::Generator => entry.hand_gen.is_some() || entry.plan.is_some(),
            InstanceKind::Checker => false,
        };
        if usable {
            Ok(entry.clone())
        } else {
            Err(no_instance())
        }
    }

    /// Errors unless exactly `expected` values were supplied — the
    /// relation's arity for checkers, the mode's input count for
    /// producers.
    pub(crate) fn require_count(
        &self,
        rel: RelId,
        expected: usize,
        got: usize,
    ) -> Result<(), ExecError> {
        if got == expected {
            Ok(())
        } else {
            Err(ExecError::ArityMismatch {
                rel: self.inner.env.relation(rel).name().to_string(),
                expected,
                got,
            })
        }
    }
}
