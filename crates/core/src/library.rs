//! The instance library — the analogue of QuickChick's typeclass
//! instances (`DecOpt`, `EnumSizedSuchThat`, `GenSizedSuchThat`).
//!
//! A [`LibraryBuilder`] accumulates instances: derived plans (created on
//! demand, with the dependency resolution of [`crate::compile`]) and
//! handwritten implementations (used both for primitive relations and as
//! the baselines of the paper's Figure 3). [`LibraryBuilder::build`]
//! freezes everything into a cheaply-cloneable [`Library`] on which the
//! executors of [`crate::exec`] run.

use crate::compile::{compile_plan, compile_plan_with_profile, DepResolver};
use crate::cost::CostProfile;
use crate::error::{DeriveError, ExecError, InstanceKind};
use crate::mode::Mode;
use crate::plan::Plan;
use crate::DeriveOptions;
use indrel_producers::{EStream, Event, ExecProbe, Meter, NameTable, PremiseStats, SearchStats};
use indrel_rel::RelEnv;
use indrel_term::{RelId, Universe, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// A handwritten checker: `(size, top_size, args) → option bool`.
/// `Send + Sync` (like every registered instance) so the built library
/// can be shared across parallel test workers via [`SharedLibrary`].
pub type HandCheckFn = Arc<dyn Fn(u64, u64, &[Value]) -> Option<bool> + Send + Sync>;

/// A handwritten enumerator for a `(rel, mode)` instance:
/// `(size, top_size, inputs) → E (outputs)`, where `inputs` and the
/// produced output vectors follow the mode's positions in ascending
/// order. (The closure must be `Send + Sync`; the streams it returns
/// stay on the calling thread.)
pub type HandEnumFn = Arc<dyn Fn(u64, u64, &[Value]) -> EStream<Vec<Value>> + Send + Sync>;

/// A handwritten generator for a `(rel, mode)` instance.
pub type HandGenFn =
    Arc<dyn Fn(u64, u64, &[Value], &mut dyn rand::RngCore) -> Option<Vec<Value>> + Send + Sync>;

#[derive(Clone)]
pub(crate) enum CheckerImpl {
    Hand(HandCheckFn),
    /// A derived checker: the plan (for inspection and the interpreted
    /// ablation baseline) plus its closure-lowered form (the default
    /// execution strategy).
    Plan(Arc<Plan>, Arc<crate::lower::LoweredChecker>),
}

#[derive(Clone, Default)]
pub(crate) struct ProducerImpl {
    pub(crate) plan: Option<Arc<Plan>>,
    pub(crate) hand_enum: Option<HandEnumFn>,
    pub(crate) hand_gen: Option<HandGenFn>,
}

/// The immutable core of a built library: everything [`LibraryBuilder`]
/// froze, and nothing session-local. `Send + Sync` — this is the part a
/// [`SharedLibrary`] hands across threads.
pub(crate) struct Shared {
    pub(crate) universe: Universe,
    pub(crate) env: RelEnv,
    /// The options everything was derived under; kept so the replanner
    /// ([`Library::replan_from`]) can recompile with the same settings.
    pub(crate) opts: DeriveOptions,
    /// Dense checker table indexed by relation id (ids are dense per
    /// `RelEnv`), so the hot external-call path avoids hashing.
    pub(crate) checkers: Vec<Option<CheckerImpl>>,
    pub(crate) producers: HashMap<(RelId, Mode), ProducerImpl>,
    /// The measured cost profile the checker plans were scheduled
    /// under — `None` for fresh builds (static seeds only), `Some` for
    /// cores produced by [`Library::replan_from`]. `explain()` renders
    /// it as the replanned-cost column.
    pub(crate) profile: Option<Arc<CostProfile>>,
}

// The whole point of the split: the frozen core must be shareable
// across worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Shared>();
    assert_send_sync::<SharedLibrary>();
};

/// One session over a [`Shared`] core: the frozen instances plus the
/// single-threaded mutable execution state (scratch pools, the armed
/// meter and probe, nesting depth). Field accesses for the frozen part
/// go through `Deref`.
pub(crate) struct Inner {
    pub(crate) shared: Arc<Shared>,
    /// Scratch buffers reused across plan executions (single-threaded).
    pub(crate) pool: std::cell::RefCell<Pool>,
    /// The armed budget meter, if any. Only the `try_*` entry points of
    /// [`crate::exec`] arm it (restoring the previous value on exit, so
    /// nesting and panics are safe); the internal executors merely
    /// charge whatever is armed, and charge nothing when this is `None`.
    pub(crate) meter: std::cell::RefCell<Option<Meter>>,
    /// The armed telemetry probe; [`Library::arm_probe`] swaps it in
    /// (guard-restored, like the meter). [`ExecProbe::NoProbe`] by
    /// default.
    pub(crate) probe: std::cell::RefCell<ExecProbe>,
    /// Mirror of `probe.is_armed()`, readable without a `RefCell`
    /// borrow — the executors check this flag at every emission site, so
    /// the unarmed cost is one `Cell` load and branch.
    pub(crate) probe_armed: std::cell::Cell<bool>,
    /// Current executor nesting depth, for `Event::Enter`.
    pub(crate) depth: std::cell::Cell<u32>,
    /// The session's verdict table (tabling, [`crate::memo`]). Present
    /// but inert until [`Library::with_memo`] flips `memo_enabled`.
    pub(crate) memo: std::cell::RefCell<crate::memo::MemoTable>,
    /// Mirror flag, like `probe_armed`: the lowered checker consults it
    /// on every entry, so the disabled cost is one `Cell` load.
    pub(crate) memo_enabled: std::cell::Cell<bool>,
    /// Bytecode routing flag ([`Library::with_vm`]): when set, derived
    /// checkers whose plan compiled to a [`crate::vm::VmProgram`] run
    /// through the register VM instead of the closure tree. Same
    /// session-state discipline as `memo_enabled`: clones share it,
    /// [`Library::fork`] resets it.
    pub(crate) vm_enabled: std::cell::Cell<bool>,
    /// Monotone count of lowered checker searches this session; the
    /// delta across one search is the memo layer's cost gate (a verdict
    /// that cost fewer than [`crate::memo::MIN_SEARCH_COST`] recursions
    /// is not worth caching).
    pub(crate) search_calls: std::cell::Cell<u64>,
    /// The process-wide concurrent verdict table ([`crate::serve`]),
    /// when this session serves requests through one. Consulted by the
    /// lowered checker at the same entry boundaries as the local table;
    /// `None` (one `RefCell` borrow + `Option` check per entry) for
    /// ordinary sessions.
    pub(crate) shared_memo: std::cell::RefCell<Option<Arc<crate::serve::SharedMemo>>>,
    /// Session-local count of shared-table hits, so the serving layer
    /// can attribute memo reuse to individual requests (the table's own
    /// counters are process-wide). Only advanced on the shared-memo
    /// path.
    pub(crate) shared_hits: std::cell::Cell<u64>,
    /// Session-local count of shared-table misses; see `shared_hits`.
    pub(crate) shared_misses: std::cell::Cell<u64>,
    /// Scratch frames for the bytecode VM ([`crate::vm`]), kept on the
    /// session so frame and argument vectors amortize across checks.
    /// Taken wholesale at each VM entry (never borrowed across the
    /// search, so re-entrant entries just start cold) and merged back.
    pub(crate) vm_frames: std::cell::RefCell<crate::vm::VmFrames>,
}

impl Inner {
    /// Fresh session state over a frozen core.
    fn fresh(shared: Arc<Shared>) -> Inner {
        Inner {
            shared,
            pool: std::cell::RefCell::new(Pool::default()),
            meter: std::cell::RefCell::new(None),
            probe: std::cell::RefCell::new(ExecProbe::NoProbe),
            probe_armed: std::cell::Cell::new(false),
            depth: std::cell::Cell::new(0),
            memo: std::cell::RefCell::new(crate::memo::MemoTable::default()),
            memo_enabled: std::cell::Cell::new(false),
            vm_enabled: std::cell::Cell::new(false),
            search_calls: std::cell::Cell::new(0),
            shared_memo: std::cell::RefCell::new(None),
            shared_hits: std::cell::Cell::new(0),
            shared_misses: std::cell::Cell::new(0),
            vm_frames: std::cell::RefCell::new(crate::vm::VmFrames::default()),
        }
    }
}

impl std::ops::Deref for Inner {
    type Target = Shared;

    fn deref(&self) -> &Shared {
        &self.shared
    }
}

#[derive(Default)]
pub(crate) struct Pool {
    pub(crate) envs: Vec<indrel_term::Env>,
    pub(crate) args: Vec<Vec<Value>>,
    /// Memoized bounded-exhaustive enumerations of raw values, keyed by
    /// (type, size) — unconstrained-producer steps re-enumerate the
    /// same domains constantly.
    pub(crate) raw_values: HashMap<(indrel_term::TypeExpr, u64), Rc<Vec<Value>>>,
}

/// Accumulates derived and handwritten instances.
pub struct LibraryBuilder {
    universe: Universe,
    env: RelEnv,
    opts: DeriveOptions,
    /// Measured premise costs steering the compile-time scheduler;
    /// `None` (static seeds) for ordinary builds, `Some` when the
    /// builder was set up by [`Library::replan_from`].
    profile: Option<Arc<CostProfile>>,
    checkers: HashMap<RelId, CheckerImpl>,
    producers: HashMap<(RelId, Mode), ProducerImpl>,
    in_progress: Vec<Key>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Key {
    Checker(RelId),
    Producer(RelId, Mode),
}

impl std::fmt::Debug for LibraryBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibraryBuilder")
            .field("checkers", &self.checkers.len())
            .field("producers", &self.producers.len())
            .finish()
    }
}

impl LibraryBuilder {
    /// Starts a builder over a universe and relation environment.
    pub fn new(universe: Universe, env: RelEnv) -> LibraryBuilder {
        LibraryBuilder::with_options(universe, env, DeriveOptions::default())
    }

    /// Starts a builder with explicit derivation options.
    pub fn with_options(universe: Universe, env: RelEnv, opts: DeriveOptions) -> LibraryBuilder {
        LibraryBuilder {
            universe,
            env,
            opts,
            profile: None,
            checkers: HashMap::new(),
            producers: HashMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Access to the universe (e.g. to resolve names while registering
    /// handwritten instances).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Access to the relation environment.
    pub fn env(&self) -> &RelEnv {
        &self.env
    }

    /// Steers the greedy premise scheduler with measured (or synthetic)
    /// per-premise costs for every subsequent derivation, in place of
    /// the static [`Step::static_cost`](crate::plan::Step) seeds.
    ///
    /// This is the builder-level entry point under
    /// [`Library::replan_from`], exposed so tests can force reorders
    /// with synthetic profiles; already-derived instances are not
    /// recompiled.
    pub fn set_profile(&mut self, profile: CostProfile) {
        self.profile = Some(Arc::new(profile));
    }

    /// Registers a handwritten checker for `rel`, shadowing any derived
    /// plan.
    pub fn register_checker(&mut self, rel: RelId, f: HandCheckFn) {
        self.checkers.insert(rel, CheckerImpl::Hand(f));
    }

    /// Registers a handwritten enumerator for `(rel, mode)`.
    pub fn register_enumerator(&mut self, rel: RelId, mode: Mode, f: HandEnumFn) {
        self.producers.entry((rel, mode)).or_default().hand_enum = Some(f);
    }

    /// Registers a handwritten generator for `(rel, mode)`.
    pub fn register_generator(&mut self, rel: RelId, mode: Mode, f: HandGenFn) {
        self.producers.entry((rel, mode)).or_default().hand_gen = Some(f);
    }

    /// Derives (if not already present) a checker for `rel`, plus every
    /// instance it depends on.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the relation (or a dependency)
    /// falls outside the supported class.
    pub fn derive_checker(&mut self, rel: RelId) -> Result<(), DeriveError> {
        self.ensure(Key::Checker(rel))
    }

    /// Derives (if not already present) a producer for `(rel, mode)`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeriveError`] when the instance cannot be derived.
    pub fn derive_producer(&mut self, rel: RelId, mode: Mode) -> Result<(), DeriveError> {
        self.ensure(Key::Producer(rel, mode))
    }

    /// Returns the derived plan for a checker, for inspection (`None`
    /// for handwritten instances or before derivation).
    pub fn checker_plan(&self, rel: RelId) -> Option<&Plan> {
        match self.checkers.get(&rel) {
            Some(CheckerImpl::Plan(p, _)) => Some(p),
            _ => None,
        }
    }

    /// Returns the derived plan for a producer, for inspection.
    pub fn producer_plan(&self, rel: RelId, mode: &Mode) -> Option<&Plan> {
        self.producers
            .get(&(rel, mode.clone()))
            .and_then(|p| p.plan.as_deref())
    }

    fn ensure(&mut self, key: Key) -> Result<(), DeriveError> {
        let exists = match &key {
            Key::Checker(rel) => self.checkers.contains_key(rel),
            Key::Producer(rel, mode) => {
                self.producers.get(&(*rel, mode.clone())).is_some_and(|p| {
                    p.plan.is_some() || (p.hand_enum.is_some() && p.hand_gen.is_some())
                })
            }
        };
        if exists {
            return Ok(());
        }
        if self.in_progress.contains(&key) {
            return Err(DeriveError::InstanceCycle {
                cycle: format!("{:?} depends on itself through other instances", key),
            });
        }
        self.in_progress.push(key.clone());
        let profile = self.profile.clone();
        let result = match &key {
            Key::Checker(rel) => {
                compile_plan_with_profile(
                    // Field-splitting workaround: compile_plan borrows the
                    // universe/env immutably while `self` resolves deps
                    // mutably, so hand it clones of the (cheap, Rc-backed)
                    // registries.
                    &self.universe.clone(),
                    &self.env.clone(),
                    *rel,
                    Mode::checker(self.env.relation(*rel).arity()),
                    self.opts,
                    profile.as_deref(),
                    self,
                )
                .map(|plan| {
                    let lowered = Arc::new(crate::lower::lower_checker(&plan));
                    self.checkers
                        .insert(*rel, CheckerImpl::Plan(Arc::new(plan), lowered));
                })
            }
            Key::Producer(rel, mode) => compile_plan(
                &self.universe.clone(),
                &self.env.clone(),
                *rel,
                mode.clone(),
                self.opts,
                self,
            )
            .map(|plan| {
                self.producers.entry((*rel, mode.clone())).or_default().plan = Some(Arc::new(plan));
            }),
        };
        self.in_progress.pop();
        result
    }

    /// Freezes the builder into an executable [`Library`].
    pub fn build(self) -> Library {
        let mut checkers: Vec<Option<CheckerImpl>> = vec![None; self.env.len()];
        for (rel, imp) in self.checkers {
            checkers[rel.index()] = Some(imp);
        }
        Library {
            inner: Rc::new(Inner::fresh(Arc::new(Shared {
                universe: self.universe,
                env: self.env,
                opts: self.opts,
                checkers,
                producers: self.producers,
                profile: self.profile,
            }))),
        }
    }
}

/// Restores the previously armed probe when dropped; returned by
/// [`Library::arm_probe`].
pub struct ProbeGuard<'a> {
    lib: &'a Library,
    prev: Option<ExecProbe>,
    prev_armed: bool,
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            *self.lib.inner.probe.borrow_mut() = prev;
            self.lib.inner.probe_armed.set(self.prev_armed);
        }
    }
}

/// What one [`Library::replan_from`] pass did, relation by relation.
///
/// Replans are deterministic: this report — like the plans themselves —
/// is a pure function of the frozen core and the stats snapshot, so two
/// replans from byte-identical snapshots agree exactly.
#[derive(Clone, Debug, Default)]
pub struct ReplanReport {
    /// Relations recompiled into a *different* premise schedule. Only
    /// these emit [`Event::Replanned`]; probe streams and budget
    /// charges may differ from the old core for them.
    pub replanned: Vec<RelId>,
    /// Relations whose observed costs diverged enough to recompile but
    /// whose profile-guided schedule reproduced the existing plan (the
    /// static order was already optimal).
    pub unchanged: Vec<RelId>,
    /// Derived relations with no observed divergence; their compiled
    /// plans (and lowered/bytecode forms) were reused as-is.
    pub kept: Vec<RelId>,
    /// Relations whose profile-guided recompile failed; the old plan
    /// was kept so the library keeps serving, and the error recorded.
    pub errors: Vec<(RelId, String)>,
}

impl ReplanReport {
    /// `true` when `rel`'s plan changed in this pass.
    pub fn plan_changed(&self, rel: RelId) -> bool {
        self.replanned.contains(&rel)
    }

    /// `true` when every plan was reused or reproduced unchanged — the
    /// replanned library is behaviourally identical to the source.
    pub fn is_noop(&self) -> bool {
        self.replanned.is_empty()
    }
}

impl DepResolver for LibraryBuilder {
    fn ensure_checker(&mut self, rel: RelId) -> Result<(), DeriveError> {
        self.ensure(Key::Checker(rel))
    }

    fn ensure_producer(&mut self, rel: RelId, mode: &Mode) -> Result<(), DeriveError> {
        self.ensure(Key::Producer(rel, mode.clone()))
    }
}

/// The frozen, executable instance library.
///
/// Cloning is O(1); executors capture clones inside lazy enumerator
/// streams. See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Library {
    pub(crate) inner: Rc<Inner>,
}

impl std::fmt::Debug for Library {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Library")
            .field("checkers", &self.inner.checkers.len())
            .field("producers", &self.inner.producers.len())
            .finish()
    }
}

/// A `Send + Sync` handle on a library's frozen core, for parallel
/// test runs: derived plans, lowered checkers, and handwritten
/// instances are shared (never re-derived), while each worker gets its
/// own single-threaded session state — scratch pools, armed meter,
/// armed probe — by calling [`SharedLibrary::fork`].
///
/// # Example
///
/// ```
/// use indrel_core::LibraryBuilder;
/// use indrel_rel::{parse::parse_program, RelEnv};
/// use indrel_term::{Universe, Value};
///
/// let mut u = Universe::new();
/// let mut env = RelEnv::new();
/// parse_program(&mut u, &mut env, r"
///     rel even' : nat :=
///     | even_0  : even' 0
///     | even_SS : forall n, even' n -> even' (S (S n))
///     .
/// ").unwrap();
/// let even = env.rel_id("even'").unwrap();
/// let mut builder = LibraryBuilder::new(u, env);
/// builder.derive_checker(even).unwrap();
/// let shared = builder.build().shared();
///
/// let worker = std::thread::spawn(move || {
///     let lib = shared.fork(); // same compiled plans, fresh session
///     lib.check(even, 10, 10, &[Value::nat(4)])
/// });
/// assert_eq!(worker.join().unwrap(), Some(true));
/// ```
#[derive(Clone)]
pub struct SharedLibrary {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SharedLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLibrary")
            .field("checkers", &self.shared.checkers.len())
            .field("producers", &self.shared.producers.len())
            .finish()
    }
}

impl SharedLibrary {
    /// A fresh [`Library`] session over the shared core, with its own
    /// scratch pools and (unarmed) meter and probe. O(1) — nothing is
    /// re-derived or re-lowered.
    pub fn fork(&self) -> Library {
        Library {
            inner: Rc::new(Inner::fresh(Arc::clone(&self.shared))),
        }
    }
}

impl Library {
    /// The universe the library was built over.
    pub fn universe(&self) -> &Universe {
        &self.inner.universe
    }

    /// A `Send + Sync` handle on this library's frozen core; see
    /// [`SharedLibrary`].
    pub fn shared(&self) -> SharedLibrary {
        SharedLibrary {
            shared: Arc::clone(&self.inner.shared),
        }
    }

    /// A fresh session over the same frozen core — shorthand for
    /// `self.shared().fork()`. The fork shares all compiled instances
    /// but none of the session state (pools, armed meter/probe), which
    /// is what a parallel test worker wants.
    pub fn fork(&self) -> Library {
        self.shared().fork()
    }

    /// The relation environment the library was built over.
    pub fn env(&self) -> &RelEnv {
        &self.inner.env
    }

    /// `true` when a checker instance exists for `rel`.
    pub fn has_checker(&self, rel: RelId) -> bool {
        self.inner
            .checkers
            .get(rel.index())
            .is_some_and(Option::is_some)
    }

    /// `true` when a producer instance exists for `(rel, mode)`.
    pub fn has_producer(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner.producers.contains_key(&(rel, mode.clone()))
    }

    /// `true` when `(rel, mode)` can be enumerated — a derived plan or
    /// a handwritten enumerator is registered.
    pub fn has_enumerator(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner
            .producers
            .get(&(rel, mode.clone()))
            .is_some_and(|p| p.hand_enum.is_some() || p.plan.is_some())
    }

    /// `true` when `(rel, mode)` can be randomly generated from — a
    /// derived plan or a handwritten generator is registered.
    pub fn has_generator(&self, rel: RelId, mode: &Mode) -> bool {
        self.inner
            .producers
            .get(&(rel, mode.clone()))
            .is_some_and(|p| p.hand_gen.is_some() || p.plan.is_some())
    }

    /// Looks up the checker for `rel`, borrowing straight out of the
    /// frozen table — the checker hot path pays no per-call clone.
    pub(crate) fn require_checker(&self, rel: RelId) -> Result<&CheckerImpl, ExecError> {
        self.inner
            .checkers
            .get(rel.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| ExecError::NoInstance {
                kind: InstanceKind::Checker,
                rel: self.inner.env.relation(rel).name().to_string(),
                mode: None,
            })
    }

    /// Looks up the producer for `(rel, mode)`, requiring the half
    /// (enumerator or generator) that `kind` asks for. Borrows from the
    /// frozen table, like [`Library::require_checker`].
    pub(crate) fn require_producer(
        &self,
        rel: RelId,
        mode: &Mode,
        kind: InstanceKind,
    ) -> Result<&ProducerImpl, ExecError> {
        let no_instance = || ExecError::NoInstance {
            kind,
            rel: self.inner.env.relation(rel).name().to_string(),
            mode: Some(mode.to_string()),
        };
        let entry = self
            .inner
            .producers
            .get(&(rel, mode.clone()))
            .ok_or_else(no_instance)?;
        let usable = match kind {
            InstanceKind::Enumerator => entry.hand_enum.is_some() || entry.plan.is_some(),
            InstanceKind::Generator => entry.hand_gen.is_some() || entry.plan.is_some(),
            InstanceKind::Checker => false,
        };
        if usable {
            Ok(entry)
        } else {
            Err(no_instance())
        }
    }

    /// Enables tabling on this session and returns it, for chaining:
    /// derived checkers cache decided (`Some`) verdicts across calls,
    /// justified by the monotonicity theorems of §5 (see
    /// [`crate::memo`]). Out-of-fuel `None` verdicts are never cached.
    ///
    /// The flag is session state: clones of this `Library` share it,
    /// but [`Library::fork`] starts with tabling off again.
    ///
    /// # Example
    ///
    /// ```ignore
    /// let lib = builder.build().with_memo();
    /// lib.check(rel, fuel, fuel, &args); // first call fills the table
    /// lib.check(rel, fuel, fuel, &args); // answered from the table
    /// ```
    pub fn with_memo(self) -> Library {
        self.inner.memo_enabled.set(true);
        self
    }

    /// Enables the compiled bytecode backend (`vm.rs`) on this
    /// session and returns it, for chaining: derived checkers whose
    /// plan compiled run through the register VM's dispatch loop
    /// instead of the closure tree, with identical verdicts, budget
    /// charges, and probe events (the `interp_vs_compiled` fuzz oracle
    /// and `tests/vm_parity.rs` hold the backend to that contract).
    /// Relations whose plan did not compile — see the compilability
    /// rules in DESIGN.md § "Bytecode VM" — keep using the closure
    /// tree, per relation, with no API difference.
    ///
    /// The flag is session state, like [`Library::with_memo`]: clones
    /// of this `Library` share it, [`Library::fork`] starts with it off
    /// again. It composes with tabling and the shared serving table —
    /// the memo layers sit above the backend switch.
    ///
    /// # Example
    ///
    /// ```ignore
    /// let lib = builder.build().with_vm();
    /// lib.check(rel, fuel, fuel, &args); // compiled dispatch loop
    /// ```
    pub fn with_vm(self) -> Library {
        self.inner.vm_enabled.set(true);
        self
    }

    /// `true` when the compiled bytecode backend is enabled on this
    /// session.
    pub fn vm_enabled(&self) -> bool {
        self.inner.vm_enabled.get()
    }

    /// `true` when `rel` has a derived checker whose plan compiled to
    /// bytecode — i.e. a [`Library::with_vm`] session actually runs it
    /// on the VM rather than falling back to the closure tree.
    /// Handwritten checkers and uncompilable plans report `false`.
    pub fn vm_compiled(&self, rel: RelId) -> bool {
        matches!(
            self.inner.checkers.get(rel.index()).and_then(Option::as_ref),
            Some(CheckerImpl::Plan(_, lowered)) if lowered.vm.is_some()
        )
    }

    /// Like [`Library::with_memo`], with an explicit bound on the
    /// number of cached verdicts (and interned term nodes). Once full,
    /// the table stops admitting new entries — deterministic, no
    /// eviction — and existing entries keep serving hits.
    pub fn with_memo_capacity(self, max_entries: usize) -> Library {
        self.inner
            .memo
            .replace(crate::memo::MemoTable::with_capacity(max_entries));
        self.with_memo()
    }

    /// Attaches a process-wide concurrent verdict table
    /// ([`serve::SharedMemo`](crate::serve::SharedMemo)) to this
    /// session and returns it, for chaining. The lowered checker
    /// consults the shared table at the same entry boundaries as the
    /// local one (and under the same write guards); fuel monotonicity
    /// makes verdicts cached by *any* session valid for every session
    /// over the same frozen core. The caller must only attach tables
    /// created for this library's [`SharedLibrary`] core — fingerprints
    /// are structural, but relation ids are only meaningful per core.
    pub fn with_shared_memo(self, memo: Arc<crate::serve::SharedMemo>) -> Library {
        *self.inner.shared_memo.borrow_mut() = Some(memo);
        self
    }

    /// This session's cumulative shared-table `(hits, misses)` counts.
    /// The serving layer reads the delta across one request to give each
    /// [`RequestSpan`](crate::serve::RequestSpan) its memo attribution;
    /// both stay zero for sessions without a shared table.
    pub fn shared_memo_counts(&self) -> (u64, u64) {
        (self.inner.shared_hits.get(), self.inner.shared_misses.get())
    }

    /// `true` when tabling is enabled on this session.
    pub fn memo_enabled(&self) -> bool {
        self.inner.memo_enabled.get()
    }

    /// This session's tabling counters (all zero when tabling was never
    /// enabled).
    pub fn memo_stats(&self) -> crate::memo::MemoStats {
        self.inner.memo.borrow().stats()
    }

    /// Arms `probe` on this library until the returned guard drops,
    /// installing relation/rule names into the probe's sinks first.
    ///
    /// Clones share the probe (the library's state is `Rc`-shared), so
    /// arming affects every executor entered through any clone —
    /// including clones captured inside lazy enumerator streams. The
    /// guard restores whatever probe was armed before, so nesting is
    /// safe; keep the guard in a named binding (`let _probe = ...`) or
    /// it drops immediately.
    ///
    /// # Example
    ///
    /// ```ignore
    /// let stats = SearchStats::new();
    /// let guard = lib.arm_probe(ExecProbe::stats(&stats));
    /// lib.check(rel, fuel, fuel, &args);
    /// drop(guard);
    /// println!("{stats}");
    /// ```
    pub fn arm_probe(&self, probe: ExecProbe) -> ProbeGuard<'_> {
        probe.set_names(&self.probe_names());
        let armed = probe.is_armed();
        let prev = self.inner.probe.replace(probe);
        let prev_armed = self.inner.probe_armed.replace(armed);
        ProbeGuard {
            lib: self,
            prev: Some(prev),
            prev_armed,
        }
    }

    /// The relation and rule names probes should report. Rule names
    /// follow *handler* order (what probe events index by): the derived
    /// checker plan's handler names where one exists, the declared rule
    /// order otherwise.
    pub fn probe_names(&self) -> NameTable {
        let mut names = NameTable::default();
        for (rel, relation) in self.inner.env.iter() {
            names.rels.push(relation.name().to_string());
            let from_plan = match self.inner.checkers.get(rel.index()) {
                Some(Some(CheckerImpl::Plan(plan, _))) => Some(
                    plan.handlers
                        .iter()
                        .map(|h| h.name.clone())
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            };
            names.rules.push(from_plan.unwrap_or_else(|| {
                relation
                    .rules()
                    .iter()
                    .map(|r| r.name().to_string())
                    .collect()
            }));
        }
        names
    }

    /// A debug rendering of everything the library knows about `rel`:
    /// each instance's derived plan (via
    /// [`Plan::display`](crate::plan::Plan::display)) together with its
    /// static [`step_stats`](crate::plan::Plan::step_stats), so static
    /// plan shape can be compared side by side with the dynamic
    /// [`SearchStats`] a probe collects.
    ///
    /// When a stats probe is armed on this session, the checker plan is
    /// followed by a per-premise **estimated-vs-observed cost table**
    /// (see [`Library::explain_with_stats`] for the explicit-stats
    /// form): one row per plan step, pairing the scheduler's static
    /// cost estimate ([`Step::static_cost`](crate::plan::Step)) with
    /// the probe's observed attribution — evaluations, mean search
    /// entries per evaluation, and conclusive failures. This table is
    /// the input the profile-guided replanner
    /// (`Library::replan_from(stats)`) will consume.
    pub fn explain(&self, rel: RelId) -> String {
        let armed = match &*self.inner.probe.borrow() {
            ExecProbe::Stats(s) | ExecProbe::Both(s, _) => Some(s.clone()),
            ExecProbe::NoProbe | ExecProbe::Trace(_) => None,
        };
        self.explain_inner(rel, armed.as_ref())
    }

    /// [`Library::explain`] against an explicit stats accumulator —
    /// e.g. one merged from several worker sessions with
    /// [`SearchStats::merge_from`] — rather than whatever probe is
    /// currently armed.
    pub fn explain_with_stats(&self, rel: RelId, stats: &SearchStats) -> String {
        self.explain_inner(rel, Some(stats))
    }

    /// Profile-guided replanning: recompiles every derived checker
    /// whose observed per-premise costs (from `stats`, typically filled
    /// by a [`SearchStats`] probe armed over a representative workload)
    /// diverge from the scheduler's static estimates, steering the
    /// greedy scheduler of [`crate::compile`] with the measured costs
    /// instead of the seeds. Returns a fresh library session over the
    /// replanned core; handwritten instances, producers, and
    /// non-diverged plans are reused as-is (same `Arc`s, nothing
    /// re-lowered).
    ///
    /// The replan is a **deterministic function of the stats
    /// snapshot**: byte-identical snapshots produce byte-identical
    /// plans. [`Event::Replanned`] is emitted through this session's
    /// armed probe for each relation whose plan actually changed.
    ///
    /// The returned session starts fresh (no memo, VM off) — re-enable
    /// per session, or use
    /// [`Session::replan_hot`](crate::serve::Session::replan_hot) to
    /// keep serving-layer attachments. Use
    /// [`Library::replan_from_report`] to learn what changed.
    pub fn replan_from(&self, stats: &SearchStats) -> Library {
        self.replan_from_report(stats).0
    }

    /// [`Library::replan_from`], also returning a [`ReplanReport`] of
    /// which relations were replanned, reproduced, kept, or failed.
    pub fn replan_from_report(&self, stats: &SearchStats) -> (Library, ReplanReport) {
        let shared = &*self.inner.shared;
        // 1. Attribute the snapshot to *source premises* through each
        //    plan's provenance map (stats are keyed by plan step, which
        //    a replan would renumber), and collect the relations whose
        //    observations diverge from the static estimates.
        let mut profile = CostProfile::new();
        let mut diverged: BTreeSet<usize> = BTreeSet::new();
        let mut has_failures: BTreeSet<usize> = BTreeSet::new();
        for (rel, rule, step, p) in stats.all_premise_stats() {
            let Some(CheckerImpl::Plan(plan, _)) =
                shared.checkers.get(rel.index()).and_then(Option::as_ref)
            else {
                continue;
            };
            let Some(handler) = plan.handlers.get(rule as usize) else {
                continue;
            };
            let Some(Some(premise)) = handler.premise_of.get(step as usize) else {
                continue;
            };
            if p.evals == 0 {
                continue;
            }
            profile.record(
                rel.index() as u32,
                rule,
                *premise,
                p.evals,
                p.cost,
                p.failures,
            );
            let obs = crate::cost::PremiseCost {
                mean_cost: p.cost / p.evals,
                failure_permille: p.failures.saturating_mul(1000) / p.evals,
            };
            if p.failures > 0 {
                has_failures.insert(rel.index());
            }
            if obs.diverges_from(handler.steps[step as usize].static_cost()) {
                diverged.insert(rel.index());
            }
        }
        // A reorder can only pay off through earlier short-circuiting,
        // and short-circuiting needs a premise that actually fails. On
        // an all-passing workload every premise runs regardless of
        // order, so chasing mean-cost differences there is pure churn
        // (and measurably regressive under cache noise): keep those
        // plans stable.
        diverged.retain(|r| has_failures.contains(r));
        // 2. Rebuild a builder over the same universe/env/options,
        //    seeded with every existing instance except the diverged
        //    targets (so only those recompile; their dependencies are
        //    found already present).
        let mut b =
            LibraryBuilder::with_options(shared.universe.clone(), shared.env.clone(), shared.opts);
        b.profile = Some(Arc::new(profile));
        b.producers = shared.producers.clone();
        let mut targets: Vec<(RelId, Arc<Plan>)> = Vec::new();
        let mut report = ReplanReport::default();
        for (idx, slot) in shared.checkers.iter().enumerate() {
            let Some(imp) = slot else { continue };
            let rel = RelId::new(idx);
            match imp {
                CheckerImpl::Plan(plan, _) if diverged.contains(&idx) => {
                    targets.push((rel, Arc::clone(plan)));
                }
                other => {
                    if matches!(other, CheckerImpl::Plan(..)) {
                        report.kept.push(rel);
                    }
                    b.checkers.insert(rel, other.clone());
                }
            }
        }
        // 3. Recompile the targets in ascending relation id (the
        //    BTreeSet order — deterministic). A target may already have
        //    been rebuilt as a dependency of an earlier one; `ensure`
        //    then returns without recompiling, which is what we want.
        for (rel, old_plan) in targets {
            match b.ensure(Key::Checker(rel)) {
                Ok(()) => {
                    let new_plan = b.checker_plan(rel).expect("just derived");
                    if format!("{new_plan:?}") == format!("{:?}", old_plan.as_ref()) {
                        report.unchanged.push(rel);
                    } else {
                        report.replanned.push(rel);
                    }
                }
                Err(e) => {
                    // Keep serving the old plan rather than losing the
                    // relation mid-flight.
                    let lowered = Arc::new(crate::lower::lower_checker(&old_plan));
                    b.checkers.insert(rel, CheckerImpl::Plan(old_plan, lowered));
                    report.errors.push((rel, e.to_string()));
                }
            }
        }
        for rel in report.replanned.clone() {
            self.probe(|| Event::Replanned { rel });
        }
        (b.build(), report)
    }

    fn explain_inner(&self, rel: RelId, stats: Option<&SearchStats>) -> String {
        let env = &self.inner.env;
        let u = &self.inner.universe;
        let mut out = String::new();
        let _ = writeln!(out, "relation {}:", env.relation(rel).name());
        match self
            .inner
            .checkers
            .get(rel.index())
            .and_then(Option::as_ref)
        {
            Some(CheckerImpl::Plan(plan, lowered)) => {
                let guided = if self.inner.shared.profile.is_some() {
                    ", profile-guided"
                } else {
                    ""
                };
                let _ = writeln!(out, "checker (derived, lowered{guided}):");
                let _ = writeln!(out, "{}", plan.display(u, env));
                let _ = writeln!(out, "  static step stats: {}", plan.step_stats());
                match &lowered.vm {
                    Some(prog) => {
                        let _ = writeln!(
                            out,
                            "  bytecode: {} instrs across {} handlers (runs under with_vm)",
                            prog.code_len(),
                            prog.handlers.len()
                        );
                        for (h, p) in prog.handlers.iter().zip(&plan.handlers) {
                            let ops: Vec<&str> = h.code.iter().map(|i| i.opcode()).collect();
                            let _ = writeln!(out, "    {}: {}", p.name, ops.join(" "));
                        }
                    }
                    None => {
                        let _ = writeln!(out, "  bytecode: not compiled (closure-tree fallback)");
                    }
                }
                if let Some(stats) = stats {
                    out.push_str(&Self::premise_cost_table(
                        plan,
                        self.inner.shared.profile.as_deref(),
                        stats,
                    ));
                }
            }
            Some(CheckerImpl::Hand(_)) => {
                let _ = writeln!(out, "checker: handwritten (opaque)");
            }
            None => {
                let _ = writeln!(out, "checker: none");
            }
        }
        let mut producers: Vec<(String, &ProducerImpl)> = self
            .inner
            .producers
            .iter()
            .filter(|((r, _), _)| *r == rel)
            .map(|((_, mode), imp)| (mode.to_string(), imp))
            .collect();
        producers.sort_by(|a, b| a.0.cmp(&b.0));
        for (mode, imp) in producers {
            match &imp.plan {
                Some(plan) => {
                    let _ = writeln!(out, "producer {mode} (derived):");
                    let _ = writeln!(out, "{}", plan.display(u, env));
                    let _ = writeln!(out, "  static step stats: {}", plan.step_stats());
                }
                None => {
                    let kinds = match (&imp.hand_enum, &imp.hand_gen) {
                        (Some(_), Some(_)) => "enumerator+generator",
                        (Some(_), None) => "enumerator",
                        (None, Some(_)) => "generator",
                        (None, None) => "nothing",
                    };
                    let _ = writeln!(out, "producer {mode}: handwritten {kinds} (opaque)");
                }
            }
        }
        out
    }

    /// Renders the premise cost table for a checker plan: one row per
    /// plan step in the *scheduled* order, pairing the static estimate
    /// with the probe's observed attribution and — on a replanned core —
    /// the profile cost the scheduler actually used. Steps the executor
    /// does not attribute (local equalities and matches, folded into
    /// their premise's cost) and steps never attempted render an
    /// explicit `obs n/a (never attempted)` rather than an ambiguous
    /// zero. The `[pN]` tag is the step's source-premise provenance
    /// (`[--]` for compiler-invented steps), so reorders stay readable.
    fn premise_cost_table(
        plan: &Plan,
        profile: Option<&CostProfile>,
        stats: &SearchStats,
    ) -> String {
        use std::collections::BTreeMap;
        let observed: BTreeMap<(u32, u32), PremiseStats> = stats
            .premise_stats(plan.rel)
            .into_iter()
            .map(|(rule, step, p)| ((rule, step), p))
            .collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  cost table (estimated vs observed{}, search entries):",
            if profile.is_some() {
                " vs replanned"
            } else {
                ""
            }
        );
        for (rule_idx, handler) in plan.handlers.iter().enumerate() {
            for (step_idx, step) in handler.steps.iter().enumerate() {
                let est = step.static_cost();
                let provenance = handler.premise_of.get(step_idx).copied().flatten();
                let tag = match provenance {
                    Some(p) => format!("p{p}"),
                    None => "--".to_string(),
                };
                let _ = write!(
                    out,
                    "    rule {} step {} {:<13} [{:<3}] est {:>3} | ",
                    handler.name,
                    step_idx,
                    step.kind_label(),
                    tag,
                    est
                );
                match observed.get(&(rule_idx as u32, step_idx as u32)) {
                    Some(p) if p.evals > 0 => {
                        let _ = write!(
                            out,
                            "obs {} evals, mean {:.1}, {} failed",
                            p.evals,
                            p.mean_cost(),
                            p.failures
                        );
                    }
                    _ => {
                        let _ = write!(out, "obs n/a (never attempted)");
                    }
                }
                if let Some(profile) = profile {
                    let replanned = provenance.and_then(|premise| {
                        profile.lookup(plan.rel.index() as u32, rule_idx as u32, premise)
                    });
                    match replanned {
                        Some(c) => {
                            let _ = write!(
                                out,
                                " | replan mean {} cost, {}‰ fail",
                                c.mean_cost, c.failure_permille
                            );
                        }
                        None => {
                            let _ = write!(out, " | replan n/a (unprofiled)");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Errors unless exactly `expected` values were supplied — the
    /// relation's arity for checkers, the mode's input count for
    /// producers.
    pub(crate) fn require_count(
        &self,
        rel: RelId,
        expected: usize,
        got: usize,
    ) -> Result<(), ExecError> {
        if got == expected {
            Ok(())
        } else {
            Err(ExecError::ArityMismatch {
                rel: self.inner.env.relation(rel).name().to_string(),
                expected,
                got,
            })
        }
    }
}
