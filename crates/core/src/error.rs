//! Derivation errors.

use std::error::Error;
use std::fmt;

/// Why a checker or producer could not be derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeriveError {
    /// The relation uses a feature outside the restricted core grammar
    /// and the deriver was run in Algorithm 1 mode.
    OutsideAlgorithm1 {
        /// Relation name.
        rel: String,
        /// Feature description (e.g. "existentials").
        feature: String,
    },
    /// A variable that must be instantiated by an unconstrained producer
    /// has no inferred type.
    UntypedVariable {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Variable name.
        var: String,
    },
    /// Deriving the instance would require mutually recursive instances,
    /// which (like the paper's implementation, §8) we do not support.
    InstanceCycle {
        /// A human-readable description of the cycle.
        cycle: String,
    },
    /// Preprocessing or type inference failed.
    Preprocess {
        /// Relation name.
        rel: String,
        /// Underlying message.
        message: String,
    },
    /// A rule's conclusion argument at an input position is not a
    /// pattern even after preprocessing (internal invariant violation,
    /// or Algorithm 1 mode on a non-core relation).
    NonPatternConclusion {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
    },
    /// A premise could not be scheduled.
    UnschedulablePremise {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::OutsideAlgorithm1 { rel, feature } => {
                write!(f, "relation `{rel}` needs `{feature}`, outside Algorithm 1")
            }
            DeriveError::UntypedVariable { rel, rule, var } => write!(
                f,
                "relation `{rel}`, rule `{rule}`: variable `{var}` needs instantiation but has no inferred type"
            ),
            DeriveError::InstanceCycle { cycle } => {
                write!(f, "mutually recursive instances are unsupported: {cycle}")
            }
            DeriveError::Preprocess { rel, message } => {
                write!(f, "relation `{rel}`: preprocessing failed: {message}")
            }
            DeriveError::NonPatternConclusion { rel, rule } => write!(
                f,
                "relation `{rel}`, rule `{rule}`: conclusion is not a pattern at an input position"
            ),
            DeriveError::UnschedulablePremise { rel, rule, reason } => {
                write!(f, "relation `{rel}`, rule `{rule}`: {reason}")
            }
        }
    }
}

impl Error for DeriveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = DeriveError::OutsideAlgorithm1 {
            rel: "typing".into(),
            feature: "existentials".into(),
        };
        assert!(e.to_string().contains("typing"));
        assert!(e.to_string().contains("existentials"));
        let e = DeriveError::InstanceCycle {
            cycle: "checker(a) -> producer(a)".into(),
        };
        assert!(e.to_string().contains("unsupported"));
    }
}
