//! Derivation and execution errors.

use indrel_producers::{Exhaustion, Resource};
use std::error::Error;
use std::fmt;

/// Why a checker or producer could not be derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeriveError {
    /// The relation uses a feature outside the restricted core grammar
    /// and the deriver was run in Algorithm 1 mode.
    OutsideAlgorithm1 {
        /// Relation name.
        rel: String,
        /// Feature description (e.g. "existentials").
        feature: String,
    },
    /// A variable that must be instantiated by an unconstrained producer
    /// has no inferred type.
    UntypedVariable {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Variable name.
        var: String,
    },
    /// Deriving the instance would require mutually recursive instances,
    /// which (like the paper's implementation, §8) we do not support.
    InstanceCycle {
        /// A human-readable description of the cycle.
        cycle: String,
    },
    /// Preprocessing or type inference failed.
    Preprocess {
        /// Relation name.
        rel: String,
        /// Underlying message.
        message: String,
    },
    /// A rule's conclusion argument at an input position is not a
    /// pattern even after preprocessing (internal invariant violation,
    /// or Algorithm 1 mode on a non-core relation).
    NonPatternConclusion {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
    },
    /// A premise could not be scheduled.
    UnschedulablePremise {
        /// Relation name.
        rel: String,
        /// Rule name.
        rule: String,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::OutsideAlgorithm1 { rel, feature } => {
                write!(f, "relation `{rel}` needs `{feature}`, outside Algorithm 1")
            }
            DeriveError::UntypedVariable { rel, rule, var } => write!(
                f,
                "relation `{rel}`, rule `{rule}`: variable `{var}` needs instantiation but has no inferred type"
            ),
            DeriveError::InstanceCycle { cycle } => {
                write!(f, "mutually recursive instances are unsupported: {cycle}")
            }
            DeriveError::Preprocess { rel, message } => {
                write!(f, "relation `{rel}`: preprocessing failed: {message}")
            }
            DeriveError::NonPatternConclusion { rel, rule } => write!(
                f,
                "relation `{rel}`, rule `{rule}`: conclusion is not a pattern at an input position"
            ),
            DeriveError::UnschedulablePremise { rel, rule, reason } => {
                write!(f, "relation `{rel}`, rule `{rule}`: {reason}")
            }
        }
    }
}

impl Error for DeriveError {}

/// Which kind of instance an execution entry point asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstanceKind {
    /// A checker (the all-input mode).
    Checker,
    /// An enumerator for some producer mode.
    Enumerator,
    /// A random generator for some producer mode.
    Generator,
}

impl fmt::Display for InstanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstanceKind::Checker => "checker",
            InstanceKind::Enumerator => "enumerator",
            InstanceKind::Generator => "generator",
        })
    }
}

/// Why a `try_*` execution entry point could not produce an answer.
///
/// The first two variants are caller errors, caught before any plan
/// runs; `BudgetExhausted` and `Deadline` report a
/// [budget](indrel_producers::Budget) cut-off; `Overloaded` is the
/// serving layer's structured load-shedding rejection. The panicking
/// entry points ([`Library::check`] and friends) format the same
/// values into their panic messages, so both API layers describe
/// failures identically.
///
/// [`Library::check`]: crate::Library::check
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// No instance is registered or derived for the request.
    NoInstance {
        /// What was asked for.
        kind: InstanceKind,
        /// Relation name.
        rel: String,
        /// The producer mode, rendered as `(-,+,…)`; `None` for
        /// checkers.
        mode: Option<String>,
    },
    /// The argument tuple does not match the relation's arity (for
    /// checkers) or the mode's input positions (for producers).
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Number of values the entry point expected.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A countable budget resource ran out before an answer was found.
    BudgetExhausted {
        /// The resource that ran out first.
        resource: Resource,
    },
    /// The wall-clock deadline passed before an answer was found.
    Deadline,
    /// Admission control rejected the request: the serving layer
    /// ([`crate::serve`]) was already at its in-flight capacity, and
    /// shedding beats queueing unboundedly. Retry once load drains.
    Overloaded {
        /// Requests in flight when admission was refused.
        inflight: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoInstance { kind, rel, mode } => match mode {
                Some(mode) => write!(f, "no {kind} instance for `{rel}` at {mode}"),
                None => write!(f, "no {kind} instance for `{rel}`"),
            },
            ExecError::ArityMismatch { rel, expected, got } => write!(
                f,
                "relation `{rel}` expects {expected} argument value(s) here, but {got} were supplied"
            ),
            ExecError::BudgetExhausted { resource } => {
                write!(f, "{resource} budget exhausted before an answer was found")
            }
            ExecError::Deadline => f.write_str("deadline exceeded before an answer was found"),
            ExecError::Overloaded { inflight, capacity } => write!(
                f,
                "request shed: {inflight} request(s) already in flight at capacity {capacity}"
            ),
        }
    }
}

impl Error for ExecError {}

impl From<Exhaustion> for ExecError {
    fn from(e: Exhaustion) -> ExecError {
        match e {
            Exhaustion::Budget(resource) => ExecError::BudgetExhausted { resource },
            Exhaustion::Deadline => ExecError::Deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_errors_display() {
        let e = ExecError::NoInstance {
            kind: InstanceKind::Checker,
            rel: "even".into(),
            mode: None,
        };
        assert_eq!(e.to_string(), "no checker instance for `even`");
        let e = ExecError::NoInstance {
            kind: InstanceKind::Enumerator,
            rel: "le".into(),
            mode: Some("(-,+)".into()),
        };
        assert_eq!(e.to_string(), "no enumerator instance for `le` at (-,+)");
        let e = ExecError::ArityMismatch {
            rel: "le".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expects 2"));
        assert!(e.to_string().contains('3'));
        let e = ExecError::Overloaded {
            inflight: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("shed"));
        assert!(e.to_string().contains("capacity 8"));
    }

    #[test]
    fn exec_error_from_exhaustion() {
        assert_eq!(
            ExecError::from(Exhaustion::Budget(Resource::Steps)),
            ExecError::BudgetExhausted {
                resource: Resource::Steps
            }
        );
        assert_eq!(ExecError::from(Exhaustion::Deadline), ExecError::Deadline);
        assert!(ExecError::Deadline.to_string().contains("deadline"));
        assert!(ExecError::BudgetExhausted {
            resource: Resource::Backtracks
        }
        .to_string()
        .contains("backtracks"));
    }

    #[test]
    fn errors_display() {
        let e = DeriveError::OutsideAlgorithm1 {
            rel: "typing".into(),
            feature: "existentials".into(),
        };
        assert!(e.to_string().contains("typing"));
        assert!(e.to_string().contains("existentials"));
        let e = DeriveError::InstanceCycle {
            cycle: "checker(a) -> producer(a)".into(),
        };
        assert!(e.to_string().contains("unsupported"));
    }
}
