//! The plan IR — the "generated code" of the derivation algorithm.
//!
//! A [`Plan`] is the mode-specialized compilation of an inductive
//! relation: one [`Handler`] per rule, each a pattern match on the
//! inputs followed by a straight-line sequence of [`Step`]s, mirroring
//! the fixpoints of Figures 1 and 2 of the paper. Plans are
//! representation-level: the same plan is executed as a checker, an
//! enumerator, or a generator by [`crate::exec`].

use crate::mode::Mode;
use indrel_rel::RelEnv;
use indrel_term::{Pattern, RelId, TermExpr, TypeExpr, Universe, VarId};
use std::fmt;

/// One scheduled constraint of a handler.
#[derive(Clone, Debug)]
pub enum Step {
    /// Check (dis)equality of two fully-instantiated terms
    /// (`check top_size (e₁ = e₂) .&& …`).
    EqCheck {
        /// Left-hand side (fully known when reached).
        lhs: TermExpr,
        /// Right-hand side (fully known when reached).
        rhs: TermExpr,
        /// `true` for a disequality.
        negated: bool,
    },
    /// Bind an unknown variable to the value of a known term (solving a
    /// positive equality premise by instantiation).
    EqBind {
        /// The variable to bind.
        var: VarId,
        /// The defining term (fully known when reached).
        expr: TermExpr,
    },
    /// Evaluate a known term and match it against a pattern, binding the
    /// pattern's unknown variables; pattern variables already bound act
    /// as equality checks (the non-linear reconciliation of §4's `TApp`
    /// handler).
    MatchExpr {
        /// The (known) scrutinee.
        scrutinee: TermExpr,
        /// The pattern to match against.
        pattern: Pattern,
    },
    /// Call the checker of another relation with the top-level fuel
    /// (`check top_size (Q …) .&& …`).
    CheckRel {
        /// The relation checked.
        rel: RelId,
        /// Fully-known argument terms.
        args: Vec<TermExpr>,
        /// `true` for a negated premise.
        negated: bool,
    },
    /// Recursive checker call with the decremented fuel
    /// (`rec size' top_size … .&& …`). Only emitted in checker plans.
    RecCheck {
        /// Fully-known argument terms.
        args: Vec<TermExpr>,
    },
    /// Call an external producer instance for `(rel, mode)`, binding its
    /// outputs to fresh slots (`bindEC (enumST top_size …) …` in checker
    /// plans, `bindE`/`bindG` in producer plans).
    ProduceExt {
        /// The relation produced from.
        rel: RelId,
        /// The mode of the external instance.
        mode: Mode,
        /// Fully-known terms for the instance's input positions.
        in_args: Vec<TermExpr>,
        /// Fresh slots receiving the produced outputs, one per output
        /// position, ascending.
        out_slots: Vec<VarId>,
    },
    /// Recursive producer call at the decremented size (only emitted in
    /// producer plans).
    ProduceRec {
        /// Fully-known terms for the plan's own input positions.
        in_args: Vec<TermExpr>,
        /// Fresh slots receiving the produced outputs.
        out_slots: Vec<VarId>,
    },
    /// Instantiate a variable with the unconstrained producer for its
    /// type (bounded-exhaustive in enumerators/checkers, random in
    /// generators).
    Unconstrained {
        /// The variable to instantiate.
        var: VarId,
        /// Its type.
        ty: TypeExpr,
    },
}

/// The compiled form of one rule.
#[derive(Clone, Debug)]
pub struct Handler {
    /// Index of the source rule in the (preprocessed) relation.
    pub rule_index: usize,
    /// Rule (constructor) name.
    pub name: String,
    /// `true` when the handler recurses (contains [`Step::RecCheck`] or
    /// [`Step::ProduceRec`]); at fuel 0 only non-recursive handlers run.
    pub recursive: bool,
    /// Total variable slots (rule variables plus fresh slots).
    pub nslots: usize,
    /// Variable names for diagnostics, indexed by slot.
    pub slot_names: Vec<String>,
    /// Patterns for the plan's input positions, in ascending position
    /// order (the `match in₁, …, inₙ with` of Algorithm 1).
    pub input_pats: Vec<Pattern>,
    /// The scheduled constraints.
    pub steps: Vec<Step>,
    /// Provenance: for each step, the index of the source (preprocessed)
    /// premise it implements, or `None` for steps the compiler invents
    /// on its own account (output instantiation in producer plans). The
    /// scheduler may reorder premises, so profile data keyed by source
    /// premise index stays comparable across replans; one premise can
    /// expand to several steps (instantiation + call + reconciliation),
    /// all attributed to the same index.
    pub premise_of: Vec<Option<u32>>,
    /// Conclusion terms at the output positions, evaluated at the end
    /// (empty for checker plans).
    pub outputs: Vec<TermExpr>,
}

/// A mode-specialized compilation of a relation.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The source relation.
    pub rel: RelId,
    /// The mode this plan implements.
    pub mode: Mode,
    /// One handler per (preprocessed) rule.
    pub handlers: Vec<Handler>,
}

impl Step {
    /// A short label for the step kind, used by `explain()`'s cost
    /// table and diagnostics.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Step::EqCheck { negated: false, .. } => "eq-check",
            Step::EqCheck { negated: true, .. } => "neq-check",
            Step::EqBind { .. } => "eq-bind",
            Step::MatchExpr { .. } => "match",
            Step::CheckRel { negated: false, .. } => "check-rel",
            Step::CheckRel { negated: true, .. } => "check-not",
            Step::RecCheck { .. } => "rec-check",
            Step::ProduceExt { .. } => "produce-ext",
            Step::ProduceRec { .. } => "produce-rec",
            Step::Unconstrained { .. } => "unconstrained",
        }
    }

    /// The scheduler's static cost estimate for one evaluation of the
    /// step, in the same unit the probe's premise attribution observes
    /// (search entries). Local work (equalities, matches) is flat;
    /// checker calls recurse; producer calls additionally enumerate.
    /// `explain()` renders these next to the observed means so the
    /// estimates can be judged — and eventually replaced — by profile
    /// data (`Library::replan_from`).
    pub fn static_cost(&self) -> u64 {
        match self {
            Step::EqCheck { .. } | Step::EqBind { .. } | Step::MatchExpr { .. } => 1,
            Step::CheckRel { .. } | Step::RecCheck { .. } => 10,
            Step::ProduceExt { .. } | Step::ProduceRec { .. } | Step::Unconstrained { .. } => 25,
        }
    }
}

impl Plan {
    /// `true` when some handler is recursive (so the fuel-0 case must
    /// include a `None`/out-of-fuel option, Algorithm 1 line 11).
    pub fn has_recursive_handlers(&self) -> bool {
        self.handlers.iter().any(|h| h.recursive)
    }

    /// Counts the step kinds across all handlers — a fingerprint of
    /// what the derivation had to do for this relation and mode.
    pub fn step_stats(&self) -> StepStats {
        let mut stats = StepStats::default();
        for h in &self.handlers {
            for s in &h.steps {
                match s {
                    Step::EqCheck { .. } => stats.eq_checks += 1,
                    Step::EqBind { .. } => stats.eq_binds += 1,
                    Step::MatchExpr { .. } => stats.matches += 1,
                    Step::CheckRel { negated, .. } => {
                        stats.checker_calls += 1;
                        if *negated {
                            stats.negations += 1;
                        }
                    }
                    Step::RecCheck { .. } => stats.recursive_calls += 1,
                    Step::ProduceExt { .. } => stats.producer_calls += 1,
                    Step::ProduceRec { .. } => stats.recursive_calls += 1,
                    Step::Unconstrained { .. } => stats.unconstrained += 1,
                }
            }
        }
        stats
    }

    /// Renders the plan as pseudo-code in the style of Figures 1 and 2.
    pub fn display<'a>(&'a self, universe: &'a Universe, env: &'a RelEnv) -> DisplayPlan<'a> {
        DisplayPlan {
            plan: self,
            universe,
            env,
        }
    }
}

/// Step-kind counts for a plan, from [`Plan::step_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Equality checks (linearization, function-call hoists, source
    /// equalities).
    pub eq_checks: usize,
    /// Equality-solving bindings.
    pub eq_binds: usize,
    /// Reconciliation pattern matches.
    pub matches: usize,
    /// External checker calls.
    pub checker_calls: usize,
    /// Recursive calls (checker or producer).
    pub recursive_calls: usize,
    /// External producer calls (existential handling).
    pub producer_calls: usize,
    /// Unconstrained instantiations.
    pub unconstrained: usize,
    /// Negated premises.
    pub negations: usize,
}

impl fmt::Display for StepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "eq={} bind={} match={} check={} rec={} produce={} arb={} neg={}",
            self.eq_checks,
            self.eq_binds,
            self.matches,
            self.checker_calls,
            self.recursive_calls,
            self.producer_calls,
            self.unconstrained,
            self.negations
        )
    }
}

/// Helper returned by [`Plan::display`].
#[derive(Debug)]
pub struct DisplayPlan<'a> {
    plan: &'a Plan,
    universe: &'a Universe,
    env: &'a RelEnv,
}

impl fmt::Display for DisplayPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel_name = self.env.relation(self.plan.rel).name();
        writeln!(f, "derived {} {} :=", rel_name, self.plan.mode)?;
        for h in &self.plan.handlers {
            writeln!(
                f,
                "  handler {} {}:",
                h.name,
                if h.recursive { "(rec)" } else { "(base)" }
            )?;
            let pats: Vec<String> = h
                .input_pats
                .iter()
                .map(|p| p.display(self.universe, &h.slot_names).to_string())
                .collect();
            writeln!(f, "    match inputs with {}", pats.join(", "))?;
            for s in &h.steps {
                writeln!(
                    f,
                    "    {}",
                    DisplayStep {
                        step: s,
                        universe: self.universe,
                        env: self.env,
                        names: &h.slot_names,
                    }
                )?;
            }
            if h.outputs.is_empty() {
                writeln!(f, "    ret true")?;
            } else {
                let outs: Vec<String> = h
                    .outputs
                    .iter()
                    .map(|e| e.display(self.universe, &h.slot_names).to_string())
                    .collect();
                writeln!(f, "    ret ({})", outs.join(", "))?;
            }
        }
        Ok(())
    }
}

struct DisplayStep<'a> {
    step: &'a Step,
    universe: &'a Universe,
    env: &'a RelEnv,
    names: &'a [String],
}

impl fmt::Display for DisplayStep<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let u = self.universe;
        let n = self.names;
        match self.step {
            Step::EqCheck { lhs, rhs, negated } => write!(
                f,
                "check ({} {} {})",
                lhs.display(u, n),
                if *negated { "<>" } else { "=" },
                rhs.display(u, n)
            ),
            Step::EqBind { var, expr } => write!(
                f,
                "let {} := {}",
                n.get(var.index()).map_or("?", |s| s.as_str()),
                expr.display(u, n)
            ),
            Step::MatchExpr { scrutinee, pattern } => write!(
                f,
                "match {} with {}",
                scrutinee.display(u, n),
                pattern.display(u, n)
            ),
            Step::CheckRel { rel, args, negated } => {
                if *negated {
                    write!(f, "check ~(")?;
                } else {
                    write!(f, "check (")?;
                }
                write!(f, "{}", self.env.relation(*rel).name())?;
                for a in args {
                    write!(f, " {}", a.display(u, n))?;
                }
                write!(f, ")")
            }
            Step::RecCheck { args } => {
                write!(f, "rec size'")?;
                for a in args {
                    write!(f, " {}", a.display(u, n))?;
                }
                Ok(())
            }
            Step::ProduceExt {
                rel,
                mode,
                in_args,
                out_slots,
            } => {
                let outs: Vec<&str> = out_slots
                    .iter()
                    .map(|v| n.get(v.index()).map_or("?", |s| s.as_str()))
                    .collect();
                write!(
                    f,
                    "bind ({} <- produceST {}{}",
                    outs.join(", "),
                    self.env.relation(*rel).name(),
                    mode
                )?;
                for a in in_args {
                    write!(f, " {}", a.display(u, n))?;
                }
                write!(f, ")")
            }
            Step::ProduceRec { in_args, out_slots } => {
                let outs: Vec<&str> = out_slots
                    .iter()
                    .map(|v| n.get(v.index()).map_or("?", |s| s.as_str()))
                    .collect();
                write!(f, "bind ({} <- rec size'", outs.join(", "))?;
                for a in in_args {
                    write!(f, " {}", a.display(u, n))?;
                }
                write!(f, ")")
            }
            Step::Unconstrained { var, ty } => write!(
                f,
                "bind ({} <- arbitrary : {})",
                n.get(var.index()).map_or("?", |s| s.as_str()),
                ty.display(u)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_flag_propagates() {
        let plan = Plan {
            rel: RelId::new(0),
            mode: Mode::checker(1),
            handlers: vec![
                Handler {
                    rule_index: 0,
                    name: "base".into(),
                    recursive: false,
                    nslots: 0,
                    slot_names: vec![],
                    input_pats: vec![Pattern::NatLit(0)],
                    steps: vec![],
                    premise_of: vec![],
                    outputs: vec![],
                },
                Handler {
                    rule_index: 1,
                    name: "step".into(),
                    recursive: true,
                    nslots: 1,
                    slot_names: vec!["n".into()],
                    input_pats: vec![Pattern::Succ(Box::new(Pattern::var(0)))],
                    steps: vec![Step::RecCheck {
                        args: vec![TermExpr::var(0)],
                    }],
                    premise_of: vec![Some(0)],
                    outputs: vec![],
                },
            ],
        };
        assert!(plan.has_recursive_handlers());
    }
}
