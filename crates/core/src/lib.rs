//! The derivation engine: checkers, enumerators, and random generators
//! from inductive relations.
//!
//! This crate is the Rust reproduction of the central contribution of
//! *Computing Correctly with Inductive Relations* (PLDI 2022): a single
//! derivation algorithm whose three instantiations produce
//!
//! * **checkers** — semi-decision procedures `(size, args) → option bool`
//!   (Algorithm 1, generalized in §4),
//! * **enumerators** — bounded streams of outputs satisfying the
//!   relation, and
//! * **random generators** — sampling procedures for such outputs,
//!
//! one for every *mode* (assignment of input/output polarity to the
//! relation's arguments — the paper's `out_set`).
//!
//! # Pipeline
//!
//! 1. [`indrel_rel::preprocess`] rewrites non-linear conclusions and
//!    conclusion function calls into equality premises (§3.1);
//! 2. [`compile`] schedules each rule's premises into a [`plan::Plan`] —
//!    pattern matches, equality checks/bindings, checker calls,
//!    recursive calls, and producer calls — using the *compatibility*
//!    analysis of §4 ([`compat`]);
//! 3. the [`Library`] holds one plan (or a handwritten instance) per
//!    `(relation, mode)` key, auto-deriving dependencies on demand, and
//!    executes plans as checkers ([`Library::check`]), enumerators
//!    ([`Library::enumerate`]), or generators ([`Library::generate`]).
//!
//! # Example
//!
//! ```
//! use indrel_core::{LibraryBuilder, Mode};
//! use indrel_rel::{parse::parse_program, RelEnv};
//! use indrel_term::{Universe, Value};
//!
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, r"
//!     rel even' : nat :=
//!     | even_0  : even' 0
//!     | even_SS : forall n, even' n -> even' (S (S n))
//!     .
//! ").unwrap();
//! let even = env.rel_id("even'").unwrap();
//!
//! let mut builder = LibraryBuilder::new(u, env);
//! builder.derive_checker(even).unwrap();
//! builder.derive_producer(even, Mode::producer(1, &[0])).unwrap();
//! let lib = builder.build();
//!
//! // checker: even' 4 holds, even' 3 does not
//! assert_eq!(lib.check(even, 10, 10, &[Value::nat(4)]), Some(true));
//! assert_eq!(lib.check(even, 10, 10, &[Value::nat(3)]), Some(false));
//!
//! // enumerator: the even numbers, in order
//! let evens: Vec<u64> = lib
//!     .enumerate(even, &Mode::producer(1, &[0]), 4, 4, &[])
//!     .values()
//!     .into_iter()
//!     .map(|out| out[0].as_nat().unwrap())
//!     .collect();
//! assert_eq!(evens, vec![0, 2, 4, 6, 8]);
//! ```

#![warn(missing_docs)]

pub mod compat;
pub mod compile;
pub mod cost;
pub mod error;
pub mod exec;
pub(crate) mod index;
pub mod library;
pub(crate) mod lower;
pub mod memo;
pub mod mode;
pub mod plan;
pub mod serve;
pub(crate) mod vm;

pub use cost::{CostProfile, PremiseCost};
pub use error::{DeriveError, ExecError, InstanceKind};
pub use exec::BudgetedStream;
pub use library::{Library, LibraryBuilder, ProbeGuard, ReplanReport, SharedLibrary};
pub use memo::MemoStats;
pub use mode::Mode;
pub use plan::{Handler, Plan, Step};
pub use serve::{FlightRecorder, Permit, RequestSpan, ServeConfig, Server, Session, SharedMemo};
// Budgets live with the producer combinators; re-exported here because
// the `try_*` entry points take them. Probes likewise, for `arm_probe`.
pub use indrel_producers::{
    Budget, BudgetPool, Event, ExecKind, ExecProbe, Exhaustion, FailSite, Meter, NameTable,
    Resource, SearchStats, TraceProbe,
};

/// Derivation options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeriveOptions {
    /// Restrict the deriver to the core Algorithm 1 of §3 (linear
    /// constructor-term conclusions, no existentials, no function calls,
    /// no negation, no equalities). Used as the Table 1 baseline.
    pub algorithm1_only: bool,
    /// Ablation: when a recursive premise in a producer plan is fully
    /// instantiated, call the relation's checker instead of the default
    /// produce-and-match strategy of Figure 2.
    pub check_known_recursive: bool,
}
