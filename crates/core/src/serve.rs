//! Concurrent relation serving: a sharded process-wide verdict table
//! and a hardened request layer over it.
//!
//! The per-session [`MemoTable`](crate::memo) is deliberately
//! single-threaded (it owns an interner and lives behind a `RefCell`).
//! This module adds the concurrent counterpart for *serving* workloads —
//! many worker threads checking queries against one frozen
//! [`SharedLibrary`] core:
//!
//! * [`SharedMemo`] — a fingerprint-sharded verdict table
//!   (`RwLock`-per-shard, so concurrent readers never contend) with the
//!   same soundness guards as the local table: only decided verdicts,
//!   only under an intact meter, dominance-widening on insert, and
//!   structural confirmation of fingerprint matches. Fuel monotonicity
//!   (§5) is what makes *sharing* sound: a verdict decided by any
//!   session holds for every session at dominating fuels, so entries
//!   never need invalidating and a reader can never observe a stale
//!   answer — only a missing one.
//! * **Poison recovery** — a writer that panics inside a shard poisons
//!   only that shard's lock. The next access marks the shard *degraded*
//!   and from then on the shard answers every lookup with a miss and
//!   swallows every insert: callers transparently fall back to the
//!   unmemoized checker path, which is sound for the same monotonicity
//!   reason (the table is an accelerator, never an authority). The
//!   [`MemoStats::degraded_shards`] counter surfaces how much of the
//!   table has been retired.
//! * [`Server`] / [`Session`] — a request layer with admission control
//!   (bounded in-flight requests, shedding with
//!   [`ExecError::Overloaded`] instead of queueing), per-request step
//!   budgets drawn from a shared [`BudgetPool`], and bounded
//!   retry-with-backoff on budget exhaustion whose jitter is seeded
//!   purely from `(seed, request index)` — reports stay byte-identical
//!   across runs and any single request can be replayed exactly with
//!   [`Session::check_replay`].
//! * **Observability** — every request is booked three ways: into the
//!   server's [`MetricsRegistry`] (deterministic `serve.*` counters,
//!   one wall-clock `serve.latency_us` histogram, snapshot with
//!   [`Server::snapshot`]), as a wall-clock-free [`RequestSpan`] in the
//!   worker's bounded [`FlightRecorder`] ring (dumped on shard
//!   degradation or explicitly with [`Server::dump_flight_recorder`]),
//!   and — only when a probe is armed — as an
//!   [`Event::Request`](indrel_producers::Event) probe event, keeping
//!   the unarmed fast path cheap.
//!
//! # Example
//!
//! ```
//! use indrel_core::{serve::{ServeConfig, Server}, Budget, LibraryBuilder};
//! use indrel_rel::{parse::parse_program, RelEnv};
//! use indrel_term::{Universe, Value};
//!
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, r"
//!     rel even' : nat :=
//!     | even_0  : even' 0
//!     | even_SS : forall n, even' n -> even' (S (S n))
//!     .
//! ").unwrap();
//! let even = env.rel_id("even'").unwrap();
//! let mut builder = LibraryBuilder::new(u, env);
//! builder.derive_checker(even).unwrap();
//! let server = Server::new(
//!     builder.build().shared(),
//!     ServeConfig::default(),
//!     Budget::unlimited(),
//! );
//! let session = server.session();
//! let batch: Vec<Vec<Value>> = (0..4u64).map(|n| vec![Value::nat(n)]).collect();
//! let verdicts = session.check_batch(even, 10, &batch);
//! assert_eq!(verdicts[2], Ok(Some(true)));
//! assert_eq!(verdicts[3], Ok(Some(false)));
//! ```

use crate::error::ExecError;
use crate::library::{Library, ReplanReport, SharedLibrary};
use crate::memo::{args_match, MemoStats};
use indrel_producers::probe::Event;
use indrel_producers::{
    json_escape, Budget, BudgetPool, Counter, Determinism, Log2Histogram, MetricsRegistry,
    MetricsSnapshot, RequestOutcome, SearchStats,
};
use indrel_term::{shard_of, FastHashBuilder, RelId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

// Everything the serving layer shares across worker threads must be
// thread-safe by construction, not by accident.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedMemo>();
    assert_send_sync::<Server>();
    assert_send_sync::<Permit>();
};

/// One cached verdict, mirroring the local table's slot: the relation,
/// the canonical argument tuple that confirms fingerprint matches, and
/// the smallest fuels the verdict is known at.
struct Slot {
    rel: RelId,
    args: Box<[Value]>,
    size: u64,
    top: u64,
    verdict: bool,
}

/// One shard: a bucket map behind its own `RwLock`, plus the degraded
/// flag poison recovery flips.
struct Shard {
    buckets: RwLock<HashMap<u64, Vec<Slot>, FastHashBuilder>>,
    /// Entries in this shard; written only under the shard's write
    /// lock, read lock-free by [`SharedMemo::stats`].
    entries: AtomicUsize,
    /// Set once, on the first access that observes the lock poisoned.
    /// A degraded shard answers misses and swallows inserts forever.
    degraded: AtomicBool,
}

impl Default for Shard {
    fn default() -> Shard {
        Shard {
            buckets: RwLock::new(HashMap::default()),
            entries: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
        }
    }
}

/// The process-wide concurrent verdict table. See the module docs for
/// the sharing and degradation model; see [`crate::memo`] for the
/// monotonicity argument and the write guards (both tables enforce the
/// same ones — the caller in `run_lowered_check` gates on search cost
/// and meter intactness before calling [`SharedMemo::insert`]).
pub struct SharedMemo {
    shards: Box<[Shard]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    none_skipped: AtomicU64,
    full_skipped: AtomicU64,
    degraded_shards: AtomicU64,
    /// Shard indices degraded since the last drain, for sessions to
    /// report as [`Event::ShardDegraded`] probe events (probes are
    /// session-local, so the table itself cannot emit).
    degraded_events: Mutex<Vec<u32>>,
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("degraded", &self.degraded_count())
            .finish()
    }
}

impl SharedMemo {
    /// An empty table with `shards` shards (must be a power of two),
    /// each admitting at most `shard_capacity` verdicts. Once a shard
    /// is full it stops admitting — deterministically, no eviction —
    /// and keeps serving hits from what it has, like the local table.
    pub fn new(shards: usize, shard_capacity: usize) -> SharedMemo {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        SharedMemo {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            none_skipped: AtomicU64::new(0),
            full_skipped: AtomicU64::new(0),
            degraded_shards: AtomicU64::new(0),
            degraded_events: Mutex::new(Vec::new()),
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint maps to — exposed so chaos harnesses can
    /// poison the shard a particular query lives in.
    pub fn shard_for(&self, fp: u64) -> usize {
        shard_of(fp, self.shards.len())
    }

    /// Shards retired by poison recovery so far.
    pub fn degraded_count(&self) -> u64 {
        self.degraded_shards.load(Ordering::Relaxed)
    }

    /// Retires a shard: flips its degraded flag (once) and queues the
    /// probe event. Every later lookup in the shard is a miss and every
    /// insert a no-op, so the table degrades instead of propagating the
    /// panic that poisoned the lock.
    fn mark_degraded(&self, idx: usize) {
        if !self.shards[idx].degraded.swap(true, Ordering::Relaxed) {
            self.degraded_shards.fetch_add(1, Ordering::Relaxed);
            self.degraded_events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(idx as u32);
        }
    }

    /// Shard indices degraded since the last call — the session layer
    /// drains this after each request and reports each as an
    /// [`Event::ShardDegraded`].
    pub fn drain_degraded_events(&self) -> Vec<u32> {
        std::mem::take(
            &mut *self
                .degraded_events
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Looks up `(rel, args)` under its structural fingerprint for a
    /// query at fuels `(size, top)`. `None` is a miss — including every
    /// query routed to a degraded shard, which is the transparent
    /// fallback to the unmemoized search.
    pub fn lookup(&self, rel: RelId, fp: u64, args: &[Value], size: u64, top: u64) -> Option<bool> {
        let idx = self.shard_for(fp);
        let shard = &self.shards[idx];
        if shard.degraded.load(Ordering::Relaxed) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let guard = match shard.buckets.read() {
            Ok(g) => g,
            Err(_) => {
                // A writer panicked while holding this shard. Retire it
                // and fall back; the other shards keep serving.
                self.mark_degraded(idx);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if let Some(bucket) = guard.get(&fp) {
            for slot in bucket {
                if slot.rel == rel && args_match(&slot.args, args) {
                    if size >= slot.size && top >= slot.top {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(slot.verdict);
                    }
                    break;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a decided verdict observed at fuels `(size, top)`,
    /// widening an existing entry in place when the new fuels dominate
    /// it (same rule as the local table). The caller must apply the
    /// write guards of [`crate::memo`]: never a `None`, never under an
    /// exhausted meter, never below the search-cost gate.
    pub fn insert(&self, rel: RelId, fp: u64, args: &[Value], size: u64, top: u64, verdict: bool) {
        let idx = self.shard_for(fp);
        let shard = &self.shards[idx];
        if shard.degraded.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = match shard.buckets.write() {
            Ok(g) => g,
            Err(_) => {
                self.mark_degraded(idx);
                return;
            }
        };
        if let Some(bucket) = guard.get_mut(&fp) {
            for slot in bucket.iter_mut() {
                if slot.rel == rel && args_match(&slot.args, args) {
                    if size <= slot.size && top <= slot.top {
                        slot.size = size;
                        slot.top = top;
                        slot.verdict = verdict;
                        self.insertions.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
            }
        }
        if shard.entries.load(Ordering::Relaxed) < self.shard_capacity {
            guard.entry(fp).or_default().push(Slot {
                rel,
                args: args.to_vec().into_boxed_slice(),
                size,
                top,
                verdict,
            });
            shard.entries.fetch_add(1, Ordering::Relaxed);
            self.insertions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.full_skipped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a `None` verdict refused at the write site (the
    /// monotonicity boundary, as in the local table).
    pub fn note_none_skipped(&self) {
        self.none_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the table counters. `shed` and `retries` are request
    /// telemetry and stay zero here; [`Server::stats`] fills them in.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            none_skipped: self.none_skipped.load(Ordering::Relaxed),
            full_skipped: self.full_skipped.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.entries.load(Ordering::Relaxed))
                .sum(),
            degraded_shards: self.degraded_count(),
            shed: 0,
            retries: 0,
        }
    }

    /// Chaos hook: poisons `shard`'s lock exactly the way a panicking
    /// writer would — by panicking while holding the write guard
    /// (caught here, so the caller keeps running). The shard is retired
    /// lazily, on its next access. Tests and the chaos harness use this
    /// to prove degraded shards never produce wrong verdicts.
    pub fn poison_shard(&self, shard: usize) {
        let lock = &self.shards[shard].buckets;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write();
            panic!("injected shard poison");
        }));
    }
}

/// The completed-request record the serving layer keeps for every
/// request: the `(seed, index)` repro token, what was asked, how it
/// ended, and what it cost. Spans are deliberately wall-clock-free —
/// every field is deterministic for a given workload, so flight-
/// recorder dumps can be diffed across runs; latency lives only in the
/// server's `serve.latency_us` histogram, which is marked
/// [`Determinism::WallClock`] and excluded from byte-identity checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestSpan {
    /// The retry seed the request ran under ([`ServeConfig::retry_seed`]
    /// for batch traffic).
    pub seed: u64,
    /// The request's index in its batch — with `seed`, the repro token
    /// [`Session::check_replay`] consumes.
    pub index: u64,
    /// The relation queried.
    pub rel: RelId,
    /// The fuel the query ran at.
    pub size: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Budget-escalation attempts consumed (1 = first try decided; 0
    /// for shed requests, which never reach the search).
    pub attempts: u32,
    /// Budget steps spent across all attempts.
    pub steps: u64,
    /// Shared-memo hits observed during the request.
    pub memo_hits: u64,
    /// Shared-memo misses observed during the request.
    pub memo_misses: u64,
}

impl RequestSpan {
    /// The span's fields as a JSON object body (no braces), so dumps
    /// can prefix a `"worker"` coordinate without re-serializing.
    fn fields(&self, rel_name: &str) -> String {
        format!(
            "\"seed\":{},\"index\":{},\"rel\":\"{}\",\"size\":{},\"outcome\":\"{}\",\
             \"attempts\":{},\"steps\":{},\"memo_hits\":{},\"memo_misses\":{}",
            self.seed,
            self.index,
            json_escape(rel_name),
            self.size,
            self.outcome.label(),
            self.attempts,
            self.steps,
            self.memo_hits,
            self.memo_misses,
        )
    }

    /// Renders the span as one JSON line (the flight-recorder dump
    /// format). All fields are deterministic; see the type docs.
    pub fn to_json_line(&self, rel_name: &str) -> String {
        format!("{{{}}}", self.fields(rel_name))
    }
}

/// A bounded ring of the last N completed [`RequestSpan`]s for one
/// worker session — the always-on flight recorder. Pushes are a short
/// uncontended critical section on the worker's own ring (the server
/// only locks it when rendering a dump), so recording stays cheap
/// enough to leave enabled in production. When the ring is full the
/// oldest span is dropped and counted.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestSpan>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` spans.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one completed span, evicting the oldest at capacity.
    pub fn push(&self, span: RequestSpan) {
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// The held spans, oldest first.
    pub fn spans(&self) -> Vec<RequestSpan> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }
}

/// Tuning knobs for a [`Server`]. [`Default`] gives a small
/// general-purpose configuration; every field can be overridden with
/// struct-update syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of memo shards (power of two).
    pub shards: usize,
    /// Verdict capacity per shard.
    pub shard_capacity: usize,
    /// Admission cap: requests in flight beyond this are shed with
    /// [`ExecError::Overloaded`] instead of queued.
    pub max_inflight: usize,
    /// Base step allotment drawn from the shared pool per request
    /// attempt; doubled per retry.
    pub steps_per_request: u64,
    /// Per-attempt wall-clock deadline, if any.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt exhausts its budget (0 disables
    /// retrying).
    pub max_retries: u32,
    /// Seed for the deterministic retry jitter; combined with the
    /// request index, it forms the `(seed, index)` repro token.
    pub retry_seed: u64,
    /// Completed [`RequestSpan`]s each worker's [`FlightRecorder`] ring
    /// retains (0 disables retention; spans are still counted).
    pub flight_recorder_capacity: usize,
    /// Route sessions through the compiled bytecode backend
    /// ([`Library::with_vm`]) — on by default: the VM is verdict-,
    /// budget-, and probe-identical to the closure tree (enforced by
    /// the `interp_vs_compiled` oracle and `tests/vm_parity.rs`), and
    /// relations whose plan did not compile fall back per relation
    /// automatically. Set `false` to pin the closure tree, e.g. for
    /// A/B measurements.
    pub use_vm: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 16,
            shard_capacity: crate::memo::DEFAULT_CAPACITY / 16,
            max_inflight: 64,
            steps_per_request: 50_000,
            deadline: None,
            max_retries: 2,
            retry_seed: 0,
            flight_recorder_capacity: 64,
            use_vm: true,
        }
    }
}

/// Auto-dumps retained before new ones are discarded (each dump is a
/// bounded multi-line string; the cap keeps a flapping shard from
/// growing server memory without bound).
const MAX_AUTO_DUMPS: usize = 4;

/// The server's metrics: registry-registered counters for every
/// deterministic serving event, plus the one wall-clock series
/// (`serve.latency_us`). Request handling bumps the cached [`Arc`]
/// handles directly — the registry's lock is only taken at
/// registration and snapshot time.
struct Telemetry {
    registry: MetricsRegistry,
    requests: Arc<Counter>,
    outcome_true: Arc<Counter>,
    outcome_false: Arc<Counter>,
    outcome_unknown: Arc<Counter>,
    outcome_failed: Arc<Counter>,
    shed: Arc<Counter>,
    retries: Arc<Counter>,
    steps: Arc<Counter>,
    latency_us: Arc<Log2Histogram>,
    /// Profile-guided replan passes run through [`Session::replan_hot`].
    replans: Arc<Counter>,
    /// Relations recompiled into a different plan across those passes.
    relations_replanned: Arc<Counter>,
    /// Relations whose plans were reused (or reproduced unchanged).
    relations_kept: Arc<Counter>,
}

impl Telemetry {
    fn new() -> Telemetry {
        let registry = MetricsRegistry::new();
        let det = Determinism::Deterministic;
        Telemetry {
            requests: registry.counter("serve.requests", det),
            outcome_true: registry.counter("serve.requests.true", det),
            outcome_false: registry.counter("serve.requests.false", det),
            outcome_unknown: registry.counter("serve.requests.unknown", det),
            outcome_failed: registry.counter("serve.requests.failed", det),
            shed: registry.counter("serve.shed", det),
            retries: registry.counter("serve.retries", det),
            steps: registry.counter("serve.steps", det),
            latency_us: registry.histogram("serve.latency_us", Determinism::WallClock),
            replans: registry.counter("plan.replans", det),
            relations_replanned: registry.counter("plan.relations_replanned", det),
            relations_kept: registry.counter("plan.relations_kept", det),
            registry,
        }
    }

    /// The counter a finished request's outcome increments (shed
    /// requests count on `serve.shed`, mirroring [`MemoStats::shed`]).
    fn outcome(&self, outcome: RequestOutcome) -> &Counter {
        match outcome {
            RequestOutcome::True => &self.outcome_true,
            RequestOutcome::False => &self.outcome_false,
            RequestOutcome::Unknown => &self.outcome_unknown,
            RequestOutcome::Failed => &self.outcome_failed,
            RequestOutcome::Shed => &self.shed,
        }
    }
}

/// State shared between a [`Server`], its [`Session`]s, and outstanding
/// [`Permit`]s.
struct ServerState {
    memo: Arc<SharedMemo>,
    pool: BudgetPool,
    config: ServeConfig,
    inflight: AtomicUsize,
    tel: Telemetry,
    /// Relation names indexed by `RelId::index()`, snapshotted at
    /// construction so dumps can render names without a `Library`
    /// (sessions are not `Send`; the server is).
    rel_names: Vec<String>,
    /// Every session's flight recorder, in creation order — worker
    /// index in dumps is the position here.
    recorders: Mutex<Vec<Arc<FlightRecorder>>>,
    /// Flight dumps triggered automatically (shard degradation),
    /// bounded by [`MAX_AUTO_DUMPS`].
    auto_dumps: Mutex<Vec<String>>,
}

impl ServerState {
    /// The admission gate shared by [`Server::try_admit`] and every
    /// [`Session`] request.
    fn try_admit(self: &Arc<Self>) -> Result<Permit, ExecError> {
        let capacity = self.config.max_inflight;
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= capacity {
                self.tel.shed.inc();
                return Err(ExecError::Overloaded {
                    inflight: cur,
                    capacity,
                });
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(Permit {
                        state: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// The name snapshot for `rel`, with the same fallback the probe
    /// name table uses for unknown ids.
    fn rel_name(&self, rel: RelId) -> String {
        self.rel_names
            .get(rel.index())
            .cloned()
            .unwrap_or_else(|| format!("rel#{}", rel.index()))
    }

    /// One JSON-lines dump of every registered flight recorder: a
    /// header object (`{"dump":"flight_recorder","reason":…}`), then
    /// each retained span with its worker coordinate, oldest first.
    fn render_flight_dump(&self, reason: &str) -> String {
        let recorders = self
            .recorders
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out = format!(
            "{{\"dump\":\"flight_recorder\",\"reason\":\"{}\",\"workers\":{}}}\n",
            json_escape(reason),
            recorders.len()
        );
        for (worker, rec) in recorders.iter().enumerate() {
            for span in rec.spans() {
                out.push_str(&format!(
                    "{{\"worker\":{},{}}}\n",
                    worker,
                    span.fields(&self.rel_name(span.rel))
                ));
            }
        }
        out
    }

    /// Renders and retains an automatic dump (bounded; see
    /// [`MAX_AUTO_DUMPS`]).
    fn record_auto_dump(&self, reason: &str) {
        let mut dumps = self
            .auto_dumps
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if dumps.len() < MAX_AUTO_DUMPS {
            let rendered = self.render_flight_dump(reason);
            dumps.push(rendered);
        }
    }
}

/// A concurrent serving front-end over one frozen [`SharedLibrary`]
/// core: shared memo, shared budget pool, admission control. Worker
/// threads each call [`Server::session`] for their own single-threaded
/// [`Session`] and drive requests through it; the server itself is
/// `Send + Sync` and borrowed by all of them.
pub struct Server {
    shared: SharedLibrary,
    state: Arc<ServerState>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.state.config)
            .field("inflight", &self.state.inflight.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// A server over `shared`, with `budget` pooled across all requests
    /// (use [`Budget::unlimited`] for no global cap — per-request step
    /// allotments still apply).
    pub fn new(shared: SharedLibrary, config: ServeConfig, budget: Budget) -> Server {
        // Snapshot relation names up front: sessions (which own a
        // `Library`) are not `Send`, but the server and its dumps are.
        let rel_names: Vec<String> = {
            let lib = shared.fork();
            let mut names: Vec<(usize, String)> = lib
                .env()
                .iter()
                .map(|(id, r)| (id.index(), r.name().to_string()))
                .collect();
            names.sort_by_key(|(i, _)| *i);
            names.into_iter().map(|(_, n)| n).collect()
        };
        Server {
            shared,
            state: Arc::new(ServerState {
                memo: Arc::new(SharedMemo::new(config.shards, config.shard_capacity)),
                pool: BudgetPool::new(budget),
                config,
                inflight: AtomicUsize::new(0),
                tel: Telemetry::new(),
                rel_names,
                recorders: Mutex::new(Vec::new()),
                auto_dumps: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.state.config
    }

    /// The shared verdict table (e.g. to poison shards in tests).
    pub fn memo(&self) -> &Arc<SharedMemo> {
        &self.state.memo
    }

    /// The shared budget pool requests draw from.
    pub fn pool(&self) -> &BudgetPool {
        &self.state.pool
    }

    /// Admits one request or sheds it. Public so harnesses can occupy
    /// capacity deterministically: hold `max_inflight` permits and
    /// every further request is shed with [`ExecError::Overloaded`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Overloaded`] when `max_inflight` requests already
    /// hold permits.
    pub fn try_admit(&self) -> Result<Permit, ExecError> {
        self.state.try_admit()
    }

    /// A fresh single-threaded session over the server's frozen core,
    /// with the shared memo attached and a flight recorder registered
    /// with the server. Each worker thread makes its own.
    pub fn session(&self) -> Session {
        let recorder = Arc::new(FlightRecorder::new(
            self.state.config.flight_recorder_capacity,
        ));
        self.state
            .recorders
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&recorder));
        let mut lib = self
            .shared
            .fork()
            .with_shared_memo(Arc::clone(&self.state.memo));
        if self.state.config.use_vm {
            lib = lib.with_vm();
        }
        Session {
            lib,
            state: Arc::clone(&self.state),
            recorder,
        }
    }

    /// Combined serving counters: the shared table's counters plus the
    /// request layer's `shed` and `retries`.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            shed: self.state.tel.shed.value(),
            retries: self.state.tel.retries.value(),
            ..self.state.memo.stats()
        }
    }

    /// The server's metrics registry, e.g. to register extra series
    /// next to the built-in `serve.*` ones.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.state.tel.registry
    }

    /// One coherent metrics snapshot: every registry series plus the
    /// shared table's counters (`memo.*`) and the instantaneous gauges
    /// (`memo.entries`, `memo.degraded_shards`, `serve.inflight`) —
    /// all deterministic; the only wall-clock series is
    /// `serve.latency_us`. Render with
    /// [`MetricsSnapshot::to_json`] (schema `indrel.metrics/1`),
    /// [`MetricsSnapshot::deterministic_json`] (byte-comparable), or
    /// [`MetricsSnapshot::to_prometheus`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.state.tel.registry.snapshot();
        let det = Determinism::Deterministic;
        let m = self.state.memo.stats();
        snap.insert_counter("memo.hits", m.hits, det);
        snap.insert_counter("memo.misses", m.misses, det);
        snap.insert_counter("memo.insertions", m.insertions, det);
        snap.insert_counter("memo.none_skipped", m.none_skipped, det);
        snap.insert_counter("memo.full_skipped", m.full_skipped, det);
        snap.insert_gauge("memo.entries", m.entries as u64, det);
        snap.insert_gauge("memo.degraded_shards", m.degraded_shards, det);
        snap.insert_gauge(
            "serve.inflight",
            self.state.inflight.load(Ordering::Relaxed) as u64,
            det,
        );
        snap
    }

    /// [`Server::snapshot`] extended with the per-rule attribution an
    /// armed [`SearchStats`] probe collected: for every attempted rule,
    /// `rule.<rel>.<i>.{attempts,successes,backtracks}` counters, and
    /// for every measured premise,
    /// `premise.<rel>.<i>.<step>.{evals,cost,failures}` — the same data
    /// [`Library::explain_with_stats`](crate::Library::explain_with_stats)
    /// tabulates.
    pub fn snapshot_with_stats(&self, stats: &SearchStats) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        let det = Determinism::Deterministic;
        for (rel, rule, r) in stats.all_rule_stats() {
            let name = self.rel_name(rel);
            snap.insert_counter(&format!("rule.{name}.{rule}.attempts"), r.attempts, det);
            snap.insert_counter(&format!("rule.{name}.{rule}.successes"), r.successes, det);
            snap.insert_counter(&format!("rule.{name}.{rule}.backtracks"), r.backtracks, det);
        }
        for (rel, rule, step, p) in stats.all_premise_stats() {
            let name = self.rel_name(rel);
            snap.insert_counter(&format!("premise.{name}.{rule}.{step}.evals"), p.evals, det);
            snap.insert_counter(&format!("premise.{name}.{rule}.{step}.cost"), p.cost, det);
            snap.insert_counter(
                &format!("premise.{name}.{rule}.{step}.failures"),
                p.failures,
                det,
            );
        }
        snap
    }

    fn rel_name(&self, rel: RelId) -> String {
        self.state.rel_name(rel)
    }

    /// Renders every session's flight-recorder ring as a JSON-lines
    /// dump: one header object, then one span per line with its worker
    /// coordinate. All span fields are deterministic (see
    /// [`RequestSpan`]).
    pub fn dump_flight_recorder(&self) -> String {
        self.state.render_flight_dump("explicit")
    }

    /// Takes (and clears) the dumps triggered automatically by shard
    /// degradation. At most four are retained between calls.
    pub fn take_auto_dumps(&self) -> Vec<String> {
        std::mem::take(
            &mut *self
                .state
                .auto_dumps
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// An admission slot, held for the duration of one request; dropping it
/// releases the slot. Returned by [`Server::try_admit`].
pub struct Permit {
    state: Arc<ServerState>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One worker's single-threaded view of a [`Server`]: a forked
/// [`Library`] session (own scratch pools, meter, probe) with the
/// shared memo attached. Not `Send` — make one per thread with
/// [`Server::session`].
pub struct Session {
    lib: Library,
    state: Arc<ServerState>,
    recorder: Arc<FlightRecorder>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

impl Session {
    /// The underlying library session, e.g. to arm a probe on it
    /// ([`Library::arm_probe`]) or run enumerator traffic alongside
    /// checks.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// This worker's flight recorder: the bounded ring of its last
    /// completed [`RequestSpan`]s, also reachable through the server's
    /// dumps.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Hot-swaps this session onto a profile-guided replan of its core
    /// ([`Library::replan_from`]) without dropping any serving-layer
    /// attachment: the new session keeps the server's shared memo table
    /// (verdicts are fuel-monotone facts about the *relation*, so they
    /// stay valid across plan changes) and re-applies the configured
    /// bytecode routing — relations whose replanned plan no longer
    /// compiles to bytecode fall back to the closure tree per relation,
    /// exactly as a fresh [`Server::session`] would.
    ///
    /// Only this session is swapped; other sessions keep their plans
    /// until they replan. Bumps the server's `plan.*` metrics
    /// (`plan.replans`, `plan.relations_replanned`,
    /// `plan.relations_kept`) and returns the [`ReplanReport`].
    pub fn replan_hot(&mut self, stats: &SearchStats) -> ReplanReport {
        let (lib, report) = self.lib.replan_from_report(stats);
        let mut lib = lib.with_shared_memo(Arc::clone(&self.state.memo));
        if self.state.config.use_vm {
            lib = lib.with_vm();
        }
        self.lib = lib;
        let tel = &self.state.tel;
        tel.replans.inc();
        tel.relations_replanned.add(report.replanned.len() as u64);
        tel.relations_kept
            .add((report.kept.len() + report.unchanged.len()) as u64);
        report
    }

    /// Checks a batch of argument tuples against `rel` at fuel `size`,
    /// one verdict (or structured error) per tuple, in order.
    ///
    /// Per request: admission ([`ExecError::Overloaded`] when the
    /// server is at capacity — shed requests cost nothing and are not
    /// retried), then up to `1 + max_retries` attempts, each under a
    /// step allotment drawn from the shared pool (doubling per retry,
    /// plus deterministic jitter from `(retry_seed, index)`); unspent
    /// steps are returned to the pool. Instance and arity validation is
    /// amortized: resolved once for the batch, not per tuple.
    pub fn check_batch(
        &self,
        rel: RelId,
        size: u64,
        batch: &[Vec<Value>],
    ) -> Vec<Result<Option<bool>, ExecError>> {
        let mut out = Vec::with_capacity(batch.len());
        // Amortized validation: one instance lookup and arity check for
        // the whole batch (all tuples address the same checker).
        let precheck = self.lib.require_checker(rel).map(|_| ());
        let arity = self.lib.env().relation(rel).arity();
        for (index, args) in batch.iter().enumerate() {
            let r = match &precheck {
                Err(e) => Err(e.clone()),
                Ok(()) if args.len() != arity => {
                    Err(self.lib.require_count(rel, arity, args.len()).unwrap_err())
                }
                Ok(()) => self.check_one(rel, size, args, index as u64),
            };
            out.push(r);
            self.report_degraded(rel);
        }
        out
    }

    /// Replays one request exactly as [`Session::check_batch`] ran it:
    /// `(seed, index)` is the repro token — the same seed the server
    /// was configured with and the request's position in its batch —
    /// and determines the retry jitter, so the attempt-by-attempt
    /// budget escalation is byte-identical to the original run
    /// (assuming the same pool state; use an unlimited pool to isolate
    /// the request).
    pub fn check_replay(
        &self,
        rel: RelId,
        size: u64,
        args: &[Value],
        seed: u64,
        index: u64,
    ) -> Result<Option<bool>, ExecError> {
        self.lib.require_checker(rel)?;
        self.lib
            .require_count(rel, self.lib.env().relation(rel).arity(), args.len())?;
        let r = self.check_one_seeded(rel, size, args, seed, index);
        self.report_degraded(rel);
        r
    }

    /// One admitted, budgeted, retried request.
    fn check_one(
        &self,
        rel: RelId,
        size: u64,
        args: &[Value],
        index: u64,
    ) -> Result<Option<bool>, ExecError> {
        self.check_one_seeded(rel, size, args, self.state.config.retry_seed, index)
    }

    fn check_one_seeded(
        &self,
        rel: RelId,
        size: u64,
        args: &[Value],
        seed: u64,
        index: u64,
    ) -> Result<Option<bool>, ExecError> {
        let started = Instant::now();
        let _permit = match self.state.try_admit() {
            Ok(p) => p,
            Err(e) => {
                self.lib.probe(|| Event::Shed { rel });
                // `try_admit` already counted the shed; the span and
                // `serve.requests` still record the request itself.
                self.finish(
                    RequestSpan {
                        seed,
                        index,
                        rel,
                        size,
                        outcome: RequestOutcome::Shed,
                        attempts: 0,
                        steps: 0,
                        memo_hits: 0,
                        memo_misses: 0,
                    },
                    started,
                );
                return Err(e);
            }
        };
        let (hits_before, misses_before) = self.lib.shared_memo_counts();
        let (result, attempts, steps) = self.run_attempts(rel, size, args, seed, index);
        let (hits_after, misses_after) = self.lib.shared_memo_counts();
        let outcome = match &result {
            Ok(Some(true)) => RequestOutcome::True,
            Ok(Some(false)) => RequestOutcome::False,
            Ok(None) => RequestOutcome::Unknown,
            Err(_) => RequestOutcome::Failed,
        };
        self.finish(
            RequestSpan {
                seed,
                index,
                rel,
                size,
                outcome,
                attempts,
                steps,
                memo_hits: hits_after - hits_before,
                memo_misses: misses_after - misses_before,
            },
            started,
        );
        result
    }

    /// The budgeted retry loop: up to `1 + max_retries` attempts under
    /// escalating pool draws, returning the final result alongside the
    /// attempts consumed and the steps actually spent (both of which
    /// the request's span records).
    fn run_attempts(
        &self,
        rel: RelId,
        size: u64,
        args: &[Value],
        seed: u64,
        index: u64,
    ) -> (Result<Option<bool>, ExecError>, u32, u64) {
        let config = &self.state.config;
        let pool = &self.state.pool;
        // Step-based, wall-clock-free jitter: the stream depends only
        // on (seed, index), never on time or thread interleaving.
        let mut rng = SmallRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut attempt = 0u32;
        let mut spent = 0u64;
        loop {
            // A dry or expired pool fails the request with its actual
            // exhaustion cause (check_deadline also returns false for
            // step exhaustion, so consult the cause directly).
            if !pool.check_deadline() {
                let e = pool
                    .exhaustion()
                    .map_or(ExecError::Deadline, ExecError::from);
                return (Err(e), attempt + 1, spent);
            }
            let base = config.steps_per_request << attempt.min(16);
            let jitter = rng.gen_range(0..=base / 4);
            let want = base + jitter;
            let got = pool.draw_steps(want);
            if got == 0 {
                // The shared pool is dry (and poisoned): report its
                // exhaustion rather than fabricating a verdict.
                let e = pool
                    .exhaustion()
                    .map_or(ExecError::Deadline, ExecError::from);
                return (Err(e), attempt + 1, spent);
            }
            let mut budget = Budget::unlimited().with_steps(got);
            if let Some(d) = config.deadline {
                budget = budget.with_deadline(d);
            }
            let (result, used) = self.lib.try_check_usage(rel, size, size, args, budget);
            pool.return_steps(got.saturating_sub(used));
            spent += used;
            match result {
                Err(ExecError::BudgetExhausted { .. }) if attempt < config.max_retries => {
                    attempt += 1;
                    self.state.tel.retries.inc();
                    self.lib.probe(|| Event::Retry { rel, attempt });
                }
                other => return (other, attempt + 1, spent),
            }
        }
    }

    /// Books one completed request everywhere it is observed: the
    /// deterministic registry counters, the wall-clock latency
    /// histogram, this worker's flight-recorder ring, and (when a probe
    /// is armed) an [`Event::Request`].
    fn finish(&self, span: RequestSpan, started: Instant) {
        let tel = &self.state.tel;
        tel.requests.inc();
        if span.outcome != RequestOutcome::Shed {
            // Shed requests were already counted on `serve.shed` by the
            // admission gate (which also serves bare `try_admit`).
            tel.outcome(span.outcome).inc();
        }
        tel.steps.add(span.steps);
        tel.latency_us
            .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
        self.recorder.push(span);
        self.lib.probe(|| Event::Request {
            rel: span.rel,
            index: span.index,
            outcome: span.outcome,
            attempts: span.attempts,
            steps: span.steps,
        });
    }

    /// Drains shard-degradation notices from the shared table into this
    /// session's probe, and triggers an automatic flight-recorder dump
    /// for each batch of retirements.
    fn report_degraded(&self, _rel: RelId) {
        let shards = self.state.memo.drain_degraded_events();
        if shards.is_empty() {
            return;
        }
        for &shard in &shards {
            self.lib.probe(|| Event::ShardDegraded { shard });
        }
        let reason = format!(
            "shard_degraded:[{}]",
            shards
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        self.state.record_auto_dump(&reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;
    use indrel_producers::{ExecProbe, SearchStats};
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::{CtorId, Universe};

    /// Keeps the injected `poison_shard` panics out of test output
    /// (other panics still print; `indrel_pbt` has the general version,
    /// but core cannot depend on it).
    fn silence_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected shard poison"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    fn rel() -> RelId {
        RelId::new(0)
    }

    fn tree(n: u64) -> Value {
        Value::ctor(CtorId::new(1), vec![Value::nat(n)])
    }

    fn shared_even() -> (SharedLibrary, RelId) {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"rel even' : nat :=
              | even_0 : even' 0
              | even_SS : forall n, even' n -> even' (S (S n))
              .",
        )
        .unwrap();
        let even = env.rel_id("even'").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(even).unwrap();
        (b.build().shared(), even)
    }

    fn shared_twin() -> (SharedLibrary, RelId) {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"rel twin : nat :=
              | t0 : twin 0
              | tS : forall n, twin n -> twin n -> twin (S n)
              .",
        )
        .unwrap();
        let twin = env.rel_id("twin").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(twin).unwrap();
        (b.build().shared(), twin)
    }

    #[test]
    fn miss_insert_hit_and_dominance() {
        let m = SharedMemo::new(8, 16);
        let args = [tree(3), Value::nat(7)];
        let fp = 0xDEAD_BEEF_u64;
        assert_eq!(m.lookup(rel(), fp, &args, 5, 5), None);
        m.insert(rel(), fp, &args, 5, 5, true);
        // Structurally equal but physically fresh args hit.
        let again = [tree(3), Value::nat(7)];
        assert_eq!(m.lookup(rel(), fp, &again, 5, 5), Some(true));
        assert_eq!(m.lookup(rel(), fp, &again, 9, 6), Some(true));
        // Dominated fuels do not answer.
        assert_eq!(m.lookup(rel(), fp, &again, 4, 5), None);
        // A dominating insert widens in place: one entry, two inserts.
        m.insert(rel(), fp, &args, 2, 2, true);
        assert_eq!(m.lookup(rel(), fp, &again, 2, 2), Some(true));
        let s = m.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        // Colliding fingerprints are confirmed structurally.
        let other = [tree(4), Value::nat(7)];
        assert_eq!(m.lookup(rel(), fp, &other, 9, 9), None);
    }

    #[test]
    fn shard_capacity_stops_admitting() {
        let m = SharedMemo::new(1, 2);
        for n in 0..4 {
            m.insert(rel(), n, &[tree(n)], 5, 5, true);
        }
        let s = m.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.full_skipped, 2);
        assert_eq!(m.lookup(rel(), 0, &[tree(0)], 5, 5), Some(true));
    }

    #[test]
    fn poisoned_shard_degrades_and_the_rest_keep_serving() {
        silence_injected_panics();
        let m = SharedMemo::new(4, 16);
        // Two fingerprints in different shards.
        let (fp_a, mut fp_b) = (0u64, 1u64);
        while m.shard_for(fp_a) == m.shard_for(fp_b) {
            fp_b += 1;
        }
        m.insert(rel(), fp_a, &[tree(1)], 5, 5, true);
        m.insert(rel(), fp_b, &[tree(2)], 5, 5, false);
        m.poison_shard(m.shard_for(fp_a));
        // The poisoned shard answers misses (fallback), once marked.
        assert_eq!(m.lookup(rel(), fp_a, &[tree(1)], 5, 5), None);
        assert_eq!(m.degraded_count(), 1);
        // Inserts to it are swallowed; lookups stay misses.
        m.insert(rel(), fp_a, &[tree(9)], 5, 5, true);
        assert_eq!(m.lookup(rel(), fp_a, &[tree(9)], 5, 5), None);
        // The other shard is untouched.
        assert_eq!(m.lookup(rel(), fp_b, &[tree(2)], 5, 5), Some(false));
        assert_eq!(m.stats().degraded_shards, 1);
        assert_eq!(m.drain_degraded_events(), vec![m.shard_for(fp_a) as u32]);
        assert!(m.drain_degraded_events().is_empty(), "drain is one-shot");
    }

    #[test]
    fn admission_sheds_at_capacity_and_recovers() {
        let (shared, _) = shared_even();
        let server = Server::new(
            shared,
            ServeConfig {
                max_inflight: 2,
                ..ServeConfig::default()
            },
            Budget::unlimited(),
        );
        let p1 = server.try_admit().unwrap();
        let p2 = server.try_admit().unwrap();
        assert_eq!(
            server.try_admit().map(|_| ()),
            Err(ExecError::Overloaded {
                inflight: 2,
                capacity: 2
            })
        );
        drop(p1);
        let p3 = server.try_admit().unwrap();
        drop(p2);
        drop(p3);
        assert_eq!(server.stats().shed, 1);
    }

    #[test]
    fn batch_agrees_with_sequential_and_fills_the_shared_table() {
        let (shared, even) = shared_even();
        let server = Server::new(shared.clone(), ServeConfig::default(), Budget::unlimited());
        let session = server.session();
        let batch: Vec<Vec<Value>> = (0..20u64).map(|n| vec![Value::nat(n)]).collect();
        let got = session.check_batch(even, 30, &batch);
        let plain = shared.fork();
        for (n, r) in batch.iter().zip(&got) {
            assert_eq!(
                r,
                &plain.try_check(even, 30, 30, n, Budget::unlimited()),
                "args {n:?}"
            );
        }
        // The batch populated the shared table; a second session hits.
        assert!(server.stats().insertions > 0);
        let before = server.stats().hits;
        let session2 = server.session();
        session2.check_batch(even, 30, &batch);
        assert!(server.stats().hits > before, "second batch should hit");
    }

    #[test]
    fn batch_reports_arity_and_instance_errors_per_request() {
        let (shared, even) = shared_even();
        let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
        let session = server.session();
        let batch = vec![vec![Value::nat(2)], vec![Value::nat(2), Value::nat(3)]];
        let got = session.check_batch(even, 10, &batch);
        assert_eq!(got[0], Ok(Some(true)));
        assert!(matches!(got[1], Err(ExecError::ArityMismatch { .. })));
    }

    #[test]
    fn retries_escalate_deterministically_and_replay_matches() {
        let (shared, twin) = shared_twin();
        let config = ServeConfig {
            steps_per_request: 8,
            max_retries: 8,
            retry_seed: 42,
            ..ServeConfig::default()
        };
        let server = Server::new(shared, config, Budget::unlimited());
        let session = server.session();
        let stats = SearchStats::new();
        let args = vec![vec![Value::nat(6)]];
        let got = {
            let _probe = session.library().arm_probe(ExecProbe::stats(&stats));
            session.check_batch(twin, 10, &args)
        };
        // 8 steps cannot check twin 6 (2^6 leaves); retries escalated
        // until the doubled budget sufficed.
        assert_eq!(got[0], Ok(Some(true)));
        assert!(stats.retries() > 0, "tight first budget must retry");
        assert_eq!(server.stats().retries, stats.retries());
        // The (seed, index) token replays the same escalation path.
        let replay = session.check_replay(twin, 10, &args[0], 42, 0);
        assert_eq!(replay, got[0].clone());
        // Exhausting every retry surfaces the structured error.
        let starved = Server::new(
            shared_twin().0,
            ServeConfig {
                steps_per_request: 2,
                max_retries: 1,
                ..ServeConfig::default()
            },
            Budget::unlimited(),
        );
        let s = starved.session();
        let r = s.check_batch(shared_twin().1, 12, &[vec![Value::nat(10)]]);
        assert!(matches!(r[0], Err(ExecError::BudgetExhausted { .. })));
        assert_eq!(starved.stats().retries, 1);
    }

    #[test]
    fn pool_exhaustion_fails_requests_without_fabricating_verdicts() {
        let (shared, twin) = shared_twin();
        let server = Server::new(
            shared,
            ServeConfig {
                steps_per_request: 64,
                max_retries: 0,
                ..ServeConfig::default()
            },
            Budget::unlimited().with_steps(100),
        );
        let session = server.session();
        let batch: Vec<Vec<Value>> = (0..6u64).map(|_| vec![Value::nat(12)]).collect();
        let got = session.check_batch(twin, 20, &batch);
        // Every request fails structurally — the pool runs dry part way
        // through — and none reports a fabricated verdict.
        assert!(
            got.iter()
                .all(|r| matches!(r, Err(ExecError::BudgetExhausted { .. }))),
            "{got:?}"
        );
    }

    #[test]
    fn flight_recorder_rings_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            rec.push(RequestSpan {
                seed: 0,
                index: i,
                rel: rel(),
                size: 10,
                outcome: RequestOutcome::True,
                attempts: 1,
                steps: i,
                memo_hits: 0,
                memo_misses: 0,
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<u64> = rec.spans().iter().map(|s| s.index).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest spans evicted first");
    }

    #[test]
    fn spans_and_metrics_record_every_request() {
        let (shared, even) = shared_even();
        let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
        let session = server.session();
        let batch: Vec<Vec<Value>> = (0..4u64).map(|n| vec![Value::nat(n)]).collect();
        let got = session.check_batch(even, 10, &batch);
        assert!(got.iter().all(|r| r.is_ok()));
        // The ring holds one deterministic span per request, in order.
        let spans = session.recorder().spans();
        assert_eq!(spans.len(), 4);
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(span.index, i as u64);
            assert_eq!(span.rel, even);
            assert_eq!(span.attempts, 1);
            let want = if i % 2 == 0 {
                RequestOutcome::True
            } else {
                RequestOutcome::False
            };
            assert_eq!(span.outcome, want, "span {i}");
            assert!(span.steps > 0, "search work is attributed to the span");
        }
        // The registry agrees with the spans and with MemoStats.
        let snap = server.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(4));
        assert_eq!(snap.counter("serve.requests.true"), Some(2));
        assert_eq!(snap.counter("serve.requests.false"), Some(2));
        assert_eq!(snap.counter("serve.shed"), Some(0));
        assert_eq!(snap.counter("serve.retries"), Some(0));
        assert!(snap.counter("serve.steps").unwrap() > 0);
        let m = server.stats();
        assert_eq!(snap.counter("memo.hits"), Some(m.hits));
        assert_eq!(snap.counter("memo.misses"), Some(m.misses));
        assert_eq!(snap.gauge("memo.entries"), Some(m.entries as u64));
        // The explicit dump renders a header plus one line per span,
        // with the relation name resolved.
        let dump = server.dump_flight_recorder();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"dump\":\"flight_recorder\""));
        assert!(lines[0].contains("\"reason\":\"explicit\""));
        assert!(lines[1].contains("\"worker\":0"));
        assert!(lines[1].contains("\"rel\":\"even'\""));
        assert!(lines[1].contains("\"outcome\":\"true\""));
    }

    #[test]
    fn shed_requests_span_without_double_counting() {
        let (shared, even) = shared_even();
        let server = Server::new(
            shared,
            ServeConfig {
                max_inflight: 1,
                ..ServeConfig::default()
            },
            Budget::unlimited(),
        );
        let session = server.session();
        let _hog = server.try_admit().unwrap();
        let got = session.check_batch(even, 10, &[vec![Value::nat(2)]]);
        assert!(matches!(got[0], Err(ExecError::Overloaded { .. })));
        let spans = session.recorder().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, RequestOutcome::Shed);
        assert_eq!(spans[0].attempts, 0);
        assert_eq!(spans[0].steps, 0);
        let snap = server.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(1));
        assert_eq!(snap.counter("serve.shed"), Some(1), "admission counts once");
        assert_eq!(server.stats().shed, 1);
    }

    #[test]
    fn shard_degradation_triggers_an_automatic_flight_dump() {
        silence_injected_panics();
        let (shared, even) = shared_even();
        let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
        let session = server.session();
        session.check_batch(even, 10, &[vec![Value::nat(2)]]);
        assert!(server.take_auto_dumps().is_empty(), "no degradation yet");
        server.memo().poison_shard(5);
        // Degradation is noticed lazily, on the next access that routes
        // to the poisoned shard — force one with a matching fingerprint.
        let mut fp = 0u64;
        while server.memo().shard_for(fp) != 5 {
            fp += 1;
        }
        assert_eq!(server.memo().lookup(even, fp, &[Value::nat(0)], 5, 5), None);
        // The next request drains the retirement notice and auto-dumps.
        session.check_batch(even, 10, &[vec![Value::nat(4)]]);
        let dumps = server.take_auto_dumps();
        assert_eq!(dumps.len(), 1);
        assert!(dumps[0].contains("\"reason\":\"shard_degraded:[5]\""));
        assert!(dumps[0].contains("\"rel\":\"even'\""));
        assert!(server.take_auto_dumps().is_empty(), "take drains");
    }

    // Attribution needs the emission sites, which `no-probe` removes.
    #[cfg(not(feature = "no-probe"))]
    #[test]
    fn snapshot_with_stats_folds_in_rule_attribution() {
        let (shared, even) = shared_even();
        let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
        let session = server.session();
        let stats = SearchStats::new();
        {
            let _probe = session.library().arm_probe(ExecProbe::stats(&stats));
            session.check_batch(even, 10, &[vec![Value::nat(6)]]);
        }
        let snap = server.snapshot_with_stats(&stats);
        assert!(
            snap.counter("rule.even'.1.attempts").unwrap_or(0) > 0,
            "recursive rule attempted:\n{snap}"
        );
        assert!(
            snap.counter("premise.even'.1.0.evals").unwrap_or(0) > 0,
            "recursive premise attributed:\n{snap}"
        );
        // Request-level counters came along from the base snapshot.
        assert_eq!(snap.counter("serve.requests"), Some(1));
    }

    #[test]
    fn deterministic_json_is_identical_across_reruns() {
        let run = || {
            let (shared, even) = shared_even();
            let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
            let session = server.session();
            let batch: Vec<Vec<Value>> = (0..8u64).map(|n| vec![Value::nat(n)]).collect();
            session.check_batch(even, 12, &batch);
            server.snapshot().deterministic_json()
        };
        let a = run();
        assert_eq!(a, run(), "deterministic sections are byte-identical");
        assert!(!a.contains("latency"), "wall-clock series excluded");
    }

    #[test]
    fn concurrent_sessions_share_verdicts_and_poison_degrades_gracefully() {
        silence_injected_panics();
        let (shared, even) = shared_even();
        let server = Server::new(shared.clone(), ServeConfig::default(), Budget::unlimited());
        let batch: Vec<Vec<Value>> = (0..24u64).map(|n| vec![Value::nat(n)]).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let server = &server;
                let batch = &batch;
                scope.spawn(move || {
                    let session = server.session();
                    if t == 0 {
                        server.memo().poison_shard(3);
                    }
                    let got = session.check_batch(even, 30, batch);
                    for (n, r) in got.iter().enumerate() {
                        assert_eq!(r, &Ok(Some(n % 2 == 0)), "n={n}");
                    }
                });
            }
        });
        // The poisoned shard was (at most) retired; verdicts above were
        // all still correct vs the even/odd oracle.
        assert!(server.stats().degraded_shards <= 1);
    }
}
