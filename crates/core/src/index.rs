//! Constructor-indexed rule dispatch for lowered checkers.
//!
//! The `compatible` analysis of §4 already decides, per rule, which
//! shapes of scrutinee can possibly unify with the conclusion's input
//! patterns. This module exploits the first-order special case at run
//! time: pick one input position where many rules pattern-match
//! rigidly (an exact constructor, literal, or successor shape), bucket
//! the rules by the *head class* they demand at that position, and
//! dispatch each call straight to the bucket matching the scrutinee's
//! head. Rules in other buckets would fail their input-pattern match
//! — a conclusive `Some(false)`, never an out-of-fuel `None` — so
//! pruning them cannot change any verdict; it only skips attempts the
//! probe layer would have recorded as immediate `UnifyFail`s.
//!
//! Rules whose pattern at the chosen position is flexible (`Wild` or a
//! variable) appear in every bucket. When no position has any rigid
//! pattern, no index is built and dispatch stays linear.

use indrel_term::{CtorId, Pattern, Value};

/// The head class a rigid pattern demands of its scrutinee.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Head {
    NatZero,
    NatPos,
    Bool(bool),
    Ctor(CtorId),
}

/// Classifies a pattern's head demand; `None` for flexible patterns.
fn head_of(p: &Pattern) -> Option<Head> {
    match p {
        Pattern::Wild | Pattern::Var(_) => None,
        Pattern::NatLit(0) => Some(Head::NatZero),
        Pattern::NatLit(_) | Pattern::Succ(_) => Some(Head::NatPos),
        Pattern::BoolLit(b) => Some(Head::Bool(*b)),
        Pattern::Ctor(c, _) => Some(Head::Ctor(*c)),
    }
}

/// A first-argument discrimination index over a relation's handlers.
/// Buckets hold handler indices in ascending order, so indexed
/// dispatch attempts the surviving rules in the same order linear
/// dispatch would.
pub(crate) struct DispatchIndex {
    pos: usize,
    total: u32,
    nat_zero: Vec<u32>,
    nat_pos: Vec<u32>,
    bool_true: Vec<u32>,
    bool_false: Vec<u32>,
    /// Constructor buckets as a sorted-insertion pair list: a relation
    /// has a handful of rigid head constructors at most, so a linear
    /// scan beats hashing on the dispatch hot path (this lookup runs
    /// once per search entry, in every backend).
    ctor: Vec<(CtorId, Vec<u32>)>,
    /// The catch-all bucket: handlers flexible at `pos`. Serves
    /// constructors no rule demands rigidly.
    flexible: Vec<u32>,
}

impl DispatchIndex {
    /// Builds the index over one pattern row per handler, choosing the
    /// input position with the most rigid patterns (ties to the
    /// leftmost). Returns `None` when every pattern everywhere is
    /// flexible — linear dispatch is already optimal then.
    pub(crate) fn build(rows: &[&[Pattern]]) -> Option<DispatchIndex> {
        let arity = rows.first()?.len();
        let (pos, rigid) = (0..arity)
            .map(|p| (p, rows.iter().filter(|r| head_of(&r[p]).is_some()).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        if rigid == 0 {
            return None;
        }
        let mut idx = DispatchIndex {
            pos,
            total: rows.len() as u32,
            nat_zero: Vec::new(),
            nat_pos: Vec::new(),
            bool_true: Vec::new(),
            bool_false: Vec::new(),
            ctor: Vec::new(),
            flexible: Vec::new(),
        };
        for (i, row) in rows.iter().enumerate() {
            let i = i as u32;
            match head_of(&row[pos]) {
                None => {
                    // Flexible: a member of every bucket, present and
                    // future — including ctor buckets created below.
                    idx.nat_zero.push(i);
                    idx.nat_pos.push(i);
                    idx.bool_true.push(i);
                    idx.bool_false.push(i);
                    for (_, bucket) in idx.ctor.iter_mut() {
                        bucket.push(i);
                    }
                    idx.flexible.push(i);
                }
                Some(Head::NatZero) => idx.nat_zero.push(i),
                Some(Head::NatPos) => idx.nat_pos.push(i),
                Some(Head::Bool(true)) => idx.bool_true.push(i),
                Some(Head::Bool(false)) => idx.bool_false.push(i),
                Some(Head::Ctor(c)) => {
                    let bucket = match idx.ctor.iter_mut().position(|(id, _)| *id == c) {
                        Some(p) => &mut idx.ctor[p].1,
                        None => {
                            // A bucket opened late must start from the
                            // flexible handlers already seen, to keep
                            // it sorted and complete.
                            idx.ctor.push((c, idx.flexible.clone()));
                            &mut idx.ctor.last_mut().unwrap().1
                        }
                    };
                    bucket.push(i);
                }
            }
        }
        Some(idx)
    }

    /// The candidate handlers for a call with these arguments, in
    /// ascending handler order. Slices borrow from the index; callers
    /// compute `skipped` as `total() - candidates.len()`.
    pub(crate) fn candidates(&self, args: &[Value]) -> &[u32] {
        self.bucket(&args[self.pos])
    }

    /// `candidates` for callers holding arguments by reference (the
    /// bytecode VM's calling convention).
    pub(crate) fn candidates_ref(&self, args: &[&Value]) -> &[u32] {
        self.bucket(args[self.pos])
    }

    fn bucket(&self, scrutinee: &Value) -> &[u32] {
        match scrutinee {
            Value::Nat(0) => &self.nat_zero,
            Value::Nat(_) => &self.nat_pos,
            Value::Bool(true) => &self.bool_true,
            Value::Bool(false) => &self.bool_false,
            Value::Ctor(c, _) => self
                .ctor
                .iter()
                .find(|(id, _)| id == c)
                .map(|(_, b)| b.as_slice())
                .unwrap_or(&self.flexible),
        }
    }

    /// Total number of handlers the index covers.
    pub(crate) fn total(&self) -> u32 {
        self.total
    }

    /// The input position the index discriminates on. The bytecode
    /// compiler uses this to elide head guards the dispatch already
    /// proves (see `vm::head_guard_subsumed`).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CtorId {
        CtorId::new(n)
    }

    #[test]
    fn buckets_by_head_class_with_flexible_everywhere() {
        // Rules: 0 on ctor A, 1 on ctor B, 2 flexible, 3 on ctor A.
        let rows: Vec<Vec<Pattern>> = vec![
            vec![Pattern::ctor(c(0), vec![]), Pattern::Wild],
            vec![Pattern::ctor(c(1), vec![]), Pattern::Wild],
            vec![Pattern::var(0), Pattern::Wild],
            vec![Pattern::ctor(c(0), vec![Pattern::Wild]), Pattern::Wild],
        ];
        let refs: Vec<&[Pattern]> = rows.iter().map(Vec::as_slice).collect();
        let idx = DispatchIndex::build(&refs).expect("rigid position exists");
        assert_eq!(idx.total(), 4);
        let a = Value::ctor(c(0), vec![Value::nat(1)]);
        assert_eq!(idx.candidates(&[a, Value::nat(0)]), &[0, 2, 3]);
        let b = Value::ctor(c(1), vec![]);
        assert_eq!(idx.candidates(&[b, Value::nat(0)]), &[1, 2]);
        // A constructor no rule demands: only the flexible rule.
        let other = Value::ctor(c(9), vec![]);
        assert_eq!(idx.candidates(&[other, Value::nat(0)]), &[2]);
    }

    #[test]
    fn nat_heads_split_zero_from_successor() {
        let rows: Vec<Vec<Pattern>> = vec![
            vec![Pattern::NatLit(0)],
            vec![Pattern::Succ(Box::new(Pattern::var(0)))],
            vec![Pattern::NatLit(3)],
        ];
        let refs: Vec<&[Pattern]> = rows.iter().map(Vec::as_slice).collect();
        let idx = DispatchIndex::build(&refs).unwrap();
        assert_eq!(idx.candidates(&[Value::nat(0)]), &[0]);
        assert_eq!(idx.candidates(&[Value::nat(3)]), &[1, 2]);
        assert_eq!(idx.candidates(&[Value::nat(7)]), &[1, 2]);
    }

    #[test]
    fn all_flexible_builds_no_index() {
        let rows: Vec<Vec<Pattern>> = vec![vec![Pattern::var(0)], vec![Pattern::Wild]];
        let refs: Vec<&[Pattern]> = rows.iter().map(Vec::as_slice).collect();
        assert!(DispatchIndex::build(&refs).is_none());
    }

    #[test]
    fn picks_the_most_discriminating_position() {
        // Position 0 is flexible everywhere; position 1 is rigid.
        let rows: Vec<Vec<Pattern>> = vec![
            vec![Pattern::Wild, Pattern::BoolLit(true)],
            vec![Pattern::var(0), Pattern::BoolLit(false)],
        ];
        let refs: Vec<&[Pattern]> = rows.iter().map(Vec::as_slice).collect();
        let idx = DispatchIndex::build(&refs).unwrap();
        assert_eq!(idx.candidates(&[Value::nat(9), Value::bool(true)]), &[0]);
        assert_eq!(idx.candidates(&[Value::nat(9), Value::bool(false)]), &[1]);
    }

    #[test]
    fn zero_arity_builds_no_index() {
        let rows: Vec<Vec<Pattern>> = vec![vec![], vec![]];
        let refs: Vec<&[Pattern]> = rows.iter().map(Vec::as_slice).collect();
        assert!(DispatchIndex::build(&refs).is_none());
    }
}
