//! Closure lowering for checker plans.
//!
//! A derived checker can be executed two ways:
//!
//! * **interpreted** — walking the [`Step`] list of the [`Plan`]
//!   ([`crate::exec`]), or
//! * **lowered** — compiled once, at [`LibraryBuilder::build`] time,
//!   into a tree of continuation closures, the closest Rust analogue of
//!   the fixpoint *code* the paper's plugin emits (Figure 1). Each
//!   handler becomes one composed closure; step dispatch disappears.
//!
//! Lowering is the default execution strategy for derived checkers;
//! [`Library::check_interpreted`] keeps the interpreter reachable as
//! the ablation baseline (`ablation` bench, DESIGN.md §"Key internal
//! design decisions").
//!
//! Only checker plans are lowered: producer plans execute through lazy
//! streams whose laziness already dominates their cost profile, and
//! checker plans never contain [`Step::ProduceRec`] (a recursive
//! premise with unknowns in a checker is always routed through an
//! external producer instance), which keeps the closure signature
//! simple.
//!
//! [`LibraryBuilder::build`]: crate::LibraryBuilder::build
//! [`Library::check_interpreted`]: crate::Library::check_interpreted

use crate::index::DispatchIndex;
use crate::library::Library;
use crate::memo::Lookup;
use crate::plan::{Plan, Step};
use indrel_producers::probe::{Event, ExecKind, FailSite};
use indrel_producers::{bind_ec, cnot, EStream, Outcome};
use indrel_term::{Env, Pattern, RelId, Value};
use std::sync::Arc;

/// The continuation type: runs the remaining steps of a handler.
type Cont =
    Arc<dyn Fn(&Library, &LoweredChecker, &mut Env, u64, u64) -> Option<bool> + Send + Sync>;

/// One compiled handler: input patterns plus the composed step closure.
pub(crate) struct LoweredHandler {
    pub(crate) recursive: bool,
    pub(crate) nslots: usize,
    pub(crate) input_pats: Vec<Pattern>,
    pub(crate) run: Cont,
}

/// A checker plan compiled to closures.
pub(crate) struct LoweredChecker {
    pub(crate) rel: RelId,
    pub(crate) handlers: Vec<LoweredHandler>,
    pub(crate) has_recursive: bool,
    /// First-argument discrimination index ([`crate::index`]); `None`
    /// when every input pattern is flexible.
    pub(crate) index: Option<DispatchIndex>,
    /// The second lowering ([`crate::vm`]): the same plan as a flat
    /// bytecode program, when every construct compiled. `None` is the
    /// per-relation fallback — [`Library::with_vm`] sessions run this
    /// relation through the closure tree like everyone else.
    pub(crate) vm: Option<crate::vm::VmProgram>,
}

/// Compiles a checker plan. Must only be called on plans whose mode is
/// the all-input checker mode.
pub(crate) fn lower_checker(plan: &Plan) -> LoweredChecker {
    debug_assert!(plan.mode.is_checker());
    let handlers: Vec<LoweredHandler> = plan
        .handlers
        .iter()
        .enumerate()
        .map(|(i, h)| LoweredHandler {
            recursive: h.recursive,
            nslots: h.nslots,
            input_pats: h.input_pats.clone(),
            run: lower_steps(&h.steps, 0, i as u32),
        })
        .collect();
    let rows: Vec<&[Pattern]> = handlers.iter().map(|h| h.input_pats.as_slice()).collect();
    let index = DispatchIndex::build(&rows);
    // The bytecode compiler sees the index so it can elide head guards
    // that indexed dispatch already proves can never fail.
    let vm = crate::vm::compile_vm(plan, index.as_ref());
    LoweredChecker {
        rel: plan.rel,
        handlers,
        has_recursive: plan.has_recursive_handlers(),
        index,
        vm,
    }
}

/// Folds `steps[idx..]` into one continuation closure. `rule` is the
/// handler's index, baked in for probe events.
fn lower_steps(steps: &[Step], idx: usize, rule: u32) -> Cont {
    let Some(step) = steps.get(idx) else {
        return Arc::new(|_, _, _, _, _| Some(true));
    };
    let rest = lower_steps(steps, idx + 1, rule);
    let site = FailSite::Step(idx as u32);
    let step_idx = idx as u32;
    match step.clone() {
        Step::EqCheck { lhs, rhs, negated } => Arc::new(move |lib, low, env, size_rem, top| {
            let u = lib.universe();
            let l = lhs.eval(env, u).expect("plan invariant: lhs instantiated");
            let r = rhs.eval(env, u).expect("plan invariant: rhs instantiated");
            if (l == r) == negated {
                lib.probe(|| Event::UnifyFail {
                    rel: low.rel,
                    rule,
                    site,
                });
                return Some(false);
            }
            rest(lib, low, env, size_rem, top)
        }),
        Step::EqBind { var, expr } => Arc::new(move |lib, low, env, size_rem, top| {
            let v = expr
                .eval(env, lib.universe())
                .expect("plan invariant: expr instantiated");
            env.bind(var, v);
            rest(lib, low, env, size_rem, top)
        }),
        Step::MatchExpr { scrutinee, pattern } => Arc::new(move |lib, low, env, size_rem, top| {
            let v = scrutinee
                .eval(env, lib.universe())
                .expect("plan invariant: scrutinee instantiated");
            if pattern.matches(&v, env) {
                rest(lib, low, env, size_rem, top)
            } else {
                lib.probe(|| Event::UnifyFail {
                    rel: low.rel,
                    rule,
                    site,
                });
                Some(false)
            }
        }),
        Step::CheckRel { rel, args, negated } => Arc::new(move |lib, low, env, size_rem, top| {
            let vals = lib.eval_into(&args, env);
            // Premise cost attribution (Event::Premise): the search-call
            // delta across the premise, gated on arming so the unarmed
            // cost is one Cell load per premise.
            let calls_before = lib.probe_armed().then(|| lib.inner.search_calls.get());
            let mut r = lib.check(rel, top, top, &vals);
            lib.put_args(vals);
            if negated {
                r = cnot(r);
            }
            if let Some(before) = calls_before {
                let cost = lib.inner.search_calls.get() - before;
                lib.probe(|| Event::Premise {
                    rel: low.rel,
                    rule,
                    step: step_idx,
                    cost,
                    failed: r == Some(false),
                });
            }
            match r {
                Some(true) => rest(lib, low, env, size_rem, top),
                other => other,
            }
        }),
        Step::RecCheck { args } => Arc::new(move |lib, low, env, size_rem, top| {
            let vals = lib.eval_into(&args, env);
            let calls_before = lib.probe_armed().then(|| lib.inner.search_calls.get());
            let r = lib.run_lowered_rec(low, size_rem, top, &vals);
            lib.put_args(vals);
            if let Some(before) = calls_before {
                let cost = lib.inner.search_calls.get() - before;
                lib.probe(|| Event::Premise {
                    rel: low.rel,
                    rule,
                    step: step_idx,
                    cost,
                    failed: r == Some(false),
                });
            }
            match r {
                Some(true) => rest(lib, low, env, size_rem, top),
                other => other,
            }
        }),
        Step::ProduceExt {
            rel,
            mode,
            in_args,
            out_slots,
        } => Arc::new(move |lib, low, env, size_rem, top| {
            let in_vals = lib.eval_into(&in_args, env);
            // For producer premises the streams are lazy, so the cost
            // delta necessarily covers the premise *and* its
            // continuation under the binder — the scheduling-relevant
            // tail cost of placing the premise here.
            let calls_before = lib.probe_armed().then(|| lib.inner.search_calls.get());
            let stream = lib.enumerate(rel, &mode, top, top, &in_vals);
            lib.put_args(in_vals);
            let r = bind_ec(stream, |outs| {
                let mut env2 = env.clone();
                for (slot, v) in out_slots.iter().zip(outs) {
                    env2.bind(*slot, v);
                }
                rest(lib, low, &mut env2, size_rem, top)
            });
            if let Some(before) = calls_before {
                let cost = lib.inner.search_calls.get() - before;
                lib.probe(|| Event::Premise {
                    rel: low.rel,
                    rule,
                    step: step_idx,
                    cost,
                    failed: r == Some(false),
                });
            }
            r
        }),
        Step::ProduceRec { .. } => {
            unreachable!("checker plans never contain ProduceRec")
        }
        Step::Unconstrained { var, ty } => Arc::new(move |lib, low, env, size_rem, top| {
            let candidates = lib.raw_values(&ty, top);
            let truncated = lib.raw_truncated(&ty, top);
            let calls_before = lib.probe_armed().then(|| lib.inner.search_calls.get());
            let values = (0..candidates.len())
                .map(|i| Outcome::Val(candidates[i].clone()))
                .chain(truncated.then_some(Outcome::OutOfFuel));
            let r = bind_ec(EStream::from_outcomes(values.collect::<Vec<_>>()), |v| {
                let mut env2 = env.clone();
                env2.bind(var, v);
                rest(lib, low, &mut env2, size_rem, top)
            });
            if let Some(before) = calls_before {
                let cost = lib.inner.search_calls.get() - before;
                lib.probe(|| Event::Premise {
                    rel: low.rel,
                    rule,
                    step: step_idx,
                    cost,
                    failed: r == Some(false),
                });
            }
            r
        }),
    }
}

/// Allocation-free candidate iteration: an index bucket when one
/// exists, every handler otherwise.
enum Dispatch<'a> {
    Indexed(std::slice::Iter<'a, u32>),
    Linear(std::ops::Range<u32>),
}

impl Iterator for Dispatch<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            Dispatch::Indexed(it) => it.next().copied(),
            Dispatch::Linear(r) => r.next(),
        }
    }
}

impl Library {
    /// Runs a lowered checker at an *entry boundary* — a top-level
    /// [`Library::check`] or an external `CheckRel` premise — mirroring
    /// `run_plan_check`'s fuel discipline exactly, with the memo table
    /// consulted on the way in. Recursive self-calls go through
    /// [`Library::run_lowered_rec`] instead and skip the table: they
    /// descend into strict subterms of a tuple that already missed
    /// here, so per-level lookups would tax every recursion of a
    /// miss-heavy workload for reuse that entry-level hits capture
    /// anyway (measured: per-level tabling cost 3–5× overhead on
    /// distinct-input sweeps and bought no additional hits).
    ///
    /// The interpreter stays unindexed and unmemoized on purpose: it is
    /// the differential baseline the `interp_vs_lowered` and
    /// `memo_vs_plain` oracles compare against.
    pub(crate) fn run_lowered_check(
        &self,
        low: &LoweredChecker,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        // Budget charge: one step per checker recursion, one backtrack
        // per abandoned handler (no-ops when no meter is armed). A memo
        // hit still pays this step — the table accelerates the search,
        // it does not make work free.
        if !self.charge_step() {
            return None;
        }
        // Serving sessions consult the process-wide concurrent table
        // (crate::serve) first: monotone verdicts cached by any session
        // over the same frozen core answer this one too. Ordinary
        // sessions pay one `RefCell` borrow + `Option` check here.
        let shared = self.inner.shared_memo.borrow().clone();
        if let Some(sm) = shared {
            // The fingerprint comes from this session's interner —
            // structural, so identical across sessions — and doubles as
            // the shard key.
            let fp = self.inner.memo.borrow_mut().query_fp(low.rel, args);
            if let Some(verdict) = sm.lookup(low.rel, fp, args, size, top) {
                self.inner.shared_hits.set(self.inner.shared_hits.get() + 1);
                self.probe(|| Event::MemoHit { rel: low.rel });
                return Some(verdict);
            }
            self.inner
                .shared_misses
                .set(self.inner.shared_misses.get() + 1);
            self.probe(|| Event::MemoMiss { rel: low.rel });
            let calls_before = self.inner.search_calls.get();
            let result = self.run_lowered_memo_or_search(low, size, top, args);
            match result {
                // Same write guards as the local table below: no `None`,
                // no poisoned-meter fabrications, no trivial verdicts.
                Some(verdict) => {
                    let cost = self.inner.search_calls.get() - calls_before;
                    if cost >= crate::memo::MIN_SEARCH_COST && self.meter_intact() {
                        sm.insert(low.rel, fp, args, size, top, verdict);
                    }
                }
                None => sm.note_none_skipped(),
            }
            return result;
        }
        self.run_lowered_memo_or_search(low, size, top, args)
    }

    /// The local-table half of an entry boundary: the session memo
    /// lookup (when enabled) wrapped around the search. Split from
    /// [`Library::run_lowered_check`] so serving sessions can layer the
    /// concurrent table on top.
    fn run_lowered_memo_or_search(
        &self,
        low: &LoweredChecker,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        // Tabling (crate::memo): decided verdicts are monotone in both
        // fuels, so an entry decided at dominated fuels answers this
        // call outright. The borrow must end before the search below —
        // recursive calls re-enter this table.
        if !self.inner.memo_enabled.get() {
            return self.run_lowered_search(low, size, top, args);
        }
        let fp = match self
            .inner
            .memo
            .borrow_mut()
            .lookup(low.rel, args, size, top)
        {
            Lookup::Hit(verdict) => {
                self.probe(|| Event::MemoHit { rel: low.rel });
                return Some(verdict);
            }
            Lookup::Miss(fp) => {
                self.probe(|| Event::MemoMiss { rel: low.rel });
                fp
            }
        };
        let calls_before = self.inner.search_calls.get();
        let result = self.run_lowered_search(low, size, top, args);
        match result {
            // Never cache under an exhausted meter: past that point
            // inner searches return early and verdicts can be
            // fabricated (the `try_*` entry points mask them with an
            // error). Exhaustion is sticky, so checking now covers the
            // whole search above. The cost gate keeps leaf goals —
            // cheaper to re-derive than to cache — out of the table.
            Some(verdict) => {
                let cost = self.inner.search_calls.get() - calls_before;
                if cost >= crate::memo::MIN_SEARCH_COST && self.meter_intact() {
                    self.inner
                        .memo
                        .borrow_mut()
                        .insert(low.rel, fp, args, size, top, verdict);
                }
            }
            // The monotonicity boundary: `None` is not a verdict, a
            // larger fuel may still decide it. Never cached.
            None => self.inner.memo.borrow_mut().note_none_skipped(),
        }
        result
    }

    /// A recursive self-call of a lowered checker: the same budget
    /// charge as an entry, no table. See [`Library::run_lowered_check`]
    /// for why recursion bypasses the memo layer.
    pub(crate) fn run_lowered_rec(
        &self,
        low: &LoweredChecker,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        if !self.charge_step() {
            return None;
        }
        self.run_lowered_search(low, size, top, args)
    }

    /// The search body of [`Library::run_lowered_check`]: rule dispatch
    /// and the fuel discipline, without budget entry or tabling.
    fn run_lowered_search(
        &self,
        low: &LoweredChecker,
        size: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        // Bytecode routing: sessions that opted in via
        // `Library::with_vm` run compiled relations through the
        // register VM (crate::vm). Placing the switch here — below the
        // budget/memo entry boundaries, above rule dispatch — is what
        // makes tabling, the shared serving table, and the `try_*`
        // budget discipline backend-agnostic for free.
        if self.inner.vm_enabled.get() {
            if let Some(prog) = &low.vm {
                return self.run_vm_search(low, prog, size, top, args);
            }
        }
        // Feeds the memo layer's cost gate; one `Cell` bump.
        self.inner
            .search_calls
            .set(self.inner.search_calls.get() + 1);
        let _depth = self.probe_enter(low.rel, ExecKind::Checker);
        let mut needs_fuel = false;
        let size_rem = size.saturating_sub(1);
        // Constructor-indexed dispatch (crate::index): jump straight to
        // the handlers whose input patterns can match the scrutinee's
        // head. Pruned handlers would have failed their input match
        // conclusively (`Some(false)`), so the verdict — including the
        // `needs_fuel` bookkeeping — is identical to linear dispatch.
        let candidates = match &low.index {
            Some(index) => {
                let bucket = index.candidates(args);
                let skipped = index.total() - bucket.len() as u32;
                if skipped > 0 {
                    self.probe(|| Event::IndexSkip {
                        rel: low.rel,
                        skipped,
                    });
                }
                Dispatch::Indexed(bucket.iter())
            }
            None => Dispatch::Linear(0..low.handlers.len() as u32),
        };
        for i in candidates {
            let h = &low.handlers[i as usize];
            if size == 0 && h.recursive {
                continue;
            }
            self.probe(|| Event::RuleAttempt {
                rel: low.rel,
                rule: i,
            });
            match self.lowered_handler(low, h, i, size_rem, top, args) {
                Some(true) => {
                    self.probe(|| Event::RuleSuccess {
                        rel: low.rel,
                        rule: i,
                    });
                    return Some(true);
                }
                Some(false) => {}
                None => needs_fuel = true,
            }
            // Anything but a conclusive yes abandons this handler for
            // the next alternative — the same notion the meter charges.
            self.probe(|| Event::Backtrack {
                rel: low.rel,
                rule: i,
            });
            if !self.charge_backtrack() {
                return None;
            }
        }
        if needs_fuel || (size == 0 && low.has_recursive) {
            None
        } else {
            Some(false)
        }
    }

    fn lowered_handler(
        &self,
        low: &LoweredChecker,
        h: &LoweredHandler,
        h_idx: u32,
        size_rem: u64,
        top: u64,
        args: &[Value],
    ) -> Option<bool> {
        let mut env = self.take_env(h.nslots);
        debug_assert_eq!(h.input_pats.len(), args.len());
        for (pat, val) in h.input_pats.iter().zip(args) {
            if !pat.matches(val, &mut env) {
                self.put_env(env);
                self.probe(|| Event::UnifyFail {
                    rel: low.rel,
                    rule: h_idx,
                    site: FailSite::Inputs,
                });
                return Some(false);
            }
        }
        let r = (h.run)(self, low, &mut env, size_rem, top);
        self.put_env(env);
        r
    }
}

#[cfg(test)]
mod tests {
    use crate::library::LibraryBuilder;
    use crate::mode::Mode;
    use indrel_rel::parse::parse_program;
    use indrel_rel::RelEnv;
    use indrel_term::Universe;

    #[test]
    fn lowered_and_interpreted_checkers_agree() {
        let mut u = Universe::new();
        u.std_funs();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel le : nat nat :=
            | le_n : forall n, le n n
            | le_S : forall n m, le n m -> le n (S m)
            .
            rel between : nat nat :=
            | b : forall n m p, le n m -> le (S m) p -> between n p
            .
            rel square_of : nat nat :=
            | sq : forall n, square_of n (mult n n)
            .
            ",
        )
        .unwrap();
        let rels: Vec<_> = ["le", "between", "square_of"]
            .iter()
            .map(|n| env.rel_id(n).unwrap())
            .collect();
        let mut b = LibraryBuilder::new(u.clone(), env.clone());
        for &r in &rels {
            b.derive_checker(r).unwrap();
        }
        let lib = b.build();
        for &r in &rels {
            let tys = env.relation(r).arg_types().to_vec();
            for args in indrel_term::enumerate::tuples_up_to(&u, &tys, 5) {
                for fuel in 0..10u64 {
                    assert_eq!(
                        lib.check(r, fuel, fuel, &args),
                        lib.check_interpreted(r, fuel, fuel, &args),
                        "{} {:?} fuel {}",
                        env.relation(r).name(),
                        args,
                        fuel
                    );
                }
            }
        }
    }

    #[test]
    fn lowered_checker_supports_producer_calls() {
        // `between` routes its existential through an enumerator — the
        // ProduceExt closure path.
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel le : nat nat :=
            | le_n : forall n, le n n
            | le_S : forall n m, le n m -> le n (S m)
            .
            rel between : nat nat :=
            | b : forall n m p, le n m -> le (S m) p -> between n p
            .
            ",
        )
        .unwrap();
        let between = env.rel_id("between").unwrap();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(between).unwrap();
        let lib = b.build();
        assert_eq!(
            lib.check(
                between,
                8,
                8,
                &[indrel_term::Value::nat(1), indrel_term::Value::nat(3)]
            ),
            Some(true)
        );
        let _ = Mode::checker(2);
    }
}
