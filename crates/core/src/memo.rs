//! Tabling for derived checkers, justified by monotonicity (§5).
//!
//! The paper's validation theorems make a derived checker *monotone in
//! fuel*: once `check` decides `Some b` at some fuel, every larger fuel
//! returns the same `Some b`. The executor threads two fuels — `size`
//! (the structurally decreasing recursion fuel) and `top_size` (handed
//! to external calls as both parameters) — and the decision is monotone
//! in each: more `size` admits more rules and deeper recursion, more
//! `top_size` grows every externally enumerated domain (with honest
//! out-of-fuel markers) and every external sub-verdict, and `cnot` maps
//! a decided verdict to a decided verdict. A verdict decided at
//! `(size, top)` therefore holds at every `(size', top')` with
//! `size' ≥ size` and `top' ≥ top`, which is exactly the hit rule the
//! `MemoTable` applies. Because relations are frozen at
//! [`build`](crate::LibraryBuilder::build) time, entries never need
//! invalidating.
//!
//! What is deliberately **not** cached:
//!
//! * `None` (out of fuel) — not monotone: a larger fuel may decide it.
//!   Caching it would freeze a transient state into an answer.
//! * Verdicts computed after an armed [`Meter`] was exhausted — a
//!   poisoned meter makes inner searches return early, so verdicts
//!   observed in that window can be fabricated. The `try_*` entry
//!   points mask them with an error; the table must not outlive them.
//!   (Exhaustion is sticky, so a write-time check suffices.)
//! * Verdicts whose search cost fewer than `MIN_SEARCH_COST` checker
//!   recursions — a leaf goal re-derives faster than the table answers,
//!   so caching it only pays the lookup twice.
//! * Handwritten checkers — the monotonicity argument only covers
//!   derived plans, so [`exec`](crate::exec) consults the table from
//!   the lowered checker path alone.
//! * Recursive self-calls — the table is consulted at *entry
//!   boundaries* only (top-level `check` and external `CheckRel`
//!   premises). Recursion descends into strict subterms of a tuple that
//!   already missed, so per-level lookups would charge every recursion
//!   of a miss-heavy workload for reuse the entry-level hits already
//!   capture across a corpus (see `run_lowered_check`).
//!
//! The hot path is allocation-free: a lookup reduces the argument tuple
//! to a 64-bit structural fingerprint via [`Interner::fingerprint`]
//! (O(1) per already-seen subtree, since fingerprints hash-cons by
//! `Arc` identity), and a miss hands back only that `u64`. Argument
//! tuples are copied (cheap `Arc` clones) into a boxed slot only when a
//! verdict is actually admitted, which the cost gate makes rare. Fingerprint collisions are
//! harmless: every candidate slot is confirmed structurally before it
//! may answer.
//!
//! The memory bound is a fixed entry cap (default [`DEFAULT_CAPACITY`],
//! shared with the interner's node cap): when full the table stops
//! admitting — deterministically, with no eviction — and keeps serving
//! hits from what it has.
//!
//! [`Meter`]: indrel_producers::Meter

use indrel_term::{FastHashBuilder, Interner, RelId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Default bound on cached verdicts and interned nodes per session.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Minimum number of checker recursions a search must have cost for its
/// verdict to be worth a table entry. Below this, re-running the search
/// is cheaper than the insert-plus-future-lookup it would buy: a cost-1
/// search is a single rule match, already in the same ballpark as a
/// table probe.
pub(crate) const MIN_SEARCH_COST: u64 = 2;

/// `true` when the stored canonical tuple and a probe tuple denote the
/// same arguments. Scalars compare by value; constructor terms take the
/// `Arc`-identity fast path (canonical vs previously interned probes)
/// and fall back to the iterative structural walk. Shared with the
/// concurrent table ([`crate::serve`]), which confirms candidates the
/// same way.
pub(crate) fn args_match(stored: &[Value], probe: &[Value]) -> bool {
    stored.len() == probe.len()
        && stored.iter().zip(probe).all(|(a, b)| match (a, b) {
            (Value::Nat(x), Value::Nat(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Ctor(_, x), Value::Ctor(_, y)) => Arc::ptr_eq(x, y) || a.structurally_equal(b),
            _ => false,
        })
}

/// One cached verdict: the relation, the canonicalized argument tuple
/// that confirms fingerprint matches, and the smallest fuels the
/// verdict is known at.
struct Slot {
    rel: RelId,
    args: Box<[Value]>,
    size: u64,
    top: u64,
    verdict: bool,
}

/// The result of a table lookup: either a verdict valid at the queried
/// fuels, or the tuple's fingerprint to insert under after the search.
pub(crate) enum Lookup {
    Hit(bool),
    Miss(u64),
}

/// Counters exposed by [`Library::memo_stats`](crate::Library::memo_stats)
/// and [`serve::SharedMemo::stats`](crate::serve::SharedMemo::stats).
///
/// The last three counters are serving-layer telemetry: they stay zero
/// for the per-session table and are populated by the concurrent table
/// and request layer of [`crate::serve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to the search.
    pub misses: u64,
    /// Decided verdicts written (first writes and dominance updates).
    pub insertions: u64,
    /// `None` verdicts that reached the write site and were refused —
    /// the monotonicity boundary in action.
    pub none_skipped: u64,
    /// Decided verdicts refused because the table was full.
    pub full_skipped: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Shards of the concurrent table retired after a writer panic;
    /// queries routed to them fall back to the unmemoized search.
    pub degraded_shards: u64,
    /// Requests rejected by admission control
    /// ([`ExecError::Overloaded`](crate::ExecError::Overloaded)).
    pub shed: u64,
    /// Budget-exhausted requests retried with an escalated budget.
    pub retries: u64,
}

impl MemoStats {
    /// The counters as one JSON object with deterministically sorted
    /// keys, matching the [`SearchStats`](indrel_producers::SearchStats)
    /// / [`Budget`](indrel_producers::Budget) reporting idiom: no
    /// timestamps, byte-identical across identical runs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"degraded_shards\":{},\"entries\":{},\"full_skipped\":{},\"hits\":{},\
             \"insertions\":{},\"misses\":{},\"none_skipped\":{},\"retries\":{},\"shed\":{}}}",
            self.degraded_shards,
            self.entries,
            self.full_skipped,
            self.hits,
            self.insertions,
            self.misses,
            self.none_skipped,
            self.retries,
            self.shed,
        )
    }
}

impl std::fmt::Display for MemoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses, {} insertions ({} entries; skipped {} none, {} full)",
            self.hits,
            self.misses,
            self.insertions,
            self.entries,
            self.none_skipped,
            self.full_skipped,
        )?;
        if self.degraded_shards > 0 || self.shed > 0 || self.retries > 0 {
            write!(
                f,
                "; serving: {} degraded shard(s), {} shed, {} retries",
                self.degraded_shards, self.shed, self.retries,
            )?;
        }
        Ok(())
    }
}

/// The per-session verdict table. See the module docs for the
/// soundness argument and the bounds.
pub(crate) struct MemoTable {
    interner: Interner,
    /// Fingerprint → slots sharing it (almost always exactly one).
    buckets: HashMap<u64, Vec<Slot>, FastHashBuilder>,
    entries: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    none_skipped: u64,
    full_skipped: u64,
}

impl Default for MemoTable {
    fn default() -> MemoTable {
        MemoTable::with_capacity(DEFAULT_CAPACITY)
    }
}

impl MemoTable {
    /// An empty table admitting at most `max_entries` verdicts (and as
    /// many interned nodes).
    pub(crate) fn with_capacity(max_entries: usize) -> MemoTable {
        MemoTable {
            interner: Interner::new(max_entries),
            buckets: HashMap::default(),
            entries: 0,
            capacity: max_entries,
            hits: 0,
            misses: 0,
            insertions: 0,
            none_skipped: 0,
            full_skipped: 0,
        }
    }

    /// Fingerprint of a `(rel, args)` query, folding each argument's
    /// structural fingerprint into the relation's. Fingerprints are
    /// *structural* — independent of which session's interner computed
    /// them — so they double as the shard keys of the concurrent table
    /// ([`crate::serve`]).
    pub(crate) fn query_fp(&mut self, rel: RelId, args: &[Value]) -> u64 {
        let mut h = 0x243F_6A88_85A3_08D3u64 ^ (rel.index() as u64);
        for a in args {
            h = (h.rotate_left(5) ^ self.interner.fingerprint(a))
                .wrapping_mul(0x517C_C1B7_2722_0A95);
        }
        h
    }

    /// Looks up `(rel, args)` for a query at fuels `(size, top)`. An
    /// entry answers the query iff it stores the same tuple (confirmed
    /// structurally) and was decided at fuels the query dominates
    /// (`size ≥ slot.size && top ≥ slot.top`).
    pub(crate) fn lookup(&mut self, rel: RelId, args: &[Value], size: u64, top: u64) -> Lookup {
        let fp = self.query_fp(rel, args);
        if let Some(bucket) = self.buckets.get(&fp) {
            for slot in bucket {
                if slot.rel == rel && args_match(&slot.args, args) {
                    if size >= slot.size && top >= slot.top {
                        self.hits += 1;
                        return Lookup::Hit(slot.verdict);
                    }
                    break;
                }
            }
        }
        self.misses += 1;
        Lookup::Miss(fp)
    }

    /// Records a decided verdict observed at fuels `(size, top)`, under
    /// the fingerprint the lookup returned. `verdict` must be the
    /// checker's true verdict at those fuels — the caller guards
    /// against poisoned-meter fabrications and gates on search cost.
    pub(crate) fn insert(
        &mut self,
        rel: RelId,
        fp: u64,
        args: &[Value],
        size: u64,
        top: u64,
        verdict: bool,
    ) {
        if let Some(bucket) = self.buckets.get_mut(&fp) {
            for slot in bucket.iter_mut() {
                if slot.rel == rel && args_match(&slot.args, args) {
                    // Keep whichever fuels dominate (serve more
                    // queries). Incomparable fuels keep the existing
                    // slot; both verdicts are correct wherever they
                    // apply, per joint monotonicity.
                    if size <= slot.size && top <= slot.top {
                        slot.size = size;
                        slot.top = top;
                        slot.verdict = verdict;
                        self.insertions += 1;
                    }
                    return;
                }
            }
        }
        if self.entries < self.capacity {
            // The only allocating path: one box of `Arc` clones, when a
            // verdict is actually admitted.
            self.buckets.entry(fp).or_default().push(Slot {
                rel,
                args: args.to_vec().into_boxed_slice(),
                size,
                top,
                verdict,
            });
            self.entries += 1;
            self.insertions += 1;
        } else {
            self.full_skipped += 1;
        }
    }

    /// Counts a `None` verdict refused at the write site.
    pub(crate) fn note_none_skipped(&mut self) {
        self.none_skipped += 1;
    }

    /// Snapshot of the counters. The serving-layer counters are always
    /// zero here: a per-session table has no shards to degrade and no
    /// admission control.
    pub(crate) fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            none_skipped: self.none_skipped,
            full_skipped: self.full_skipped,
            entries: self.entries,
            degraded_shards: 0,
            shed: 0,
            retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_term::CtorId;

    fn rel() -> RelId {
        RelId::new(0)
    }

    fn tree(n: u64) -> Value {
        Value::ctor(CtorId::new(1), vec![Value::nat(n)])
    }

    fn miss_fp(t: &mut MemoTable, rel: RelId, args: &[Value], size: u64, top: u64) -> u64 {
        match t.lookup(rel, args, size, top) {
            Lookup::Miss(fp) => fp,
            Lookup::Hit(_) => panic!("expected a miss"),
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = MemoTable::with_capacity(16);
        let args = [tree(3), Value::nat(7)];
        let fp = miss_fp(&mut t, rel(), &args, 5, 5);
        t.insert(rel(), fp, &args, 5, 5, true);
        // Same fuels, structurally equal but physically fresh args.
        let again = [tree(3), Value::nat(7)];
        assert!(matches!(t.lookup(rel(), &again, 5, 5), Lookup::Hit(true)));
        // Higher fuels dominate the entry: still a hit.
        assert!(matches!(t.lookup(rel(), &again, 9, 6), Lookup::Hit(true)));
        // Lower size: the entry does not answer.
        assert!(matches!(t.lookup(rel(), &again, 4, 5), Lookup::Miss(_)));
        // Lower top: likewise.
        assert!(matches!(t.lookup(rel(), &again, 5, 4), Lookup::Miss(_)));
        assert_eq!(t.stats().hits, 2);
        assert_eq!(t.stats().misses, 3);
    }

    #[test]
    fn dominating_insert_widens_the_entry() {
        let mut t = MemoTable::with_capacity(16);
        let args = [tree(1)];
        let fp = miss_fp(&mut t, rel(), &args, 8, 8);
        t.insert(rel(), fp, &args, 8, 8, false);
        assert!(matches!(t.lookup(rel(), &args, 3, 3), Lookup::Miss(_)));
        t.insert(rel(), fp, &args, 3, 3, false);
        // The tighter fuels now answer everything above them.
        assert!(matches!(t.lookup(rel(), &args, 3, 3), Lookup::Hit(false)));
        assert!(matches!(t.lookup(rel(), &args, 8, 8), Lookup::Hit(false)));
        // One slot, updated in place.
        assert_eq!(t.stats().entries, 1);
        assert_eq!(t.stats().insertions, 2);
    }

    #[test]
    fn distinct_relations_do_not_collide() {
        let mut t = MemoTable::with_capacity(16);
        let args = [tree(2)];
        let fp = miss_fp(&mut t, RelId::new(0), &args, 5, 5);
        t.insert(RelId::new(0), fp, &args, 5, 5, true);
        assert!(matches!(
            t.lookup(RelId::new(1), &args, 5, 5),
            Lookup::Miss(_)
        ));
    }

    #[test]
    fn colliding_fingerprints_are_confirmed_structurally() {
        let mut t = MemoTable::with_capacity(16);
        let args = [tree(4)];
        let fp = miss_fp(&mut t, rel(), &args, 5, 5);
        // Force a structurally different tuple into the same bucket:
        // the original tuple must not be answered from that slot.
        let other = [tree(5)];
        t.insert(rel(), fp, &other, 5, 5, false);
        assert!(matches!(t.lookup(rel(), &args, 5, 5), Lookup::Miss(_)));
        // A second slot for the original tuple can share the bucket.
        t.insert(rel(), fp, &args, 5, 5, true);
        assert!(matches!(t.lookup(rel(), &args, 5, 5), Lookup::Hit(true)));
        assert_eq!(t.stats().entries, 2);
    }

    #[test]
    fn capacity_stops_admitting_deterministically() {
        let mut t = MemoTable::with_capacity(1);
        for n in 0..3 {
            let args = [tree(n)];
            if let Lookup::Miss(fp) = t.lookup(rel(), &args, 5, 5) {
                t.insert(rel(), fp, &args, 5, 5, true);
            }
        }
        let s = t.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.full_skipped, 2);
        // The admitted entry keeps answering.
        assert!(matches!(
            t.lookup(rel(), &[tree(0)], 5, 5),
            Lookup::Hit(true)
        ));
    }

    #[test]
    fn stats_json_keys_are_sorted_and_display_is_stable() {
        let mut t = MemoTable::with_capacity(4);
        let args = [tree(1)];
        let fp = miss_fp(&mut t, rel(), &args, 5, 5);
        t.insert(rel(), fp, &args, 5, 5, true);
        let s = t.stats();
        let j = s.to_json();
        let keys = [
            "degraded_shards",
            "entries",
            "full_skipped",
            "hits",
            "insertions",
            "misses",
            "none_skipped",
            "retries",
            "shed",
        ];
        let mut at = 0;
        for k in keys {
            let pos = j.find(&format!("\"{k}\":")).expect(k);
            assert!(pos >= at, "key {k} out of sorted order in {j}");
            at = pos;
        }
        assert_eq!(j, t.stats().to_json(), "snapshot must be deterministic");
        let d = s.to_string();
        assert!(d.contains("1 insertions"), "{d}");
        assert!(!d.contains("serving:"), "zero serve counters stay silent");
        let served = MemoStats {
            degraded_shards: 2,
            shed: 3,
            retries: 4,
            ..s
        };
        assert!(served
            .to_string()
            .contains("2 degraded shard(s), 3 shed, 4 retries"));
    }
}
