//! Property: **every schedule the planner emits is mode-admissible** —
//! however the cost model orders premises, no step of any compiled
//! checker plan consumes a variable before something bound it, and
//! every handler's outputs are fully known at the end
//! ([`check_plan_admissible`]).
//!
//! The fuzz loop generates small random specs from a fixed-seed
//! xorshift stream, derives their checkers, and re-checks the
//! invariant from the plan alone. A second loop re-derives each spec
//! under *synthetic cost profiles* ([`LibraryBuilder::set_profile`])
//! drawn from the same stream, forcing the greedy scheduler into
//! orders the static seeds would never pick. Specs the deriver
//! rejects are recorded as skips, never failures.

use indrel_core::compat::check_plan_admissible;
use indrel_core::{CostProfile, LibraryBuilder};
use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_term::Universe;

/// Deterministic xorshift64* stream — the whole test is a pure
/// function of `SEED`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[self.below(xs.len() as u64) as usize]
    }
}

const SEED: u64 = 0x1DEA5C0DE;
const CASES: usize = 120;
const PROFILES_PER_CASE: usize = 4;

/// One random spec: a fixed derivable base relation `r0` plus a
/// random target `r1` whose rules draw premises over both, with
/// argument shapes that exercise equality checks, constructor
/// patterns, and (sometimes) existential variables the compiler must
/// produce. Returns the DSL text and, per `r1` rule, its premise
/// count (for synthetic-profile generation).
fn random_spec(rng: &mut Rng) -> (String, Vec<u32>) {
    let mut s = String::from(
        "rel r0 : nat nat :=\n\
         | z : forall n, r0 n n\n\
         | s : forall n m, r0 n m -> r0 n (S m)\n\
         .\n\
         rel r1 : nat nat :=\n",
    );
    let n_rules = 1 + rng.below(2);
    let mut premises_per_rule = Vec::new();
    for rule in 0..n_rules {
        let n_premises = 1 + rng.below(3);
        // `k` is existential: it appears in no conclusion, so checker
        // mode must schedule a producing step for it before any
        // premise that consumes it.
        let use_k = rng.below(3) == 0;
        let vars = if use_k { "n m k" } else { "n m" };
        let mut prems = Vec::new();
        for _ in 0..n_premises {
            let rel = if rng.below(4) == 0 { "r1" } else { "r0" };
            let var_pool: &[&str] = if use_k {
                &["n", "m", "k", "0"]
            } else {
                &["n", "m", "0"]
            };
            let a = rng.pick(var_pool);
            let b = rng.pick(var_pool);
            let a = match rng.below(3) {
                0 => format!("(S {a})"),
                _ => a.to_string(),
            };
            prems.push(format!("{rel} {a} {b}"));
        }
        let c1 = rng.pick(&["n", "(S n)"]);
        let c2 = rng.pick(&["m", "(S m)", "0"]);
        s.push_str(&format!(
            "| q{rule} : forall {vars}, {} -> r1 {c1} {c2}\n",
            prems.join(" -> ")
        ));
        premises_per_rule.push(prems.len() as u32);
    }
    s.push_str(".\n");
    (s, premises_per_rule)
}

/// Asserts the admissibility invariant on every compiled checker plan
/// in the builder.
fn assert_all_admissible(b: &LibraryBuilder, spec: &str, tag: &str) {
    let rels: Vec<_> = b.env().iter().map(|(rel, _)| rel).collect();
    for rel in rels {
        if let Some(plan) = b.checker_plan(rel) {
            if let Err(e) = check_plan_admissible(plan) {
                panic!(
                    "{tag}: inadmissible schedule for {}: {e}\nspec:\n{spec}",
                    b.env().relation(rel).name()
                );
            }
        }
    }
}

#[test]
fn every_planner_schedule_is_mode_admissible() {
    let mut rng = Rng(SEED);
    let mut derived = 0usize;
    let mut skipped = 0usize;
    for _ in 0..CASES {
        let (spec, premises_per_rule) = random_spec(&mut rng);
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, &spec)
            .unwrap_or_else(|e| panic!("generated spec must parse: {e}\n{spec}"));
        let r1 = env.rel_id("r1").unwrap();
        let r1_idx = r1.index() as u32;

        // Static seeds first.
        let mut b = LibraryBuilder::new(u.clone(), env.clone());
        if b.derive_checker(r1).is_err() {
            // Outside the derivable class (e.g. an existential the
            // compiler cannot produce) — a skip, not a failure.
            skipped += 1;
            continue;
        }
        derived += 1;
        assert_all_admissible(&b, &spec, "static");

        // Then under synthetic profiles chosen to shuffle the greedy
        // order: random mean costs and failure rates per premise.
        for _ in 0..PROFILES_PER_CASE {
            let mut profile = CostProfile::new();
            for (rule, &n_premises) in premises_per_rule.iter().enumerate() {
                for premise in 0..n_premises {
                    let evals = 1000;
                    let mean = 1 + rng.below(64);
                    let fails = rng.below(1001);
                    profile.record(r1_idx, rule as u32, premise, evals, mean * evals, fails);
                }
            }
            let mut b = LibraryBuilder::new(u.clone(), env.clone());
            b.set_profile(profile);
            b.derive_checker(r1)
                .expect("profile must not change derivability");
            assert_all_admissible(&b, &spec, "profiled");
        }
    }
    // The generator must actually exercise the deriver: most specs
    // stay inside the derivable class.
    assert!(
        derived >= CASES / 2,
        "generator drifted out of the derivable class: {derived} derived, {skipped} skipped"
    );
}
