//! Deterministic fuzzing campaign over the derivation pipeline.
//!
//! ```text
//! fuzz_pipeline --seed 0 --cases 500 --max-size 6 --json
//! ```
//!
//! Each case draws an independent RNG stream from the root seed
//! (`seed_from_u64_stream(seed, case)`), generates one spec, and runs
//! the full differential oracle bank on it. Violations are minimized
//! with the greedy shrinker and written to the artifact directory as
//! plain DSL text (`min_case<N>_<oracle>.dsl`).
//!
//! With `--json`, stdout carries exactly one `indrel.fuzz/1` document;
//! two runs at the same seed are byte-identical (wall-clock throughput
//! is opt-in via `--throughput`, which taints comparability on
//! purpose). The human summary goes to stderr either way. Exit code is
//! 1 iff any oracle was violated.

use indrel_fuzz::oracles::{Oracle, OracleOutcome, OracleParams};
use indrel_fuzz::shrink::shrink_spec;
use indrel_fuzz::{gen_spec, run_dsl_with, SpecFeatures};
use indrel_producers::json_escape;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Config {
    seed: u64,
    cases: u64,
    max_size: u64,
    json: bool,
    throughput: bool,
    progress: bool,
    artifacts: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        seed: 0,
        cases: 500,
        max_size: 6,
        json: false,
        throughput: false,
        progress: false,
        artifacts: "target/fuzz-artifacts".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seed" => cfg.seed = num(&value("--seed")?)?,
            "--cases" => cfg.cases = num(&value("--cases")?)?,
            "--max-size" => cfg.max_size = num(&value("--max-size")?)?,
            "--artifacts" => cfg.artifacts = value("--artifacts")?,
            "--json" => cfg.json = true,
            "--throughput" => cfg.throughput = true,
            "--progress" => cfg.progress = true,
            "--help" | "-h" => {
                return Err(
                    "usage: fuzz_pipeline [--seed N] [--cases N] [--max-size N] \
                            [--artifacts DIR] [--json] [--throughput]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

/// One minimized violation, ready for reporting and artifact emission.
struct ViolationRecord {
    case: u64,
    oracle: Oracle,
    detail: String,
    minimized: String,
    shrink_steps: usize,
    shrink_attempts: usize,
}

#[derive(Default)]
struct FeatureHistogram {
    mutual: u64,
    nonlinear: u64,
    funcall: u64,
    existential: u64,
    negation: u64,
    equality: u64,
    multi_rel: u64,
    with_adts: u64,
}

impl FeatureHistogram {
    fn record(&mut self, f: &SpecFeatures) {
        self.mutual += u64::from(f.mutual);
        self.nonlinear += u64::from(f.nonlinear);
        self.funcall += u64::from(f.funcall);
        self.existential += u64::from(f.existential);
        self.negation += u64::from(f.negation);
        self.equality += u64::from(f.equality);
        self.multi_rel += u64::from(f.relations > 1);
        self.with_adts += u64::from(f.datatypes > 0);
    }

    fn pairs(&self) -> [(&'static str, u64); 8] {
        [
            ("mutual", self.mutual),
            ("nonlinear", self.nonlinear),
            ("funcall", self.funcall),
            ("existential", self.existential),
            ("negation", self.negation),
            ("equality", self.equality),
            ("multi_rel", self.multi_rel),
            ("with_adts", self.with_adts),
        ]
    }
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let params = OracleParams::default();
    let mut histogram = FeatureHistogram::default();
    let mut pass = vec![0u64; Oracle::ALL.len()];
    let mut skip = vec![0u64; Oracle::ALL.len()];
    let mut violated = vec![0u64; Oracle::ALL.len()];
    let mut violations: Vec<ViolationRecord> = Vec::new();
    let mut skip_reasons: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let start = Instant::now();

    for case in 0..cfg.cases {
        let mut rng = SmallRng::seed_from_u64_stream(cfg.seed, case);
        let spec = gen_spec(&mut rng, cfg.max_size);
        if cfg.progress {
            eprintln!("case {case}:\n{}", spec.emit());
        }
        let report = run_dsl_with(&spec.emit(), &params);
        histogram.record(&report.features);
        let mut case_skip_reason: Option<&str> = None;
        for (i, (_, outcome)) in report.outcomes.iter().enumerate() {
            match outcome {
                OracleOutcome::Pass => pass[i] += 1,
                OracleOutcome::Skip(reason) => {
                    skip[i] += 1;
                    case_skip_reason.get_or_insert(reason);
                }
                OracleOutcome::Violation(_) => violated[i] += 1,
            }
        }
        if let Some(reason) = case_skip_reason {
            // Coarse bucket: strip everything after the first `:` so
            // e.g. all `InstanceCycle` skips land in one row.
            let bucket = reason.split(':').nth(1).unwrap_or(reason).trim();
            *skip_reasons.entry(bucket.to_string()).or_insert(0) += 1;
        }
        if let Some((oracle, detail)) = report.violation() {
            let detail = detail.to_string();
            eprintln!("case {case}: oracle {oracle} violated, shrinking…");
            let shrunk = shrink_spec(&spec, oracle, &params);
            violations.push(ViolationRecord {
                case,
                oracle,
                detail,
                minimized: shrunk.spec.emit(),
                shrink_steps: shrunk.steps,
                shrink_attempts: shrunk.attempts,
            });
        }
    }
    let elapsed = start.elapsed();

    if !violations.is_empty() {
        if let Err(e) = write_artifacts(&cfg.artifacts, &violations) {
            eprintln!(
                "warning: could not write artifacts to {}: {e}",
                cfg.artifacts
            );
        }
    }

    // Human summary (stderr, so --json stdout stays byte-comparable).
    eprintln!(
        "fuzz_pipeline: {} cases, seed {}, max size {}: {} violation(s)",
        cfg.cases,
        cfg.seed,
        cfg.max_size,
        violations.len()
    );
    for (i, o) in Oracle::ALL.iter().enumerate() {
        eprintln!(
            "  {:<22} pass {:>5}  violation {:>3}  skip {:>5}",
            o.name(),
            pass[i],
            violated[i],
            skip[i]
        );
    }
    for (reason, n) in &skip_reasons {
        eprintln!("  skipped {n:>4}: {reason}");
    }
    for v in &violations {
        eprintln!(
            "  case {} violates {} ({} shrink steps): {}",
            v.case,
            v.oracle.name(),
            v.shrink_steps,
            v.detail
        );
    }

    if cfg.json {
        let doc = render_json(
            &cfg,
            &histogram,
            &pass,
            &violated,
            &skip,
            &violations,
            elapsed,
        );
        println!("{doc}");
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_artifacts(dir: &str, violations: &[ViolationRecord]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for v in violations {
        let path = format!("{dir}/min_case{}_{}.dsl", v.case, v.oracle.name());
        std::fs::write(&path, &v.minimized)?;
        eprintln!("  minimized spec written to {path}");
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &Config,
    histogram: &FeatureHistogram,
    pass: &[u64],
    violated: &[u64],
    skip: &[u64],
    violations: &[ViolationRecord],
    elapsed: std::time::Duration,
) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"indrel.fuzz/1\",");
    write!(
        out,
        "\"seed\":{},\"cases\":{},\"max_size\":{},",
        cfg.seed, cfg.cases, cfg.max_size
    )
    .expect("write to string");
    out.push_str("\"features\":{");
    for (i, (name, n)) in histogram.pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "\"{name}\":{n}").expect("write to string");
    }
    out.push_str("},\"oracles\":[");
    for (i, o) in Oracle::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"pass\":{},\"violation\":{},\"skip\":{}}}",
            o.name(),
            pass[i],
            violated[i],
            skip[i]
        )
        .expect("write to string");
    }
    let total_steps: usize = violations.iter().map(|v| v.shrink_steps).sum();
    let total_attempts: usize = violations.iter().map(|v| v.shrink_attempts).sum();
    write!(
        out,
        "],\"shrink\":{{\"violations\":{},\"total_steps\":{total_steps},\
         \"total_attempts\":{total_attempts}}},",
        violations.len()
    )
    .expect("write to string");
    out.push_str("\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"case\":{},\"oracle\":\"{}\",\"detail\":\"{}\",\"minimized\":\"{}\"}}",
            v.case,
            v.oracle.name(),
            json_escape(&v.detail),
            json_escape(&v.minimized)
        )
        .expect("write to string");
    }
    out.push(']');
    if cfg.throughput {
        let secs = elapsed.as_secs_f64().max(1e-9);
        write!(
            out,
            ",\"throughput\":{{\"elapsed_s\":{:.3},\"cases_per_s\":{:.1}}}",
            elapsed.as_secs_f64(),
            cfg.cases as f64 / secs
        )
        .expect("write to string");
    }
    out.push('}');
    out
}
