//! The differential oracle bank.
//!
//! Every generated spec is pushed through the *entire* derivation
//! pipeline — parse, preprocess, compile, execute — and checked against
//! eleven independent oracles, each comparing two implementations that
//! should agree but share as little code as possible (this table is
//! mirrored by the enumerated list in DESIGN.md § "Self-fuzzing", the
//! prose source of truth README and ROADMAP point at):
//!
//! | oracle                     | left side              | right side                  |
//! |----------------------------|------------------------|-----------------------------|
//! | `parse_roundtrip`          | parsed program         | reparse of pretty-printout  |
//! | `interp_vs_lowered`        | plan interpreter       | lowered executor            |
//! | `interp_vs_compiled`       | bytecode-VM fork       | closure tree + interpreter  |
//! | `checker_vs_reference`     | derived checker        | `indrel-semantics` search   |
//! | `enumerator_vs_checker`    | enumerator outcome set | checker-filtered domain     |
//! | `probe_parity`             | probe-armed checker    | unarmed checker             |
//! | `par_report_identity`      | sequential PBT report  | 2-worker PBT report         |
//! | `budget_determinism`       | budgeted run           | identical re-run            |
//! | `memo_vs_plain`            | memo-enabled fork      | plain (memo-less) fork      |
//! | `concurrent_memo_vs_plain` | threaded serve session | plain (memo-less) fork      |
//! | `replanned_vs_plain`       | profile-replanned fork | static-schedule fork + ref  |
//!
//! A spec that the deriver rejects (e.g. mutual recursion hitting
//! `InstanceCycle`) is not a violation: the execution oracles record a
//! [`OracleOutcome::Skip`] with the deriver's error, while the
//! roundtrip oracle still applies.

use indrel_core::{
    Budget, ExecError, ExecProbe, Library, LibraryBuilder, Mode, SearchStats, ServeConfig, Server,
};
use indrel_pbt::{Parallelism, Runner, TestOutcome};
use indrel_rel::analysis::features;
use indrel_rel::parse::{parse_program, std_universe};
use indrel_rel::pretty::pretty_program;
use indrel_rel::{Premise, RelEnv};
use indrel_term::enumerate::tuples_up_to;
use indrel_term::{RelId, TypeExpr, Universe, Value};
use indrel_validate::{ValidationParams, Validator};
use std::collections::BTreeSet;
use std::fmt;

/// The eleven oracles, in reporting order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Oracle {
    /// `parse(pretty(p))` is structurally equal to `parse(p)`.
    Roundtrip,
    /// [`Library::check`] (lowered) agrees with the plan interpreter
    /// verdict-for-verdict across the domain and a fuel ladder.
    ExecutorEquivalence,
    /// A [`Library::with_vm`] fork (register-bytecode backend) agrees
    /// with the closure tree *as a budgeted `Result`* (same verdicts,
    /// same budget cut-offs) and with the plan interpreter on every
    /// decided tuple, and aggregates byte-identical [`SearchStats`] —
    /// the probe/budget-parity contract of the compiled backend.
    InterpVsCompiled,
    /// The derived checker agrees with the bounded reference proof
    /// search of `indrel-semantics` (via [`Validator::checker_case`]).
    CheckerVsReference,
    /// The all-outputs enumerator outcome set matches the
    /// checker-filtered exhaustive domain.
    EnumeratorVsChecker,
    /// Arming a [`SearchStats`] probe never changes a verdict.
    ProbeParity,
    /// Sequential and two-worker [`Runner::run_par`] reports are
    /// byte-identical.
    ParallelReportIdentity,
    /// `try_check` under a step budget returns the same `Result` on
    /// repeated runs.
    BudgetDeterminism,
    /// A [`Library::with_memo`] fork agrees with a plain fork across
    /// the domain and an ascending fuel ladder (exercising both cold
    /// misses and monotonicity-justified hits).
    MemoVsPlain,
    /// A shared sharded-memo [`Server`] session, driven concurrently
    /// from multiple worker threads with one shard poison-injected,
    /// agrees verdict-for-verdict with a fresh unmemoized fork.
    ConcurrentMemoVsPlain,
    /// A [`Library::replan_from`] fork (profile-guided premise
    /// schedules) agrees with the static-schedule fork: byte-identical
    /// sibling replans, exact result equality when the replan was a
    /// no-op, decided-verdict agreement otherwise, and full agreement
    /// with the `indrel-semantics` reference on the replanned side.
    ReplannedVsPlain,
}

impl Oracle {
    /// All oracles, in reporting order.
    pub const ALL: [Oracle; 11] = [
        Oracle::Roundtrip,
        Oracle::ExecutorEquivalence,
        Oracle::InterpVsCompiled,
        Oracle::CheckerVsReference,
        Oracle::EnumeratorVsChecker,
        Oracle::ProbeParity,
        Oracle::ParallelReportIdentity,
        Oracle::BudgetDeterminism,
        Oracle::MemoVsPlain,
        Oracle::ConcurrentMemoVsPlain,
        Oracle::ReplannedVsPlain,
    ];

    /// Stable machine-readable name (used in JSON output, artifacts,
    /// and regression-test assertion messages).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Roundtrip => "parse_roundtrip",
            Oracle::ExecutorEquivalence => "interp_vs_lowered",
            Oracle::InterpVsCompiled => "interp_vs_compiled",
            Oracle::CheckerVsReference => "checker_vs_reference",
            Oracle::EnumeratorVsChecker => "enumerator_vs_checker",
            Oracle::ProbeParity => "probe_parity",
            Oracle::ParallelReportIdentity => "par_report_identity",
            Oracle::BudgetDeterminism => "budget_determinism",
            Oracle::MemoVsPlain => "memo_vs_plain",
            Oracle::ConcurrentMemoVsPlain => "concurrent_memo_vs_plain",
            Oracle::ReplannedVsPlain => "replanned_vs_plain",
        }
    }
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How one oracle fared on one spec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OracleOutcome {
    /// The two sides agreed everywhere.
    Pass,
    /// Disagreement; the payload pinpoints where.
    Violation(String),
    /// The oracle could not run (derivation rejected the spec, or the
    /// reference semantics could not be built); the payload says why.
    Skip(String),
}

/// Syntactic features of a spec, for coverage reporting.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SpecFeatures {
    /// Number of relations declared.
    pub relations: usize,
    /// Number of datatypes declared.
    pub datatypes: usize,
    /// Contains a `mutual` block (a forward relation reference).
    pub mutual: bool,
    /// Some conclusion repeats a variable.
    pub nonlinear: bool,
    /// Some conclusion contains a function call.
    pub funcall: bool,
    /// Some rule has premise-only (existential) variables.
    pub existential: bool,
    /// Some premise is negated.
    pub negation: bool,
    /// Some premise is a source-level (dis)equality.
    pub equality: bool,
}

/// The oracle bank's verdict on one spec.
#[derive(Clone, Debug)]
pub struct SpecReport {
    /// One outcome per oracle, in [`Oracle::ALL`] order.
    pub outcomes: Vec<(Oracle, OracleOutcome)>,
    /// Feature coverage for this spec.
    pub features: SpecFeatures,
}

impl SpecReport {
    /// The first violated oracle, if any.
    pub fn violation(&self) -> Option<(Oracle, &str)> {
        self.outcomes.iter().find_map(|(o, out)| match out {
            OracleOutcome::Violation(msg) => Some((*o, msg.as_str())),
            _ => None,
        })
    }
}

/// Oracle execution parameters.
///
/// Random specs can make derived search arbitrarily expensive — an
/// existential premise like `r (S x)` forces the checker to enumerate,
/// and stacking two of them grows the outcome set roughly as
/// `E(f) ≈ E(f-1)²` in the fuel `f`. Semantic bounds alone (`max_fuel`,
/// `arg_size`) therefore cannot bound a case's runtime, so every sweep
/// is additionally *operationally* budgeted through the `try_*` entry
/// points: a tuple whose verdict does not land within `call_steps` is
/// recorded as skipped, never guessed. Disagreements are overwhelmingly
/// fuel- and budget-independent, so small bounds lose little power.
#[derive(Clone, Copy, Debug)]
pub struct OracleParams {
    /// Maximum total value size for domain sweeps.
    pub arg_size: u64,
    /// Top of the checker/enumerator fuel ladder.
    pub max_fuel: u64,
    /// Depth bound of the reference proof search.
    pub ref_depth: u64,
    /// Value bound of the reference semantics.
    pub value_bound: u64,
    /// Step budget for one checker call in a sweep.
    pub call_steps: u64,
    /// Step budget for one full enumeration.
    pub enum_steps: u64,
    /// Tight step budget for the determinism oracle (chosen so it
    /// usually *does* cut the search off mid-flight).
    pub budget_steps: u64,
    /// PBT cases for the parallel-identity oracle.
    pub par_tests: usize,
}

impl Default for OracleParams {
    fn default() -> OracleParams {
        OracleParams {
            arg_size: 2,
            max_fuel: 4,
            ref_depth: 4,
            value_bound: 3,
            call_steps: 50_000,
            enum_steps: 50_000,
            budget_steps: 40,
            par_tests: 32,
        }
    }
}

/// Runs the whole oracle bank on a program given as DSL text (the
/// regression corpus enters here; generated specs enter through their
/// [`Spec::emit`](crate::Spec::emit) rendering).
pub fn run_dsl(source: &str) -> SpecReport {
    run_dsl_with(source, &OracleParams::default())
}

/// [`run_dsl`] with explicit parameters.
pub fn run_dsl_with(source: &str, params: &OracleParams) -> SpecReport {
    let mut u = std_universe();
    let mut env = RelEnv::new();
    let parsed = match parse_program(&mut u, &mut env, source) {
        Ok(out) => out,
        Err(e) => {
            // Generated text must always parse; a failure here is a
            // generator/parser bug and the roundtrip oracle owns it.
            let mut outcomes = vec![(
                Oracle::Roundtrip,
                OracleOutcome::Violation(format!("spec failed to parse: {e}")),
            )];
            for o in &Oracle::ALL[1..] {
                outcomes.push((*o, OracleOutcome::Skip("spec failed to parse".into())));
            }
            return SpecReport {
                outcomes,
                features: SpecFeatures::default(),
            };
        }
    };
    let rels: Vec<RelId> = parsed
        .relations
        .iter()
        .map(|n| env.rel_id(n).expect("declared"))
        .collect();

    let feats = spec_features(&env, &parsed.datatypes, &rels);
    let mut outcomes = Vec::with_capacity(Oracle::ALL.len());
    outcomes.push((
        Oracle::Roundtrip,
        roundtrip_oracle(&u, &env, &parsed.datatypes, &parsed.relations),
    ));

    // Derive every instance the execution oracles need. A rejection is
    // a recorded skip, not a violation — the deriver is allowed to say
    // no (mutual recursion, uncompilable modes), it is not allowed to
    // say yes and then disagree with the reference.
    match derive_all(&u, &env, &rels) {
        Ok(lib) => {
            outcomes.push((
                Oracle::ExecutorEquivalence,
                executor_equivalence(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::InterpVsCompiled,
                interp_vs_compiled(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::CheckerVsReference,
                checker_vs_reference(&lib, &rels, params),
            ));
            outcomes.push((
                Oracle::EnumeratorVsChecker,
                enumerator_vs_checker(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::ProbeParity,
                probe_parity(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::ParallelReportIdentity,
                par_report_identity(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::BudgetDeterminism,
                budget_determinism(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::MemoVsPlain,
                memo_vs_plain(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::ConcurrentMemoVsPlain,
                concurrent_memo_vs_plain(&lib, &u, &env, &rels, params),
            ));
            outcomes.push((
                Oracle::ReplannedVsPlain,
                replanned_vs_plain(&lib, &u, &env, &rels, params),
            ));
        }
        Err(reason) => {
            for o in &Oracle::ALL[1..] {
                outcomes.push((*o, OracleOutcome::Skip(reason.clone())));
            }
        }
    }
    SpecReport {
        outcomes,
        features: feats,
    }
}

fn spec_features(env: &RelEnv, datatypes: &[String], rels: &[RelId]) -> SpecFeatures {
    let mut f = SpecFeatures {
        relations: rels.len(),
        datatypes: datatypes.len(),
        ..SpecFeatures::default()
    };
    for (i, &rel) in rels.iter().enumerate() {
        let rf = features(env.relation(rel));
        f.nonlinear |= rf.nonlinear_conclusion;
        f.funcall |= rf.funcall_in_conclusion;
        f.existential |= rf.existentials;
        f.negation |= rf.negated_premises;
        f.equality |= rf.eq_premises;
        for rule in env.relation(rel).rules() {
            for p in rule.premises() {
                if let Premise::Rel { rel: q, .. } = p {
                    if rels.iter().position(|r| r == q).is_some_and(|j| j > i) {
                        f.mutual = true;
                    }
                }
            }
        }
    }
    f
}

fn roundtrip_oracle(
    u: &Universe,
    env: &RelEnv,
    dt_names: &[String],
    rel_names: &[String],
) -> OracleOutcome {
    let dts: Vec<_> = dt_names
        .iter()
        .map(|n| u.dt_id(n).expect("declared"))
        .collect();
    let rels: Vec<_> = rel_names
        .iter()
        .map(|n| env.rel_id(n).expect("declared"))
        .collect();
    let text = pretty_program(u, env, &dts, &rels);
    let mut u2 = std_universe();
    let mut env2 = RelEnv::new();
    if let Err(e) = parse_program(&mut u2, &mut env2, &text) {
        return OracleOutcome::Violation(format!("pretty output failed to parse: {e}\n{text}"));
    }
    for (name, &rel) in rel_names.iter().zip(&rels) {
        let Some(rel2) = env2.rel_id(name) else {
            return OracleOutcome::Violation(format!("relation `{name}` lost in roundtrip"));
        };
        if env.relation(rel) != env2.relation(rel2) {
            return OracleOutcome::Violation(format!(
                "relation `{name}` changed across pretty/parse roundtrip"
            ));
        }
    }
    OracleOutcome::Pass
}

/// Derives a checker and an all-outputs producer for every relation.
fn derive_all(u: &Universe, env: &RelEnv, rels: &[RelId]) -> Result<Library, String> {
    let mut b = LibraryBuilder::new(u.clone(), env.clone());
    for &rel in rels {
        let name = env.relation(rel).name().to_string();
        b.derive_checker(rel)
            .map_err(|e| format!("derive_checker({name}): {e}"))?;
        let arity = env.relation(rel).arity();
        let outs: Vec<usize> = (0..arity).collect();
        b.derive_producer(rel, Mode::producer(arity, &outs))
            .map_err(|e| format!("derive_producer({name}): {e}"))?;
    }
    Ok(b.build())
}

fn domain(u: &Universe, env: &RelEnv, rel: RelId, size: u64) -> (Vec<TypeExpr>, Vec<Vec<Value>>) {
    let tys = env.relation(rel).arg_types().to_vec();
    let dom = tuples_up_to(u, &tys, size);
    (tys, dom)
}

/// `true` when the error is a budget cut-off (an acceptable reason to
/// skip a tuple), as opposed to a structural error that should never
/// come out of a successfully derived library.
fn is_cutoff(e: &ExecError) -> bool {
    matches!(e, ExecError::BudgetExhausted { .. } | ExecError::Deadline)
}

/// Budgeted verdict probe: completes the lowered checker call within
/// `params.call_steps` or reports why it could not.
fn budgeted_check(
    lib: &Library,
    rel: RelId,
    fuel: u64,
    args: &[Value],
    params: &OracleParams,
) -> Result<Option<bool>, ExecError> {
    let budget = Budget::unlimited().with_steps(params.call_steps);
    lib.try_check(rel, fuel, fuel, args, budget)
}

fn executor_equivalence(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for args in &dom {
            for fuel in [0, params.max_fuel / 2, params.max_fuel] {
                // The budgeted probe bounds the work; the lowered and
                // interpreted executors walk the same plan, so a
                // verdict that fits the budget fits it for both.
                let probe = match budgeted_check(lib, rel, fuel, args, params) {
                    Ok(v) => v,
                    Err(e) if is_cutoff(&e) => continue,
                    Err(e) => return OracleOutcome::Violation(format!("lowered checker: {e}")),
                };
                let (lowered, interpreted) = lib.check_both(rel, fuel, fuel, args);
                if lowered != interpreted || lowered != probe {
                    return OracleOutcome::Violation(format!(
                        "{} at fuel {fuel} on {}: lowered {lowered:?} vs interpreted \
                         {interpreted:?} (budgeted re-run {probe:?})",
                        env.relation(rel).name(),
                        render_args(u, args),
                    ));
                }
            }
        }
    }
    OracleOutcome::Pass
}

fn interp_vs_compiled(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    // One compiled session for the whole spec. Relations whose plan did
    // not compile to bytecode run the closure tree inside this fork too
    // — the per-relation fallback is part of the contract under test.
    let vm = lib.fork().with_vm();
    // Probe-free side for the interpreter baseline: the interpreter
    // emits its own probe events, which must not leak into either
    // backend's stats aggregation below.
    let interp = lib.fork();
    // Both sweeps run with a stats probe armed: the compiled backend
    // promises byte-identical event aggregation, and `probe_parity`
    // already guarantees arming changes nothing on the closure side.
    let closure_stats = SearchStats::new();
    let vm_stats = SearchStats::new();
    let _closure_probe = lib.arm_probe(ExecProbe::stats(&closure_stats));
    let _vm_probe = vm.arm_probe(ExecProbe::stats(&vm_stats));
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for args in &dom {
            for fuel in [0, params.max_fuel / 2, params.max_fuel] {
                // Compared *as `Result`s*: the bytecode backend must
                // charge the same budget sites, so cut-offs have to
                // agree tuple-for-tuple, not just decided verdicts.
                let closure = budgeted_check(lib, rel, fuel, args, params);
                let compiled = budgeted_check(&vm, rel, fuel, args, params);
                if closure != compiled {
                    return OracleOutcome::Violation(format!(
                        "{} at fuel {fuel} on {}: closure {closure:?} vs compiled {compiled:?}",
                        env.relation(rel).name(),
                        render_args(u, args),
                    ));
                }
                match closure {
                    Ok(verdict) => {
                        let interpreted = interp.check_interpreted(rel, fuel, fuel, args);
                        if interpreted != verdict {
                            return OracleOutcome::Violation(format!(
                                "{} at fuel {fuel} on {}: compiled {verdict:?} vs interpreted \
                                 {interpreted:?}",
                                env.relation(rel).name(),
                                render_args(u, args),
                            ));
                        }
                    }
                    Err(e) if is_cutoff(&e) => {}
                    Err(e) => return OracleOutcome::Violation(format!("closure checker: {e}")),
                }
            }
        }
    }
    let (closure_json, vm_json) = (closure_stats.to_json(), vm_stats.to_json());
    if closure_json != vm_json {
        return OracleOutcome::Violation(format!(
            "search stats diverge: closure {closure_json} vs compiled {vm_json}",
        ));
    }
    OracleOutcome::Pass
}

fn checker_vs_reference(lib: &Library, rels: &[RelId], params: &OracleParams) -> OracleOutcome {
    let vparams = ValidationParams {
        arg_size: params.arg_size,
        max_fuel: params.max_fuel,
        ref_depth: params.ref_depth,
        value_bound: params.value_bound,
        ..ValidationParams::default()
    };
    let v = match Validator::with_params(lib.fork(), vparams) {
        Ok(v) => v,
        Err(e) => return OracleOutcome::Skip(e.to_string()),
    };
    for &rel in rels {
        for args in v.sweep_args(rel) {
            // Screen the most expensive call of the fuel ladder; if it
            // cannot finish within budget, skip the tuple rather than
            // letting the (unbudgeted) validator sweep run away.
            match budgeted_check(lib, rel, params.max_fuel, &args, params) {
                Ok(_) => {}
                Err(e) if is_cutoff(&e) => continue,
                Err(e) => return OracleOutcome::Violation(format!("checker: {e}")),
            }
            let case = v.checker_case(rel, &args);
            if let Some(violation) = case.violations.first() {
                return OracleOutcome::Violation(violation.to_string());
            }
        }
    }
    OracleOutcome::Pass
}

fn enumerator_vs_checker(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    use indrel_producers::Outcome;
    let fuel = params.max_fuel;
    for &rel in rels {
        let arity = env.relation(rel).arity();
        let mode = Mode::producer(arity, &(0..arity).collect::<Vec<_>>());
        let budget = Budget::unlimited().with_steps(params.enum_steps);
        let mut stream = match lib.try_enumerate(rel, &mode, fuel, fuel, &[], budget) {
            Ok(s) => s,
            Err(e) => return OracleOutcome::Violation(format!("enumerator: {e}")),
        };
        let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut out_of_fuel = false;
        for o in &mut stream {
            match o {
                Outcome::Val(v) => {
                    seen.insert(v);
                }
                Outcome::OutOfFuel => out_of_fuel = true,
            }
        }
        // A budget cut-off truncates the outcome set arbitrarily, so
        // neither direction of the comparison is meaningful.
        if stream.exhaustion_error().is_some() {
            continue;
        }
        // Soundness: nothing the enumerator produces may be refuted by
        // the checker (out-of-fuel and over-budget verdicts are
        // inconclusive). Bounded to the first 500 outcomes so a huge
        // (but within-budget) outcome set cannot stall the case.
        for outs in seen.iter().take(500) {
            match budgeted_check(lib, rel, fuel, outs, params) {
                Ok(Some(false)) => {
                    return OracleOutcome::Violation(format!(
                        "{} enumerated {} but the checker refutes it",
                        env.relation(rel).name(),
                        render_args(u, outs),
                    ));
                }
                Ok(_) => {}
                Err(e) if is_cutoff(&e) => {}
                Err(e) => return OracleOutcome::Violation(format!("checker: {e}")),
            }
        }
        // Completeness: if the enumeration finished without running out
        // of fuel, every domain tuple the checker accepts must appear.
        if !out_of_fuel {
            let (_, dom) = domain(u, env, rel, params.arg_size);
            for args in &dom {
                let accepted =
                    matches!(budgeted_check(lib, rel, fuel, args, params), Ok(Some(true)));
                if accepted && !seen.contains(args) {
                    return OracleOutcome::Violation(format!(
                        "checker accepts {} for {} but a fuel-complete enumeration missed it",
                        render_args(u, args),
                        env.relation(rel).name(),
                    ));
                }
            }
        }
    }
    OracleOutcome::Pass
}

fn probe_parity(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    let fuel = params.max_fuel;
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        // The budgeted probe must agree *as a `Result`*: arming a stats
        // probe may change neither the verdict nor the step accounting.
        let unarmed: Vec<Result<Option<bool>, ExecError>> = dom
            .iter()
            .map(|args| budgeted_check(lib, rel, fuel, args, params))
            .collect();
        let stats = SearchStats::new();
        let armed: Vec<Result<Option<bool>, ExecError>> = {
            let _probe = lib.arm_probe(ExecProbe::stats(&stats));
            dom.iter()
                .map(|args| budgeted_check(lib, rel, fuel, args, params))
                .collect()
        };
        if let Some(i) = (0..dom.len()).find(|&i| unarmed[i] != armed[i]) {
            return OracleOutcome::Violation(format!(
                "{} on {}: unarmed {:?} vs probe-armed {:?}",
                env.relation(rel).name(),
                render_args(u, &dom[i]),
                unarmed[i],
                armed[i],
            ));
        }
    }
    OracleOutcome::Pass
}

fn par_report_identity(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    let fuel = params.max_fuel;
    let rel = rels[0];
    let (_, dom) = domain(u, env, rel, params.arg_size);
    if dom.is_empty() {
        return OracleOutcome::Skip("empty domain".into());
    }
    let shared = lib.fork().shared();
    let render = |parallelism: Parallelism| {
        let dom = dom.clone();
        let shared = &shared;
        Runner::new(7)
            .with_size(4)
            .with_parallelism(parallelism)
            .run_par(params.par_tests, move || {
                let check = shared.fork();
                let dom_gen = dom.clone();
                (
                    move |_size: u64, rng: &mut dyn rand::RngCore| {
                        let i = rand::Rng::gen_range(rng, 0..dom_gen.len());
                        Some(dom_gen[i].clone())
                    },
                    move |args: &[Value]| {
                        // The property is checker stability; its
                        // verdict pattern seeds the report the two
                        // schedules must agree on. Budgeted so one
                        // expensive tuple cannot stall the runner.
                        let budget = Budget::unlimited().with_steps(50_000);
                        let a = check.try_check(rel, fuel, fuel, args, budget);
                        let b = check.try_check(rel, fuel, fuel, args, budget);
                        TestOutcome::from_bool(a == b)
                    },
                )
            })
            .to_string()
    };
    let seq = render(Parallelism::Off);
    let par = render(Parallelism::Fixed(2));
    if seq != par {
        return OracleOutcome::Violation(format!(
            "sequential and 2-worker reports differ:\n--- seq\n{seq}\n--- par\n{par}"
        ));
    }
    OracleOutcome::Pass
}

fn budget_determinism(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    let fuel = params.max_fuel;
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for args in dom.iter().take(8) {
            let budget = Budget::unlimited().with_steps(params.budget_steps);
            let first = lib.try_check(rel, fuel, fuel, args, budget);
            let second = lib.try_check(rel, fuel, fuel, args, budget);
            if first != second {
                return OracleOutcome::Violation(format!(
                    "{} on {}: first run {first:?} vs second run {second:?}",
                    env.relation(rel).name(),
                    render_args(u, args),
                ));
            }
        }
    }
    OracleOutcome::Pass
}

fn memo_vs_plain(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    // One memoized session for the whole spec: the fuel ladder runs
    // ascending so later, larger-fuel queries hit entries decided at
    // smaller fuels — the monotonicity rule under test.
    let memoized = lib.fork().with_memo();
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for fuel in [0, params.max_fuel / 2, params.max_fuel] {
            for args in &dom {
                let plain = match budgeted_check(lib, rel, fuel, args, params) {
                    Ok(v) => v,
                    // The memoized run charges at most as many steps as
                    // the plain one (a hit replaces a whole search with
                    // one step), so a plain cut-off says nothing about
                    // the memoized verdict — skip the tuple.
                    Err(e) if is_cutoff(&e) => continue,
                    Err(e) => return OracleOutcome::Violation(format!("plain checker: {e}")),
                };
                match budgeted_check(&memoized, rel, fuel, args, params) {
                    Ok(m) if m == plain => {}
                    Ok(m) => {
                        return OracleOutcome::Violation(format!(
                            "{} at fuel {fuel} on {}: memoized {m:?} vs plain {plain:?}",
                            env.relation(rel).name(),
                            render_args(u, args),
                        ));
                    }
                    Err(e) => {
                        return OracleOutcome::Violation(format!(
                            "{} at fuel {fuel} on {}: memoized run failed ({e}) where \
                             the plain run returned {plain:?}",
                            env.relation(rel).name(),
                            render_args(u, args),
                        ));
                    }
                }
            }
        }
    }
    OracleOutcome::Pass
}

fn concurrent_memo_vs_plain(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    // Plain side first, single-threaded: every tuple the unmemoized
    // checker decides within budget, grouped by (relation, fuel) the
    // way `check_batch` consumes them. Cut-off tuples are skipped for
    // the same reason as in `memo_vs_plain`.
    struct Group {
        rel: RelId,
        fuel: u64,
        tuples: Vec<Vec<Value>>,
        plain: Vec<Option<bool>>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for fuel in [0, params.max_fuel / 2, params.max_fuel] {
            let mut g = Group {
                rel,
                fuel,
                tuples: Vec::new(),
                plain: Vec::new(),
            };
            for args in &dom {
                match budgeted_check(lib, rel, fuel, args, params) {
                    Ok(v) => {
                        g.tuples.push(args.clone());
                        g.plain.push(v);
                    }
                    Err(e) if is_cutoff(&e) => {}
                    Err(e) => return OracleOutcome::Violation(format!("plain checker: {e}")),
                }
            }
            if !g.tuples.is_empty() {
                groups.push(g);
            }
        }
    }
    if groups.is_empty() {
        return OracleOutcome::Skip("no tuple decided within the step budget".into());
    }
    // Shared serving side: one server, one shard poison-injected up
    // front (a degraded shard must fall back to the unmemoized search,
    // never answer wrongly), two worker threads interleaving batches
    // over the same shared table. Retries absorb the small step
    // overhead the memo boundary adds over the plain budget.
    let server = Server::new(
        lib.fork().shared(),
        ServeConfig {
            shards: 8,
            shard_capacity: 1 << 12,
            steps_per_request: params.call_steps,
            max_retries: 2,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    {
        let _quiet = indrel_pbt::chaos::silence_panics();
        server.memo().poison_shard(0);
    }
    // Each worker reports the first disagreement it sees as
    // (group, tuple, served result); rendering happens back here.
    type Complaint = (usize, usize, Result<Option<bool>, ExecError>);
    let mut complaints: Vec<Complaint> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2usize)
            .map(|t| {
                let server = &server;
                let groups = &groups;
                scope.spawn(move || -> Option<Complaint> {
                    let session = server.session();
                    for (gi, g) in groups.iter().enumerate() {
                        let mine: Vec<usize> = (0..g.tuples.len()).filter(|i| i % 2 == t).collect();
                        let batch: Vec<Vec<Value>> =
                            mine.iter().map(|&i| g.tuples[i].clone()).collect();
                        let got = session.check_batch(g.rel, g.fuel, &batch);
                        for (&i, r) in mine.iter().zip(&got) {
                            match r {
                                Ok(v) if *v == g.plain[i] => {}
                                other => return Some((gi, i, other.clone())),
                            }
                        }
                    }
                    None
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Some(c)) => complaints.push(c),
                Ok(None) => {}
                Err(_) => complaints.push((usize::MAX, 0, Err(ExecError::Deadline))),
            }
        }
    });
    if let Some((gi, i, served)) = complaints.into_iter().next() {
        if gi == usize::MAX {
            return OracleOutcome::Violation("serving worker thread panicked".into());
        }
        let g = &groups[gi];
        return OracleOutcome::Violation(format!(
            "{} at fuel {} on {}: served {served:?} vs plain {:?} \
             (2 threads, shard 0 poisoned, degraded_shards={})",
            env.relation(g.rel).name(),
            g.fuel,
            render_args(u, &g.tuples[i]),
            g.plain[i],
            server.stats().degraded_shards,
        ));
    }
    OracleOutcome::Pass
}

fn replanned_vs_plain(
    lib: &Library,
    u: &Universe,
    env: &RelEnv,
    rels: &[RelId],
    params: &OracleParams,
) -> OracleOutcome {
    // 1. Profile the spec under its static schedules: one budgeted
    //    sweep over every relation's domain with a stats probe armed.
    let stats = SearchStats::new();
    {
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        for &rel in rels {
            let (_, dom) = domain(u, env, rel, params.arg_size);
            for args in &dom {
                let _ = budgeted_check(lib, rel, params.max_fuel, args, params);
            }
        }
    }
    // 2. Replan twice from the same snapshot: replans are specified to
    //    be deterministic functions of it, so the siblings must render
    //    byte-identical plans and the same report.
    let (replanned, report) = lib.replan_from_report(&stats);
    let (again, report_again) = lib.replan_from_report(&stats);
    if report.replanned != report_again.replanned {
        return OracleOutcome::Violation(format!(
            "sibling replans disagree on what changed: {:?} vs {:?}",
            report.replanned, report_again.replanned
        ));
    }
    for &rel in rels {
        if replanned.explain(rel) != again.explain(rel) {
            return OracleOutcome::Violation(format!(
                "sibling replans of {} render different plans",
                env.relation(rel).name()
            ));
        }
    }
    // 3. Verdict agreement with the static-schedule fork. When the
    //    replan was a no-op the libraries share every plan, so the
    //    budgeted Results must be identical, cut-offs included. When a
    //    plan changed, budget charges and cut-off placement
    //    legitimately differ, so: skip cut-offs, require decided
    //    verdicts to agree (a reorder can move a tuple between decided
    //    and unknown at the fuel frontier, but never flip true/false),
    //    and let None-vs-decided pass — a better schedule may decide
    //    within a budget the static order exhausts.
    let noop = report.is_noop();
    for &rel in rels {
        let (_, dom) = domain(u, env, rel, params.arg_size);
        for fuel in [0, params.max_fuel / 2, params.max_fuel] {
            for args in &dom {
                let plain = budgeted_check(lib, rel, fuel, args, params);
                let rep = budgeted_check(&replanned, rel, fuel, args, params);
                if noop {
                    let same = match (&plain, &rep) {
                        (Ok(a), Ok(b)) => a == b,
                        (Err(a), Err(b)) => format!("{a}") == format!("{b}"),
                        _ => false,
                    };
                    if !same {
                        return OracleOutcome::Violation(format!(
                            "{} at fuel {fuel} on {}: no-op replan changed the result: \
                             replanned {rep:?} vs plain {plain:?}",
                            env.relation(rel).name(),
                            render_args(u, args),
                        ));
                    }
                    continue;
                }
                let (Ok(plain), Ok(rep)) = (plain, rep) else {
                    continue;
                };
                if let (Some(a), Some(b)) = (plain, rep) {
                    if a != b {
                        return OracleOutcome::Violation(format!(
                            "{} at fuel {fuel} on {}: replanned {b:?} vs plain {a:?}",
                            env.relation(rel).name(),
                            render_args(u, args),
                        ));
                    }
                }
            }
        }
    }
    // 4. The replanned fork must also agree with the bounded reference
    //    proof search on its own — decided verdicts that merely *agree
    //    with each other* could still both be wrong.
    match checker_vs_reference(&replanned, rels, params) {
        OracleOutcome::Pass | OracleOutcome::Skip(_) => OracleOutcome::Pass,
        OracleOutcome::Violation(v) => {
            OracleOutcome::Violation(format!("replanned fork vs reference: {v}"))
        }
    }
}

fn render_args(u: &Universe, args: &[Value]) -> String {
    let parts: Vec<String> = args
        .iter()
        .map(|v| u.display_value(v).to_string())
        .collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_good_spec_passes_every_oracle() {
        let report = run_dsl(
            r"rel le : nat nat :=
              | le_n : forall n, le n n
              | le_S : forall n m, le n m -> le n (S m)
              .",
        );
        for (oracle, outcome) in &report.outcomes {
            assert_eq!(
                *outcome,
                OracleOutcome::Pass,
                "oracle {oracle} did not pass"
            );
        }
        assert_eq!(report.features.relations, 1);
        assert!(!report.features.mutual);
    }

    #[test]
    fn mutual_spec_skips_execution_oracles_but_roundtrips() {
        let report = run_dsl(
            r"mutual
              rel ev : nat :=
              | ev0 : ev 0
              | evS : forall n, od n -> ev (S n)
              .
              rel od : nat :=
              | odS : forall n, ev n -> od (S n)
              .
              end",
        );
        assert!(report.features.mutual);
        assert_eq!(report.outcomes[0].1, OracleOutcome::Pass, "roundtrip");
        // Derivation currently rejects mutual groups; that must surface
        // as a skip, never a violation.
        assert!(report.violation().is_none(), "{:?}", report.outcomes);
    }

    #[test]
    fn parse_failure_is_a_roundtrip_violation() {
        let report = run_dsl("rel broken :=");
        let (oracle, _) = report.violation().expect("must be flagged");
        assert_eq!(oracle, Oracle::Roundtrip);
    }
}
