//! Seeded random generation of well-formed relation specs.
//!
//! The generator is type-directed: every variable is created with a
//! known ground type and every term is built to match the type of the
//! position it fills, so emitted programs always parse and type-check.
//! Beyond that it deliberately wanders into the shapes the paper's
//! derivation has to preprocess away or reject — non-linear
//! conclusions (reused variables), function calls in conclusions,
//! negated premises, existential premise variables, and mutually
//! recursive relation groups — because those are exactly where
//! derivation pipelines hide bugs.

use crate::spec::{Spec, SpecAdt, SpecCtor, SpecPremise, SpecRel, SpecRule, SpecTerm, SpecType};
use rand::rngs::SmallRng;
use rand::Rng;

/// Standard-library functions the generator may call (all
/// `nat × nat → nat`, all total and saturating).
const NAT_FUNS: [&str; 4] = ["plus", "mult", "minus", "max'"];

/// Generates one well-formed spec. `max_size` scales how many
/// declarations, rules, and premises the spec gets (the default driver
/// uses 6); the same `(rng state, max_size)` always yields the same
/// spec.
pub fn gen_spec(rng: &mut SmallRng, max_size: u64) -> Spec {
    let size = max_size.max(1) as usize;
    let n_adts = rng.gen_range(0..=2usize.min(1 + size / 4));
    let mut adts = Vec::new();
    for a in 0..n_adts {
        adts.push(gen_adt(rng, a, &adts));
    }

    let n_rels = rng.gen_range(1..=3usize.min(1 + size / 2));
    // Occasionally fuse two adjacent relations into a mutual group.
    let mutual_at = if n_rels >= 2 && rng.gen_bool(0.2) {
        Some(rng.gen_range(0..n_rels - 1))
    } else {
        None
    };
    let mut rel_group = Vec::new();
    let mut gid = 0usize;
    for i in 0..n_rels {
        rel_group.push(gid);
        if Some(i) != mutual_at {
            gid += 1;
        }
    }

    let mut spec = Spec {
        adts,
        rels: Vec::new(),
        rel_group: rel_group.clone(),
    };
    // First pass: fix every relation's signature so rules (including
    // forward references inside a mutual group) know premise arities.
    for i in 0..n_rels {
        let arity = rng.gen_range(1..=2);
        let args = (0..arity).map(|_| gen_type(rng, spec.adts.len())).collect();
        spec.rels.push(SpecRel {
            name: format!("r{i}"),
            args,
            rules: Vec::new(),
        });
    }
    // Second pass: rules.
    for i in 0..n_rels {
        let n_rules = rng.gen_range(1..=2 + usize::from(size >= 6));
        let mut rules = Vec::new();
        for j in 0..n_rules {
            // Rule 0 is always a base rule (no relation premises), so
            // derived searches have somewhere to bottom out.
            rules.push(gen_rule(rng, &spec, i, j, j == 0, size));
        }
        spec.rels[i].rules = rules;
    }
    spec
}

fn gen_type(rng: &mut SmallRng, n_adts: usize) -> SpecType {
    match rng.gen_range(0..10u32) {
        0..=5 => SpecType::Nat,
        6 => SpecType::Bool,
        _ if n_adts > 0 => SpecType::Adt(rng.gen_range(0..n_adts)),
        _ => SpecType::Nat,
    }
}

fn gen_adt(rng: &mut SmallRng, index: usize, earlier: &[SpecAdt]) -> SpecAdt {
    let n_ctors = rng.gen_range(1..=3usize);
    let mut ctors = vec![SpecCtor {
        name: format!("K{index}_0"),
        args: Vec::new(),
    }];
    for c in 1..n_ctors {
        let n_args = rng.gen_range(0..=2usize);
        let args = (0..n_args)
            .map(|_| match rng.gen_range(0..4u32) {
                0 => SpecType::Nat,
                1 => SpecType::Bool,
                // Self-recursion or a reference to an earlier adt; both
                // bottom out at some type's nullary first constructor.
                2 => SpecType::Adt(index),
                _ => SpecType::Adt(rng.gen_range(0..=earlier.len().min(index))),
            })
            .collect();
        ctors.push(SpecCtor {
            name: format!("K{index}_{c}"),
            args,
        });
    }
    SpecAdt {
        name: format!("d{index}"),
        ctors,
    }
}

/// Builds a term of type `ty`, possibly creating fresh variables in
/// `vars`. `depth` bounds structural nesting; `allow_fun` gates
/// function calls (kept out of premise relation arguments, where the
/// surface language expects constructor terms to stay matchable).
fn gen_term(
    rng: &mut SmallRng,
    spec: &Spec,
    vars: &mut Vec<SpecType>,
    ty: SpecType,
    depth: usize,
    allow_fun: bool,
) -> SpecTerm {
    // Reuse an existing variable of the right type (non-linearity) or
    // bind a fresh one.
    let candidates: Vec<usize> = (0..vars.len()).filter(|&i| vars[i] == ty).collect();
    let roll = rng.gen_range(0..10u32);
    if roll < 3 && !candidates.is_empty() {
        return SpecTerm::Var(candidates[rng.gen_range(0..candidates.len())]);
    }
    if roll < 6 {
        vars.push(ty);
        return SpecTerm::Var(vars.len() - 1);
    }
    match ty {
        SpecType::Bool => SpecTerm::BoolLit(rng.gen_bool(0.5)),
        SpecType::Nat => {
            if depth == 0 {
                return SpecTerm::NatLit(rng.gen_range(0..=2));
            }
            match rng.gen_range(0..4u32) {
                0 => SpecTerm::NatLit(rng.gen_range(0..=2)),
                1 | 2 => SpecTerm::Succ(Box::new(gen_term(
                    rng,
                    spec,
                    vars,
                    SpecType::Nat,
                    depth - 1,
                    allow_fun,
                ))),
                _ if allow_fun => {
                    let f = NAT_FUNS[rng.gen_range(0..NAT_FUNS.len())];
                    let a = gen_term(rng, spec, vars, SpecType::Nat, 0, false);
                    let b = gen_term(rng, spec, vars, SpecType::Nat, 0, false);
                    SpecTerm::Fun(f, vec![a, b])
                }
                _ => SpecTerm::NatLit(rng.gen_range(0..=2)),
            }
        }
        SpecType::Adt(a) => {
            let adt = &spec.adts[a];
            let ctor = if depth == 0 {
                0
            } else {
                rng.gen_range(0..adt.ctors.len())
            };
            let arg_tys = adt.ctors[ctor].args.clone();
            let args = arg_tys
                .into_iter()
                .map(|t| gen_term(rng, spec, vars, t, depth.saturating_sub(1), allow_fun))
                .collect();
            SpecTerm::Ctor { adt: a, ctor, args }
        }
    }
}

fn gen_rule(
    rng: &mut SmallRng,
    spec: &Spec,
    rel: usize,
    rule_idx: usize,
    base: bool,
    size: usize,
) -> SpecRule {
    let mut vars: Vec<SpecType> = Vec::new();
    let concl_depth = 1 + usize::from(size >= 4);
    let conclusion: Vec<SpecTerm> = spec.rels[rel]
        .args
        .iter()
        .map(|&ty| {
            let allow_fun = rng.gen_bool(0.25);
            gen_term(rng, spec, &mut vars, ty, concl_depth, allow_fun)
        })
        .collect();

    let mut premises = Vec::new();
    if !base {
        let group = spec.group_members(rel);
        let n_prem = rng.gen_range(1..=2usize);
        for _ in 0..n_prem {
            if rng.gen_bool(0.3) {
                // Equality / disequality premise, possibly with a
                // function call — the preprocessed form of §3.1.
                let lhs = gen_term(rng, spec, &mut vars, SpecType::Nat, 1, true);
                let rhs = gen_term(rng, spec, &mut vars, SpecType::Nat, 0, false);
                premises.push(SpecPremise::Eq {
                    lhs,
                    rhs,
                    negated: rng.gen_bool(0.3),
                });
            } else {
                // Relation premise: self, an earlier relation, or any
                // member of the same mutual group.
                let mut targets: Vec<usize> = (0..=rel).collect();
                targets.extend(group.iter().copied().filter(|&j| j > rel));
                let q = targets[rng.gen_range(0..targets.len())];
                let args = spec.rels[q]
                    .args
                    .iter()
                    .map(|&ty| gen_term(rng, spec, &mut vars, ty, 1, false))
                    .collect();
                premises.push(SpecPremise::Rel {
                    rel: q,
                    args,
                    negated: rng.gen_bool(0.15),
                });
            }
        }
    }
    SpecRule {
        name: format!("r{rel}_c{rule_idx}"),
        vars,
        premises,
        conclusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_spec(&mut SmallRng::seed_from_u64_stream(1, 0), 6);
        let b = gen_spec(&mut SmallRng::seed_from_u64_stream(1, 0), 6);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_specs_are_well_formed() {
        for case in 0..200 {
            let spec = gen_spec(&mut SmallRng::seed_from_u64_stream(7, case), 6);
            assert!(!spec.rels.is_empty());
            assert_eq!(spec.rel_group.len(), spec.rels.len());
            for adt in &spec.adts {
                assert!(!adt.ctors.is_empty());
                assert!(adt.ctors[0].args.is_empty(), "first ctor must be nullary");
            }
            for (i, rel) in spec.rels.iter().enumerate() {
                assert!(!rel.rules.is_empty());
                for rule in &rel.rules {
                    assert_eq!(rule.conclusion.len(), rel.args.len());
                    for p in &rule.premises {
                        if let SpecPremise::Rel { rel: q, args, .. } = p {
                            assert_eq!(args.len(), spec.rels[*q].args.len());
                            assert!(
                                *q <= i || spec.group_members(i).contains(q),
                                "forward reference outside mutual group"
                            );
                        }
                    }
                }
                assert!(
                    rel.rules[0]
                        .premises
                        .iter()
                        .all(|p| matches!(p, SpecPremise::Eq { .. })),
                    "rule 0 must be a base rule"
                );
            }
        }
    }
}
