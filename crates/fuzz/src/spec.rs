//! A lightweight AST for *generated* relation specifications.
//!
//! The fuzzer works on this representation — not on
//! [`indrel_rel::Relation`] directly — because generation and shrinking
//! constantly add and remove declarations, and plain `usize` indices
//! are trivial to remap where interned [`indrel_term::RelId`]s are not.
//! A [`Spec`] knows how to render itself as surface syntax
//! ([`Spec::emit`]); everything downstream (derivation, oracles)
//! consumes the parsed program, so the DSL text is the single source of
//! truth and the emitted artifact for failing cases.

use std::fmt::Write;

/// A ground type in a generated spec.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecType {
    /// `nat`.
    Nat,
    /// `bool`.
    Bool,
    /// The `i`-th generated datatype.
    Adt(usize),
}

/// A constructor of a generated datatype.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecCtor {
    /// Constructor name (unique across the universe).
    pub name: String,
    /// Argument types.
    pub args: Vec<SpecType>,
}

/// A generated algebraic datatype. The first constructor is always
/// nullary, so every generated type is inhabited and every recursive
/// position has a base case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecAdt {
    /// Datatype name.
    pub name: String,
    /// Constructors (at least one; the first is nullary).
    pub ctors: Vec<SpecCtor>,
}

/// A term over a rule's variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecTerm {
    /// The `i`-th universally quantified variable of the rule.
    Var(usize),
    /// A `nat` literal.
    NatLit(u64),
    /// A `bool` literal.
    BoolLit(bool),
    /// `S e`.
    Succ(Box<SpecTerm>),
    /// Application of constructor `ctor` of datatype `adt`.
    Ctor {
        /// Datatype index.
        adt: usize,
        /// Constructor index within the datatype.
        ctor: usize,
        /// Arguments.
        args: Vec<SpecTerm>,
    },
    /// Application of a standard-library function (by name, e.g.
    /// `plus`); all generated calls are `nat`-valued.
    Fun(&'static str, Vec<SpecTerm>),
}

/// A premise of a generated rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecPremise {
    /// `r e…` or `~ (r e…)` on the `rel`-th generated relation.
    Rel {
        /// Relation index.
        rel: usize,
        /// Arguments.
        args: Vec<SpecTerm>,
        /// `true` for a negated premise.
        negated: bool,
    },
    /// `e₁ = e₂` or `e₁ <> e₂`.
    Eq {
        /// Left-hand side.
        lhs: SpecTerm,
        /// Right-hand side.
        rhs: SpecTerm,
        /// `true` for a disequality.
        negated: bool,
    },
}

/// A rule of a generated relation. Variables are named `x0`, `x1`, …
/// and always emitted with type annotations, so parsing is never
/// at the mercy of inference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecRule {
    /// Rule (constructor) name.
    pub name: String,
    /// Types of the universally quantified variables, indexed by
    /// [`SpecTerm::Var`].
    pub vars: Vec<SpecType>,
    /// Premises in order.
    pub premises: Vec<SpecPremise>,
    /// Conclusion arguments (arity matches the relation).
    pub conclusion: Vec<SpecTerm>,
}

/// A generated inductive relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecRel {
    /// Relation name.
    pub name: String,
    /// Argument types.
    pub args: Vec<SpecType>,
    /// Rules.
    pub rules: Vec<SpecRule>,
}

/// A complete generated program: datatypes, then relations.
///
/// `rel_group` assigns every relation a group id (parallel to `rels`,
/// nondecreasing); a maximal run of equal ids with more than one member
/// is emitted as a `mutual … end` block, so members may reference each
/// other freely. Relations may otherwise only reference themselves and
/// earlier relations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spec {
    /// Generated datatypes, in declaration order.
    pub adts: Vec<SpecAdt>,
    /// Generated relations, in declaration order.
    pub rels: Vec<SpecRel>,
    /// Group id per relation (see type-level docs).
    pub rel_group: Vec<usize>,
}

impl Spec {
    /// The indices of the relations sharing a `mutual` group with
    /// `rel` (including `rel` itself).
    pub fn group_members(&self, rel: usize) -> Vec<usize> {
        let gid = self.rel_group[rel];
        (0..self.rels.len())
            .filter(|&j| self.rel_group[j] == gid)
            .collect()
    }

    /// `true` when any relation lives in a multi-member mutual group.
    pub fn has_mutual(&self) -> bool {
        (0..self.rels.len()).any(|i| self.group_members(i).len() > 1)
    }

    fn emit_type(&self, ty: SpecType, out: &mut String) {
        match ty {
            SpecType::Nat => out.push_str("nat"),
            SpecType::Bool => out.push_str("bool"),
            SpecType::Adt(i) => out.push_str(&self.adts[i].name),
        }
    }

    fn emit_term(&self, t: &SpecTerm, atom: bool, out: &mut String) {
        match t {
            SpecTerm::Var(i) => write!(out, "x{i}").expect("write to string"),
            SpecTerm::NatLit(n) => write!(out, "{n}").expect("write to string"),
            SpecTerm::BoolLit(b) => write!(out, "{b}").expect("write to string"),
            SpecTerm::Succ(inner) => {
                if atom {
                    out.push('(');
                }
                out.push_str("S ");
                self.emit_term(inner, true, out);
                if atom {
                    out.push(')');
                }
            }
            SpecTerm::Ctor { adt, ctor, args } => {
                let paren = atom && !args.is_empty();
                if paren {
                    out.push('(');
                }
                out.push_str(&self.adts[*adt].ctors[*ctor].name);
                for a in args {
                    out.push(' ');
                    self.emit_term(a, true, out);
                }
                if paren {
                    out.push(')');
                }
            }
            SpecTerm::Fun(name, args) => {
                let paren = atom && !args.is_empty();
                if paren {
                    out.push('(');
                }
                out.push_str(name);
                for a in args {
                    out.push(' ');
                    self.emit_term(a, true, out);
                }
                if paren {
                    out.push(')');
                }
            }
        }
    }

    fn emit_rel(&self, rel: &SpecRel, out: &mut String) {
        write!(out, "rel {} :", rel.name).expect("write to string");
        for &ty in &rel.args {
            out.push(' ');
            self.emit_type(ty, out);
        }
        out.push_str(" :=\n");
        for rule in &rel.rules {
            write!(out, "| {} :", rule.name).expect("write to string");
            if !rule.vars.is_empty() {
                out.push_str(" forall");
                for (i, &ty) in rule.vars.iter().enumerate() {
                    write!(out, " (x{i} : ").expect("write to string");
                    self.emit_type(ty, out);
                    out.push(')');
                }
                out.push(',');
            }
            for p in &rule.premises {
                out.push(' ');
                match p {
                    SpecPremise::Rel {
                        rel: q,
                        args,
                        negated,
                    } => {
                        if *negated {
                            out.push_str("~ ");
                        }
                        out.push_str(&self.rels[*q].name);
                        for a in args {
                            out.push(' ');
                            self.emit_term(a, true, out);
                        }
                    }
                    SpecPremise::Eq { lhs, rhs, negated } => {
                        self.emit_term(lhs, false, out);
                        out.push_str(if *negated { " <> " } else { " = " });
                        self.emit_term(rhs, false, out);
                    }
                }
                out.push_str(" ->");
            }
            write!(out, " {}", rel.name).expect("write to string");
            for a in &rule.conclusion {
                out.push(' ');
                self.emit_term(a, true, out);
            }
            out.push('\n');
        }
        out.push_str(".\n");
    }

    /// Renders the spec as a program the surface parser accepts.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for adt in &self.adts {
            write!(out, "data {} :=", adt.name).expect("write to string");
            for (i, c) in adt.ctors.iter().enumerate() {
                if i > 0 {
                    out.push_str(" |");
                }
                write!(out, " {}", c.name).expect("write to string");
                for &ty in &c.args {
                    out.push(' ');
                    self.emit_type(ty, &mut out);
                }
            }
            out.push_str(" .\n");
        }
        let mut i = 0;
        while i < self.rels.len() {
            let members = self.group_members(i);
            if members.len() > 1 {
                out.push_str("mutual\n");
                for &j in &members {
                    self.emit_rel(&self.rels[j], &mut out);
                }
                out.push_str("end\n");
            } else {
                self.emit_rel(&self.rels[i], &mut out);
            }
            i += members.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> Spec {
        Spec {
            adts: vec![SpecAdt {
                name: "d0".into(),
                ctors: vec![
                    SpecCtor {
                        name: "K0_0".into(),
                        args: vec![],
                    },
                    SpecCtor {
                        name: "K0_1".into(),
                        args: vec![SpecType::Nat, SpecType::Adt(0)],
                    },
                ],
            }],
            rels: vec![SpecRel {
                name: "r0".into(),
                args: vec![SpecType::Nat, SpecType::Adt(0)],
                rules: vec![SpecRule {
                    name: "c0".into(),
                    vars: vec![SpecType::Nat],
                    premises: vec![SpecPremise::Eq {
                        lhs: SpecTerm::Fun("plus", vec![SpecTerm::Var(0), SpecTerm::NatLit(1)]),
                        rhs: SpecTerm::Var(0),
                        negated: true,
                    }],
                    conclusion: vec![
                        SpecTerm::Succ(Box::new(SpecTerm::Var(0))),
                        SpecTerm::Ctor {
                            adt: 0,
                            ctor: 1,
                            args: vec![
                                SpecTerm::Var(0),
                                SpecTerm::Ctor {
                                    adt: 0,
                                    ctor: 0,
                                    args: vec![],
                                },
                            ],
                        },
                    ],
                }],
            }],
            rel_group: vec![0],
        }
    }

    #[test]
    fn emit_renders_expected_surface_syntax() {
        let text = tiny_spec().emit();
        assert!(text.contains("data d0 := K0_0 | K0_1 nat d0 ."), "{text}");
        assert!(text.contains("rel r0 : nat d0 :="), "{text}");
        assert!(
            text.contains("| c0 : forall (x0 : nat), plus x0 1 <> x0 -> r0 (S x0) (K0_1 x0 K0_0)"),
            "{text}"
        );
    }

    #[test]
    fn mutual_groups_emit_blocks() {
        let mut spec = tiny_spec();
        let mut r1 = spec.rels[0].clone();
        r1.name = "r1".into();
        spec.rels.push(r1);
        spec.rel_group = vec![0, 0];
        let text = spec.emit();
        assert!(spec.has_mutual());
        assert!(text.contains("mutual\n"), "{text}");
        assert!(text.trim_end().ends_with("end"), "{text}");
    }
}
